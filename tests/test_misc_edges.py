"""Edge-case tests across modules: error paths, rendering corners,
budget guards, and API conveniences not covered elsewhere."""

import pytest

from repro import derive_protocol
from repro.errors import (
    DerivationError,
    LexerError,
    ParseError,
    ReproError,
    RestrictionViolation,
    SemanticsError,
    StateSpaceLimitExceeded,
    UnboundProcessError,
    UnguardedRecursionError,
    VerificationError,
)
from repro.lotos.events import (
    DELTA,
    INTERNAL,
    ReceiveAction,
    SendAction,
    ServicePrimitive,
    SyncMessage,
)
from repro.lotos.parser import parse, parse_behaviour
from repro.lotos.semantics import Semantics
from repro.lotos.lts import build_lts


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [
            LexerError,
            ParseError,
            SemanticsError,
            UnboundProcessError,
            UnguardedRecursionError,
            RestrictionViolation,
            DerivationError,
            VerificationError,
            StateSpaceLimitExceeded,
        ],
    )
    def test_all_derive_from_repro_error(self, exception_type):
        assert issubclass(exception_type, ReproError)

    def test_lexer_error_carries_position(self):
        error = LexerError("bad", 3, 7)
        assert error.line == 3 and error.column == 7
        assert "line 3" in str(error)

    def test_restriction_violation_carries_rule(self):
        error = RestrictionViolation("R2", "details")
        assert error.rule == "R2"

    def test_state_space_limit_carries_budget(self):
        assert StateSpaceLimitExceeded(500).limit == 500


class TestLabelOrdering:
    def test_sort_keys_are_total_over_mixed_labels(self):
        labels = [
            DELTA,
            INTERNAL,
            ServicePrimitive("b", 2),
            ServicePrimitive("a", 1),
            SendAction(dest=2, message=SyncMessage(3)),
            ReceiveAction(src=1, message=SyncMessage(3)),
            SendAction(dest=2, message=SyncMessage(3, (1,), "exec")),
        ]
        ordered = sorted(labels, key=lambda label: label.sort_key())
        assert ordered[0] == ServicePrimitive("a", 1)
        assert ordered[-1] == DELTA


class TestTraceBudgets:
    def test_enumeration_guard_trips(self):
        from repro.lotos.traces import enumerate_weak_traces

        # wide choice tree -> trace explosion
        wide = parse_behaviour(
            " ||| ".join(f"x{place}; exit" for place in [1, 2, 3, 1, 2, 3])
        )
        with pytest.raises(RuntimeError, match="traces"):
            enumerate_weak_traces(wide, Semantics(), max_length=6, max_traces=20)


class TestEquivalencePreconditions:
    def test_truncated_lts_rejected(self):
        from repro.lotos.equivalence import weak_bisimilar

        spec = parse("SPEC A WHERE PROC A = a1; A END ENDSPEC")
        semantics, root = Semantics.of_specification(spec, bind_occurrences=True)
        truncated = build_lts(root, semantics, max_states=5, on_limit="truncate")
        complete = build_lts(parse_behaviour("a1; exit"), Semantics())
        with pytest.raises(VerificationError, match="truncated"):
            weak_bisimilar(truncated, complete)


class TestRenderingCorners:
    def test_entity_text_full_messages(self):
        result = derive_protocol("SPEC a1; b2; exit ENDSPEC")
        assert "s2(s,1)" in result.entity_text(1, compact=False)

    def test_describe_lists_all_places(self):
        result = derive_protocol("SPEC a1; b2; c3; exit ENDSPEC")
        text = result.describe()
        assert text.count("Protocol entity for place") == 3

    def test_message_kind_rendering_compact(self):
        assert SyncMessage(4, (), "exec").render(compact=True) == "exec,4"
        assert SyncMessage(4, ()).render(compact=True) == "4"

    def test_hide_with_gates_round_trips(self):
        from repro.lotos.unparse import unparse_behaviour

        node = parse_behaviour("hide a1, b2 in a1; b2; exit")
        assert parse_behaviour(unparse_behaviour(node)) == node

    def test_empty_renders(self):
        from repro.lotos.syntax import Empty
        from repro.lotos.unparse import unparse_behaviour

        assert unparse_behaviour(Empty()) == "empty"


class TestSemanticsGuards:
    def test_unfold_depth_guard_message(self):
        spec = parse("SPEC A WHERE PROC A = A END ENDSPEC")
        semantics, root = Semantics.of_specification(spec)
        with pytest.raises(UnguardedRecursionError, match="unguarded"):
            semantics.transitions(root)

    def test_deeply_guarded_nesting_is_fine(self):
        # 100 mutually-referencing processes, each guarded.
        definitions = " ".join(
            f"PROC P{index} = a1; P{index + 1} END" for index in range(100)
        )
        spec = parse(
            f"SPEC P0 WHERE {definitions} PROC P100 = b2; exit END ENDSPEC"
        )
        semantics, root = Semantics.of_specification(spec)
        ((label, _),) = semantics.transitions(root)
        assert str(label) == "a1"


class TestRunRendering:
    def test_deadlocked_run_string(self):
        from repro.runtime.executor import Run

        run = Run(deadlocked=True, steps=4)
        assert "DEADLOCK" in str(run)

    def test_truncated_run_string(self):
        from repro.runtime.executor import Run

        run = Run(truncated=True)
        assert "truncated" in str(run)


class TestDerivationResultAccess:
    def test_violations_preserved_in_lenient_mode(self):
        result = derive_protocol(
            "SPEC a1; b2; exit [] c2; d2; exit ENDSPEC", strict=False
        )
        assert any(v.rule == "R1" for v in result.violations)

    def test_service_field_is_the_original(self):
        text = "SPEC a1; b2; exit ENDSPEC"
        result = derive_protocol(text)
        assert result.service == parse(text)


class TestWorkloadCatalogue:
    def test_canonical_texts_parse(self):
        from repro import workloads

        for text in (
            workloads.EXAMPLE2_COUNTING,
            workloads.EXAMPLE3_FILE_TRANSFER,
            workloads.EXAMPLE4_SEQUENCE,
            workloads.EXAMPLE7_TWO_INSTANCES,
            workloads.TRANSPORT_SESSION,
        ):
            assert parse(text) is not None
