"""The lint framework: every rule triggered and not triggered.

Each shipped rule (L001-L011) gets at least one specification that
fires it and one nearby specification that stays quiet, so rule logic
regressions show up as a missing/extra rule id rather than a diff in
prose.  The engine-level behaviours — parse failures as E001,
preparation failures as E002, restriction passthrough, span threading,
sorting, the JSON schema — are covered alongside.
"""

import json

import pytest

from repro.analysis.lint import (
    ERROR,
    INFO,
    JSON_SCHEMA_VERSION,
    RULES,
    SEVERITIES,
    WARNING,
    Diagnostic,
    lint_spec,
    lint_text,
)
from repro.lotos.location import Span
from repro.lotos.parser import parse

#: Paper Example 3 — the reference "clean" specification.
CLEAN = """SPEC S [> interrupt3; exit WHERE
  PROC S = (read1; push2; S >> pop2; write3; exit)
        [] (eof1; make3; exit) END
ENDSPEC
"""


def fired(text):
    """Set of rule ids reported for ``text``."""
    return {d.rule for d in lint_text(text)}


def only(text, rule_id):
    """The diagnostics of one rule, asserting there is at least one."""
    found = [d for d in lint_text(text) if d.rule == rule_id]
    assert found, f"expected {rule_id} to fire"
    return found


class TestRegistry:
    def test_all_shipped_rules_registered(self):
        expected = {f"L{n:03d}" for n in range(1, 12)}
        assert set(RULES) == expected

    def test_rule_metadata_complete(self):
        for rule_id, rule in RULES.items():
            assert rule.id == rule_id
            assert rule.severity in SEVERITIES
            assert rule.name and rule.summary

    def test_clean_spec_is_clean(self):
        result = lint_text(CLEAN)
        assert result.ok
        assert not result.diagnostics


class TestUnusedProcess:
    def test_triggers(self):
        [diag] = only(
            "SPEC a1; b2; exit WHERE\n  PROC Helper = c2; exit END\nENDSPEC",
            "L001",
        )
        assert "'Helper'" in diag.message
        assert (diag.span.line, diag.span.column) == (2, 8)

    def test_transitively_used_does_not_trigger(self):
        text = (
            "SPEC A WHERE\n"
            "  PROC A = a1; B END\n"
            "  PROC B = b2; exit END\n"
            "ENDSPEC"
        )
        assert "L001" not in fired(text)

    def test_only_cyclically_used_triggers(self):
        # A and B invoke each other but nothing reaches them from the root.
        text = (
            "SPEC x1; exit WHERE\n"
            "  PROC A = a1; B END\n"
            "  PROC B = b2; A END\n"
            "ENDSPEC"
        )
        assert len(only(text, "L001")) == 2


class TestShadowedProcess:
    def test_sibling_duplicate_triggers(self):
        text = (
            "SPEC P WHERE\n"
            "  PROC P = a1; exit END\n"
            "  PROC P = b2; exit END\n"
            "ENDSPEC"
        )
        [diag] = only(text, "L002")
        assert (diag.span.line, diag.span.column) == (3, 8)
        assert "(defined at 2:8)" in diag.message

    def test_nested_shadow_triggers(self):
        text = (
            "SPEC P WHERE\n"
            "  PROC P = a1; Inner\n"
            "    WHERE PROC Inner = b2; exit END\n"
            "  END\n"
            "  PROC Inner = c2; exit END\n"
            "ENDSPEC"
        )
        assert "L002" in fired(text)

    def test_distinct_names_do_not_trigger(self):
        assert "L002" not in fired(CLEAN)


class TestUnreachableCode:
    def test_never_exiting_left_triggers(self):
        text = (
            "SPEC Loop >> b2; exit WHERE\n"
            "  PROC Loop = a1; Loop END\n"
            "ENDSPEC"
        )
        [diag] = only(text, "L003")
        assert diag.span is not None
        assert "never terminate" in diag.message

    def test_exiting_left_does_not_trigger(self):
        assert "L003" not in fired("SPEC a1; exit >> b2; exit ENDSPEC")

    def test_recursion_with_exit_branch_does_not_trigger(self):
        # Paper Example 2: the recursion CAN exit via the base case.
        text = (
            "SPEC A WHERE\n"
            "  PROC A = (a1; A >> b2; exit) [] (a1; b2; exit) END\n"
            "ENDSPEC"
        )
        assert "L003" not in fired(text)


class TestSyncGates:
    def test_unused_sync_event_triggers(self):
        [diag] = only("SPEC (a1; exit) |[b1]| (b1; exit) ENDSPEC", "L004")
        assert "'b1'" in diag.message and "left operand" in diag.message

    def test_offered_by_neither_side(self):
        [diag] = only("SPEC (a1; exit) |[c1]| (b1; exit) ENDSPEC", "L004")
        assert "neither operand" in diag.message

    def test_offered_through_reference_does_not_trigger(self):
        text = (
            "SPEC (a1; P) |[b1]| (b1; exit) WHERE\n"
            "  PROC P = b1; exit END\n"
            "ENDSPEC"
        )
        assert "L004" not in fired(text)

    def test_common_event_outside_set_is_info(self):
        [diag] = only(
            "SPEC (a1; b2; exit) |[a1]| (a1; b2; exit) ENDSPEC", "L005"
        )
        assert diag.severity == INFO
        assert "'b2'" in diag.message

    def test_fully_synchronized_does_not_trigger(self):
        text = "SPEC (a1; b2; exit) |[a1, b2]| (a1; b2; exit) ENDSPEC"
        assert "L005" not in fired(text)

    def test_interleaving_never_triggers_sync_rules(self):
        text = "SPEC (a1; exit) ||| (a1; exit) ENDSPEC"
        assert {"L004", "L005"} & fired(text) == set()


class TestHideUnusedGate:
    def test_triggers(self):
        [diag] = only("SPEC hide h2 in a1; exit ENDSPEC", "L006")
        assert "'h2'" in diag.message

    def test_hidden_event_present_does_not_trigger(self):
        assert "L006" not in fired("SPEC hide a1 in a1; exit ENDSPEC")


class TestUnguardedRecursion:
    def test_direct_triggers(self):
        text = "SPEC A WHERE\n  PROC A = A [] a1; exit END\nENDSPEC"
        [diag] = only(text, "L007")
        assert diag.severity == ERROR
        assert (diag.span.line, diag.span.column) == (2, 8)

    def test_mutual_triggers(self):
        text = (
            "SPEC A WHERE\n"
            "  PROC A = B END\n"
            "  PROC B = A END\n"
            "ENDSPEC"
        )
        assert len(only(text, "L007")) == 2

    def test_guarded_recursion_does_not_trigger(self):
        assert "L007" not in fired(CLEAN)


class TestInertOperand:
    def test_stop_choice_operand_triggers(self):
        [diag] = only("SPEC a1; exit [] stop ENDSPEC", "L008")
        assert "right alternative" in diag.message

    def test_stop_parallel_operand_triggers(self):
        [diag] = only("SPEC stop ||| a1; exit ENDSPEC", "L008")
        assert "left operand" in diag.message

    def test_stop_interrupt_operand_triggers(self):
        [diag] = only("SPEC (a1; exit) [> stop ENDSPEC", "L008")
        assert "interrupt operand" in diag.message

    def test_live_operands_do_not_trigger(self):
        assert "L008" not in fired("SPEC a1; exit [] b1; exit ENDSPEC")


class TestMixedChoice:
    def test_two_starter_choice_triggers(self):
        [diag] = only("SPEC a1; exit [] b2; exit ENDSPEC", "L009")
        assert "(1 and 2)" in diag.message
        assert "--mixed-choice" in diag.hint

    def test_single_starter_choice_does_not_trigger(self):
        assert "L009" not in fired(CLEAN)

    def test_mixed_choice_mode_forgives_arbiter_choices(self):
        # Same R2-clean two-starter choice as the two_phase_commit example.
        text = "SPEC a1; c3; exit [] b2; c3; exit ENDSPEC"
        plain = {d.rule for d in lint_text(text)}
        assert {"L009", "R1"} <= plain
        forgiven = lint_text(text, mixed_choice=True)
        assert {d.rule for d in forgiven} & {"L009", "R1"} == set()
        assert forgiven.ok

    def test_mixed_choice_mode_keeps_unresolvable_r1(self):
        # SP(left) is not a singleton: the arbiter cannot help; R1 stays.
        text = "SPEC (a1; c3; exit ||| b2; c3; exit) [] d3; c3; exit ENDSPEC"
        result = lint_text(text, mixed_choice=True)
        assert "R1" in {d.rule for d in result}


class TestNeedlessSync:
    def test_narrow_disable_triggers(self):
        text = "SPEC ((a1; b2; exit) [> (c2; exit)) >> d3; exit ENDSPEC"
        [diag] = only(text, "L010")
        assert diag.severity == INFO
        assert "{1,2}" in diag.message and "{1,2,3}" in diag.message

    def test_narrow_invocation_triggers(self):
        text = (
            "SPEC P >> c3; exit WHERE\n"
            "  PROC P = a1; b2; exit END\n"
            "ENDSPEC"
        )
        [diag] = only(text, "L010")
        assert "'P'" in diag.message

    def test_spec_wide_disable_does_not_trigger(self):
        # Paper Example 6: the disable spans all places of the spec.
        assert "L010" not in fired(
            "SPEC (a1; b2; c3; exit) [> (d3; exit) ENDSPEC"
        )

    def test_single_place_spec_does_not_trigger(self):
        text = "SPEC P WHERE\n  PROC P = a1; exit END\nENDSPEC"
        assert "L010" not in fired(text)


class TestDisableNotActionPrefix:
    def test_reference_operand_triggers(self):
        text = (
            "SPEC (a1; b2; exit) [> Handler WHERE\n"
            "  PROC Handler = d2; exit END\n"
            "ENDSPEC"
        )
        [diag] = only(text, "L011")
        assert "action prefix form" in diag.message

    def test_prefix_operand_does_not_trigger(self):
        assert "L011" not in fired(CLEAN)


class TestEngine:
    def test_parse_error_is_e001(self):
        result = lint_text("SPEC a1; ENDSPEC")
        [diag] = result.diagnostics
        assert diag.rule == "E001" and diag.severity == ERROR
        assert (diag.span.line, diag.span.column) == (1, 10)
        assert not result.ok

    def test_lexer_garbage_is_e001(self):
        assert fired("SPEC @!? ENDSPEC") == {"E001"}

    def test_unbound_reference_is_e002(self):
        result = lint_text("SPEC Ghost ENDSPEC")
        assert [d.rule for d in result.diagnostics] == ["E002"]
        assert "Ghost" in result.diagnostics[0].message

    def test_syntactic_rules_survive_preparation_failure(self):
        # Ghost breaks attribute evaluation; the purely syntactic L008
        # must still report the inert choice operand.
        found = fired("SPEC (a1; exit [] stop) >> Ghost ENDSPEC")
        assert "E002" in found and "L008" in found

    def test_restrictions_reported_as_errors(self):
        result = lint_text("SPEC a1; exit [] b2; exit ENDSPEC")
        by_rule = {d.rule: d for d in result.diagnostics}
        assert by_rule["R1"].severity == ERROR
        assert by_rule["R1"].name == "restriction-r1"
        assert by_rule["R1"].span is not None
        assert not result.ok

    def test_grammar_violations_located(self):
        [diag] = [d for d in lint_text("SPEC a1; stop ENDSPEC") if d.rule == "GRAMMAR"]
        assert (diag.span.line, diag.span.column) == (1, 10)

    def test_guard_and_apf_passthrough_superseded(self):
        # Unguarded recursion and non-APF disables surface as L007/L011,
        # never as the raw GUARD/APF restriction rules.
        unguarded = "SPEC A WHERE\n  PROC A = A [] a1; exit END\nENDSPEC"
        assert "GUARD" not in fired(unguarded)
        non_apf = (
            "SPEC (a1; b2; exit) [> Handler WHERE\n"
            "  PROC Handler = d2; exit END\n"
            "ENDSPEC"
        )
        assert "APF" not in fired(non_apf)

    def test_diagnostics_sorted_by_position(self):
        result = lint_text(
            "SPEC x1; exit WHERE\n"
            "  PROC A = a1; exit END\n"
            "  PROC B = b2; exit END\n"
            "ENDSPEC"
        )
        positions = [(d.span.line, d.span.column) for d in result.diagnostics]
        assert positions == sorted(positions)

    def test_lint_spec_accepts_parsed_specification(self):
        result = lint_spec(parse(CLEAN), source="clean.lotos")
        assert result.ok and result.source == "clean.lotos"


class TestDiagnosticModel:
    def test_format_is_gcc_style(self):
        diag = Diagnostic(
            rule="L001",
            name="unused-process",
            severity=WARNING,
            message="boom",
            span=Span(3, 8),
            hint="fix it",
        )
        assert diag.format("s.lotos") == (
            "s.lotos:3:8: warning: boom [L001]\n    hint: fix it"
        )

    def test_format_without_span(self):
        diag = Diagnostic("E002", "analysis-error", ERROR, "boom")
        assert diag.format("s.lotos") == "s.lotos: error: boom [E002]"

    def test_spans_are_one_based_and_cover_the_construct(self):
        [diag] = only(
            "SPEC a1; b2; exit WHERE\n  PROC Helper = c2; exit END\nENDSPEC",
            "L001",
        )
        assert diag.span.line >= 1 and diag.span.column >= 1

    def test_result_counts(self):
        result = lint_text("SPEC a1; exit [] b2; exit ENDSPEC")
        counts = result.summary()
        assert counts["errors"] == len(result.errors)
        assert counts["warnings"] == len(result.warnings)
        assert len(result) == sum(counts.values())


class TestJsonSchema:
    def test_round_trips_through_json_loads(self):
        result = lint_text(
            "SPEC a1; exit [] b2; exit ENDSPEC", source="mixed.lotos"
        )
        document = json.loads(result.render_json())
        assert document == result.to_dict()

    def test_document_shape(self):
        document = json.loads(
            lint_text(
                "SPEC a1; exit [] b2; exit ENDSPEC", source="mixed.lotos"
            ).render_json()
        )
        assert document["version"] == JSON_SCHEMA_VERSION
        assert document["source"] == "mixed.lotos"
        assert set(document["summary"]) == {"errors", "warnings", "infos"}
        for entry in document["diagnostics"]:
            assert set(entry) == {
                "rule",
                "name",
                "severity",
                "message",
                "line",
                "column",
                "end_line",
                "end_column",
                "hint",
            }
            assert entry["severity"] in SEVERITIES
            assert entry["line"] is None or entry["line"] >= 1

    def test_clean_document(self):
        document = json.loads(lint_text(CLEAN, source="ok.lotos").render_json())
        assert document["diagnostics"] == []
        assert document["summary"] == {"errors": 0, "warnings": 0, "infos": 0}


@pytest.mark.parametrize("rule_id", sorted(RULES))
def test_every_rule_has_trigger_coverage(rule_id):
    """Every registered rule is exercised by at least one trigger above."""
    triggers = {
        "L001": "SPEC a1; exit WHERE\n  PROC Helper = c2; exit END\nENDSPEC",
        "L002": (
            "SPEC P WHERE\n  PROC P = a1; exit END\n"
            "  PROC P = b2; exit END\nENDSPEC"
        ),
        "L003": (
            "SPEC Loop >> b2; exit WHERE\n  PROC Loop = a1; Loop END\nENDSPEC"
        ),
        "L004": "SPEC (a1; exit) |[b1]| (b1; exit) ENDSPEC",
        "L005": "SPEC (a1; b2; exit) |[a1]| (a1; b2; exit) ENDSPEC",
        "L006": "SPEC hide h2 in a1; exit ENDSPEC",
        "L007": "SPEC A WHERE\n  PROC A = A [] a1; exit END\nENDSPEC",
        "L008": "SPEC a1; exit [] stop ENDSPEC",
        "L009": "SPEC a1; exit [] b2; exit ENDSPEC",
        "L010": "SPEC ((a1; b2; exit) [> (c2; exit)) >> d3; exit ENDSPEC",
        "L011": (
            "SPEC (a1; b2; exit) [> Handler WHERE\n"
            "  PROC Handler = d2; exit END\nENDSPEC"
        ),
    }
    assert rule_id in fired(triggers[rule_id])
