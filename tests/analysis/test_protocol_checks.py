"""Protocol-analysis tests: deadlocks, blocked receptions, dead code."""

import pytest

from repro.analysis import analyze_protocol, analyze_system
from repro.core.generator import derive_protocol
from repro.lotos.parser import parse
from repro.runtime.system import build_system


class TestCleanProtocols:
    @pytest.mark.parametrize(
        "service",
        [
            "SPEC a1; b2; c3; exit ENDSPEC",
            "SPEC a1; exit >> b2; exit ENDSPEC",
            "SPEC (a1; b2; exit) [] (c1; d2; exit) ENDSPEC",
            "SPEC (a1; exit ||| b2; exit) >> c3; exit ENDSPEC",
        ],
    )
    def test_derived_protocols_are_clean(self, service):
        result = derive_protocol(service)
        report = analyze_protocol(result.entities)
        assert report.complete
        assert report.clean, report.render()

    def test_recursive_protocol_occurrence_free(self):
        result = derive_protocol(
            "SPEC A WHERE PROC A = a1; b2; A [] c1; exit END ENDSPEC"
        )
        report = analyze_protocol(result.entities, use_occurrences=False)
        assert report.complete
        assert not report.deadlocks
        assert not report.non_executable


class TestBrokenProtocols:
    def test_hand_made_cross_wait_deadlock(self):
        entities = {
            1: parse("SPEC a1; r2(9); exit ENDSPEC"),
            2: parse("SPEC b2; r1(7); exit ENDSPEC"),
        }
        report = analyze_protocol(entities)
        assert report.deadlocks
        assert len(report.blocked_receptions) == 2
        assert {blocked.place for blocked in report.blocked_receptions} == {1, 2}
        assert len(report.non_executable) == 2

    def test_witness_path_is_shortest(self):
        entities = {
            1: parse("SPEC a1; r2(9); exit ENDSPEC"),
            2: parse("SPEC b2; r1(7); exit ENDSPEC"),
        }
        report = analyze_protocol(entities)
        (deadlock,) = report.deadlocks
        assert len(deadlock.witness) == 2  # a1 and b2 in either order

    def test_pending_message_reported(self):
        # place 1 sends a message nobody ever receives, then both exit.
        entities = {
            1: parse("SPEC a1; s2(9); exit ENDSPEC"),
            2: parse("SPEC b2; exit ENDSPEC"),
        }
        report = analyze_protocol(entities, require_empty_at_exit=False)
        assert report.stale_at_termination
        (src, dest, message) = report.stale_at_termination[0]
        assert (src, dest, message.node) == (1, 2, 9)

    def test_dead_code_detected(self):
        # the r3(5) branch can never fire: there is no place 3 at all.
        entities = {
            1: parse("SPEC a1; exit [] r3(5); a1; exit ENDSPEC"),
        }
        report = analyze_protocol(entities)
        assert any(
            str(event) == "r3(5)" for _place, event in report.non_executable
        )

    def test_disable_residue_is_stale_not_deadlock(self):
        from repro import workloads

        result = derive_protocol(workloads.EXAMPLE3_FILE_TRANSFER)
        report = analyze_protocol(
            result.entities,
            discipline="selective",
            max_states=6_000,
            use_occurrences=False,
        )
        assert not report.deadlocks
        assert report.stale_at_termination  # Section 3.3 shortcoming residue


class TestReportRendering:
    def test_render_mentions_counts(self):
        result = derive_protocol("SPEC a1; b2; exit ENDSPEC")
        text = analyze_protocol(result.entities).render()
        assert "deadlocks" in text and "states explored" in text

    def test_analyze_system_requires_visible_messages_for_attribution(self):
        result = derive_protocol("SPEC a1; b2; exit ENDSPEC")
        system = build_system(result.entities, hide=True)
        # Works, but dead-code attribution needs the entities argument.
        report = analyze_system(system)
        assert report.non_executable == []


class TestDivergence:
    def test_clean_protocols_have_no_divergence(self):
        result = derive_protocol("SPEC a1; b2; c3; exit ENDSPEC")
        report = analyze_protocol(result.entities)
        assert report.divergences == []

    def test_internal_livelock_detected(self):
        # Entity 1 can slide into a silent message ping-pong with itself
        # via an internal loop: a1 then i-loop forever (hand-written).
        entities = {
            1: parse(
                "SPEC a1; L WHERE PROC L = i; L END ENDSPEC"
            ),
        }
        from repro.runtime.system import build_system
        from repro.analysis import analyze_system

        system = build_system(entities, hide=False, use_occurrences=False)
        report = analyze_system(system, entities=entities, max_states=100)
        assert report.divergences
        assert not report.clean

    def test_divergence_skipped_on_truncation(self):
        result = derive_protocol(
            "SPEC A WHERE PROC A = a1; b2; A [] c1; exit END ENDSPEC"
        )
        report = analyze_protocol(result.entities, max_states=40)
        assert not report.complete
        assert report.divergences == []  # honestly not computed
