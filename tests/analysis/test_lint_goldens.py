"""Lint golden-corpus and examples-sweep regression tests.

``tests/goldens/lint/`` pairs specification fixtures with the exact
text report of ``repro lint`` — rule id, 1-based line:column span,
message, hint and tally, character for character.  Any change to a
rule's wording, a span computation or the report format shows up here
as a readable diff.  To extend the corpus, add ``<name>.lotos`` and
record ``<name>.expected`` from ``repro lint``.

The sweep half lints every service specification shipped in
``examples/``: the examples must stay clean enough that ``repro lint``
exits 0 on them (no error-severity findings).
"""

import importlib
import pathlib
import sys

import pytest

from repro.analysis.lint import lint_text

LINT_GOLDEN_DIR = pathlib.Path(__file__).resolve().parents[1] / "goldens" / "lint"
CASES = sorted(p.stem for p in LINT_GOLDEN_DIR.glob("*.lotos"))

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

#: Example module -> {spec constant: lint kwargs}.  WITH_VETO is the
#: deliberate two-starter choice that examples/two_phase_commit.py
#: derives with mixed_choice=True, so it is linted for that mode.
EXAMPLE_SPECS = {
    "counting_protocol": {"SERVICE": {}},
    "error_recovery": {"SERVICE": {}},
    "file_transfer": {"SERVICE": {}},
    "quickstart": {"SERVICE": {}},
    "serve_demo": {"SERVICE": {}},
    "transport_service": {"SERVICE": {}},
    "two_phase_commit": {"PLAIN": {}, "WITH_VETO": {"mixed_choice": True}},
}


@pytest.mark.parametrize("name", CASES)
def test_lint_report_matches_golden(name):
    source = f"{name}.lotos"
    text = (LINT_GOLDEN_DIR / source).read_text()
    expected = (LINT_GOLDEN_DIR / f"{name}.expected").read_text()
    report = lint_text(text, source=source).render_text() + "\n"
    assert report == expected


def test_lint_corpus_is_complete():
    assert CASES, "lint golden corpus is empty"
    for name in CASES:
        assert (LINT_GOLDEN_DIR / f"{name}.expected").exists(), name


def _example_module(name):
    sys.path.insert(0, str(REPO_ROOT / "examples"))
    try:
        return importlib.import_module(name)
    finally:
        sys.path.pop(0)


@pytest.mark.parametrize(
    "module_name, constant",
    [(m, c) for m, constants in EXAMPLE_SPECS.items() for c in constants],
)
def test_example_specs_lint_clean(module_name, constant):
    module = _example_module(module_name)
    text = getattr(module, constant)
    kwargs = EXAMPLE_SPECS[module_name][constant]
    result = lint_text(text, source=f"{module_name}.{constant}", **kwargs)
    assert result.ok, result.render_text()


def test_example_sweep_is_complete():
    """Every example module with an embedded spec is part of the sweep."""
    for path in sorted((REPO_ROOT / "examples").glob("*.py")):
        module = _example_module(path.stem)
        embedded = [
            name
            for name in vars(module)
            if not name.startswith("__")
            and isinstance(getattr(module, name), str)
            and "ENDSPEC" in getattr(module, name)
        ]
        assert sorted(EXAMPLE_SPECS.get(path.stem, [])) == sorted(embedded)
