"""The shared worker-task plumbing (repro.batch.workers)."""

import pytest

from repro.batch.workers import (
    TASKS,
    error_document,
    lint_task,
    profile_task,
    run_task,
    stats_document,
    timeout_document,
)

SPEC = "SPEC a1; exit >> b2; exit ENDSPEC"


class TestRegistry:
    def test_every_serve_op_has_a_task(self):
        from repro.obs.schema import SERVE_OPS

        assert set(SERVE_OPS) <= set(TASKS)

    def test_derive_is_the_batch_entry_point(self):
        from repro.core.generator import derive_task

        assert TASKS["derive"] is derive_task


class TestRunTask:
    def test_success_envelope(self):
        settled = run_task("derive", SPEC)
        assert settled["ok"] is True
        assert settled["result"]["places"] == [1, 2]

    def test_parse_error_is_a_client_failure(self):
        settled = run_task("derive", "NOT LOTOS")
        assert settled == {
            "ok": False,
            "kind": "client",
            "error": settled["error"],
        }
        assert settled["error"]["type"] == "ParseError"
        assert settled["error"]["traceback"]  # kept for the server log

    def test_unknown_option_is_a_client_failure(self):
        settled = run_task("derive", SPEC, {"frobnicate": 1})
        assert settled["kind"] == "client"
        assert settled["error"]["type"] == "ValueError"

    def test_unknown_operation_is_a_client_failure(self):
        settled = run_task("transmogrify", SPEC)
        assert settled["kind"] == "client"
        assert settled["error"]["type"] == "UnknownOperation"
        assert "derive" in settled["error"]["message"]

    def test_unexpected_exception_is_internal(self, monkeypatch):
        def explode(text, options=None):
            raise RuntimeError("worker bug")

        monkeypatch.setitem(TASKS, "derive", explode)
        settled = run_task("derive", SPEC)
        assert settled["kind"] == "internal"
        assert settled["error"]["type"] == "RuntimeError"

    def test_never_raises(self):
        # even a pathological op name settles into an envelope
        assert run_task(None, SPEC)["ok"] is False


class TestLintTask:
    def test_returns_the_lint_document(self):
        document = lint_task(SPEC)
        assert document["summary"]["errors"] == 0
        assert document["source"] == "<request>"

    def test_source_and_mixed_choice_options(self):
        document = lint_task(SPEC, {"source": "my.lotos"})
        assert document["source"] == "my.lotos"

    def test_unknown_option_is_rejected(self):
        with pytest.raises(ValueError, match="unknown lint option"):
            lint_task(SPEC, {"runs": 3})


class TestProfileTask:
    def test_returns_the_profile_document(self):
        document = profile_task(SPEC, {"runs": 1})
        assert document["schema"] == "repro.obs.profile/v1"

    def test_unknown_option_is_rejected(self):
        with pytest.raises(ValueError, match="unknown profile option"):
            profile_task(SPEC, {"frobnicate": True})

    def test_options_are_coerced(self):
        document = profile_task(SPEC, {"runs": "2"})
        assert len(document["runs"]) == 2


class TestDocuments:
    def test_error_document_shape(self):
        try:
            raise ValueError("boom")
        except ValueError as exc:
            document = error_document(exc)
        assert document["type"] == "ValueError"
        assert document["message"] == "boom"
        assert "ValueError: boom" in document["traceback"]

    def test_timeout_document_shape(self):
        document = timeout_document(2.5)
        assert document["type"] == "TimeoutError"
        assert "2.5" in document["message"]

    def test_stats_document_matches_the_profile_schema(self):
        from repro.obs.schema import validate_report

        payload = run_task("derive", SPEC)["result"]
        document = stats_document("example", payload)
        assert validate_report(document) == []
        assert document["derivation"]["sync_fragments"] == (
            payload["sync_fragments"]
        )
