"""The closed-loop load generator and its report schema."""

import asyncio

import pytest

from repro.obs.schema import validate_loadgen
from repro.serve.loadgen import percentile, render_digest, run_loadgen
from tests.serve.conftest import EXAMPLE_SPEC, running_server


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_single_sample_is_every_percentile(self):
        assert percentile([7.0], 1) == 7.0
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 99) == 7.0

    def test_nearest_rank_on_a_known_ladder(self):
        samples = [float(n) for n in range(1, 101)]  # 1..100 sorted
        assert percentile(samples, 50) == 50.0
        assert percentile(samples, 95) == 95.0
        assert percentile(samples, 99) == 99.0
        assert percentile(samples, 100) == 100.0

    def test_small_sample_rounds_up(self):
        # nearest-rank: p50 of 3 samples is rank ceil(1.5) = 2
        assert percentile([1.0, 2.0, 3.0], 50) == 2.0
        assert percentile([1.0, 2.0, 3.0], 99) == 3.0


class TestRunLoadgen:
    def test_burst_against_in_process_server(self, tmp_path):
        async def main():
            async with running_server(cache_dir=str(tmp_path)) as server:
                host, port = server.address
                return await run_loadgen(
                    host, port, EXAMPLE_SPEC,
                    connections=4, requests=20, timeout=30.0,
                )

        report = asyncio.run(main())
        assert validate_loadgen(report) == []
        assert report["completed"] == 20
        assert report["ok"] == 20
        assert report["failed"] == 0
        assert report["shed"] == 0
        assert report["statuses"] == {"200": 20}
        # exactly one derivation: everything after the first miss hits
        assert report["cache"]["miss"] >= 1
        assert report["cache"]["hit"] + report["cache"]["miss"] == 20
        assert report["throughput_rps"] > 0
        latency = report["latency_ms"]
        assert 0 < latency["p50"] <= latency["p95"] <= latency["p99"]
        assert latency["p99"] <= latency["max"]

    def test_second_identical_burst_is_all_hits(self, tmp_path):
        async def main():
            async with running_server(cache_dir=str(tmp_path)) as server:
                host, port = server.address
                first = await run_loadgen(
                    host, port, EXAMPLE_SPEC, connections=2, requests=6
                )
                # concurrent first-touch requests may race the first put,
                # so "cold" costs at most one derivation per connection
                cold = server.registry.counter("serve.derivations").value()
                second = await run_loadgen(
                    host, port, EXAMPLE_SPEC, connections=2, requests=6
                )
                warm = server.registry.counter("serve.derivations").value()
                return first, second, cold, warm

        first, second, cold, warm = asyncio.run(main())
        assert first["failed"] == second["failed"] == 0
        assert 1 <= cold <= 2
        assert second["cache"] == {"hit": 6, "miss": 0, "off": 0}
        assert warm == cold  # the warm burst derived nothing

    def test_unreachable_server_reports_transport_failures(self):
        async def main():
            # a port nothing listens on: bind-then-close to reserve one
            server = await asyncio.start_server(
                lambda r, w: None, host="127.0.0.1", port=0
            )
            port = server.sockets[0].getsockname()[1]
            server.close()
            await server.wait_closed()
            return await run_loadgen(
                "127.0.0.1", port, EXAMPLE_SPEC, connections=2, requests=4
            )

        report = asyncio.run(main())
        assert report["failed"] == 4
        assert report["ok"] == 0
        assert report["statuses"] == {"0": 4}

    def test_bad_arguments_are_rejected(self):
        with pytest.raises(ValueError):
            asyncio.run(run_loadgen("h", 1, "s", connections=0))
        with pytest.raises(ValueError):
            asyncio.run(run_loadgen("h", 1, "s", requests=0))


class TestRenderDigest:
    def test_digest_mentions_the_headline_numbers(self, tmp_path):
        async def main():
            async with running_server(cache_dir=str(tmp_path)) as server:
                host, port = server.address
                return await run_loadgen(
                    host, port, EXAMPLE_SPEC, connections=2, requests=5
                )

        digest = render_digest(asyncio.run(main()))
        assert digest.startswith("loadgen: derive x5")
        assert "5 ok, 0 shed, 0 failed" in digest
        assert "p50=" in digest and "p99=" in digest
