"""The derivation server: routing, robustness, overload, drain, cache."""

import asyncio
import json
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import pytest

import repro.batch.workers as workers
from repro.batch.cache import EntityCache
from repro.core.generator import derive_protocol
from repro.obs.schema import validate_metrics, validate_serve_response
from repro.serve.client import AsyncServeClient
from tests.serve.conftest import EXAMPLE_SPEC, running_server


def sleepy_derive_task(text, options=None, _duration=0.5):
    time.sleep(_duration)
    return workers.derive_task(text, options)


class TestRouting:
    def test_healthz_metrics_and_derive(self):
        async def main():
            async with running_server() as server:
                client = AsyncServeClient(*server.address)
                status, health = await client.request("GET", "/healthz")
                assert status == 200
                assert health["status"] == "ok"
                assert health["worker_kind"] == "thread"

                status, envelope = await client.post_op("derive", EXAMPLE_SPEC)
                assert status == 200
                assert validate_serve_response(envelope) == []
                expected = derive_protocol(EXAMPLE_SPEC)
                assert envelope["result"]["places"] == expected.places
                for place in expected.places:
                    assert (
                        envelope["result"]["entities"][str(place)]
                        == expected.entity_text(place)
                    )
                # worker-local observability payloads stay off the wire
                assert "trace" not in envelope["result"]

                status, snapshot = await client.request("GET", "/metrics")
                assert status == 200
                assert validate_metrics(snapshot) == []
                names = {metric["name"] for metric in snapshot["metrics"]}
                assert "serve.requests" in names
                assert "serve.latency_ms" in names
                await client.close()

        asyncio.run(main())

    def test_lint_and_profile_endpoints(self):
        async def main():
            async with running_server() as server:
                client = AsyncServeClient(*server.address)
                status, envelope = await client.post_op("lint", EXAMPLE_SPEC)
                assert status == 200 and envelope["ok"]
                assert envelope["result"]["summary"]["errors"] == 0

                status, envelope = await client.post_op(
                    "profile", EXAMPLE_SPEC, {"runs": 1}
                )
                assert status == 200 and envelope["ok"]
                assert envelope["result"]["schema"] == "repro.obs.profile/v1"
                await client.close()

        asyncio.run(main())

    def test_unknown_route_404_and_wrong_method_405(self):
        async def main():
            async with running_server() as server:
                client = AsyncServeClient(*server.address)
                status, envelope = await client.request("GET", "/nope")
                assert status == 404 and not envelope["ok"]
                status, envelope = await client.request("GET", "/v1/derive")
                assert status == 405
                status, envelope = await client.request("POST", "/healthz")
                assert status == 405
                await client.close()

        asyncio.run(main())


class TestBadRequests:
    def test_malformed_json_is_400(self):
        async def main():
            async with running_server() as server:
                reader, writer = await asyncio.open_connection(*server.address)
                body = b"{definitely not json"
                writer.write(
                    (
                        f"POST /v1/derive HTTP/1.1\r\n"
                        f"Content-Length: {len(body)}\r\n\r\n"
                    ).encode()
                    + body
                )
                await writer.drain()
                from repro.serve.protocol import read_response

                status, _, payload = await read_response(reader)
                assert status == 400
                assert not json.loads(payload)["ok"]
                writer.close()

        asyncio.run(main())

    def test_schema_violation_is_400(self):
        async def main():
            async with running_server() as server:
                client = AsyncServeClient(*server.address)
                status, envelope = await client.request(
                    "POST", "/v1/derive", {"schema": "wrong/v9", "spec": "x"}
                )
                assert status == 400
                assert envelope["error"]["type"] == "SchemaError"
                status, envelope = await client.request(
                    "POST", "/v1/derive",
                    {"schema": "repro.serve.request/v1", "spec": "x",
                     "extra": True},
                )
                assert status == 400
                await client.close()

        asyncio.run(main())

    def test_oversized_body_is_413_and_server_survives(self):
        async def main():
            async with running_server(max_body_bytes=64) as server:
                reader, writer = await asyncio.open_connection(*server.address)
                writer.write(
                    b"POST /v1/derive HTTP/1.1\r\nContent-Length: 99999\r\n\r\n"
                )
                await writer.drain()
                from repro.serve.protocol import read_response

                status, _, _ = await read_response(reader)
                assert status == 413
                writer.close()
                # the server is still fine afterwards
                client = AsyncServeClient(*server.address)
                status, health = await client.request("GET", "/healthz")
                assert status == 200 and health["status"] == "ok"
                await client.close()

        asyncio.run(main())

    def test_bad_spec_is_422_client_error(self):
        async def main():
            async with running_server() as server:
                client = AsyncServeClient(*server.address)
                status, envelope = await client.post_op("derive", "NOT LOTOS")
                assert status == 422
                assert envelope["error"]["type"] == "ParseError"
                assert "traceback" not in envelope["error"]
                await client.close()

        asyncio.run(main())

    def test_unknown_option_is_422(self):
        async def main():
            async with running_server() as server:
                client = AsyncServeClient(*server.address)
                status, envelope = await client.post_op(
                    "derive", EXAMPLE_SPEC, {"frobnicate": True}
                )
                assert status == 422
                assert envelope["error"]["type"] == "ValueError"
                await client.close()

        asyncio.run(main())


class TestConcurrency:
    def test_concurrent_distinct_requests_all_answer_correctly(self):
        from repro import workloads
        from repro.lotos.unparse import unparse

        specs = [
            unparse(workloads.pipeline(places))
            for places in (2, 3, 4, 5)
        ] * 2

        async def main():
            async with running_server(workers=4) as server:
                async def one(spec):
                    client = AsyncServeClient(*server.address)
                    try:
                        return spec, await client.post_op("derive", spec)
                    finally:
                        await client.close()

                results = await asyncio.gather(*(one(s) for s in specs))
                for spec, (status, envelope) in results:
                    assert status == 200
                    expected = derive_protocol(spec)
                    assert envelope["result"]["places"] == expected.places

        asyncio.run(main())


class TestOverload:
    def test_excess_load_is_shed_with_503_and_server_stays_responsive(
        self, monkeypatch
    ):
        monkeypatch.setitem(workers.TASKS, "derive", sleepy_derive_task)

        async def main():
            async with running_server(workers=1, queue_limit=1) as server:
                async def one():
                    client = AsyncServeClient(*server.address)
                    try:
                        return await client.post_op("derive", EXAMPLE_SPEC)
                    finally:
                        await client.close()

                burst = asyncio.gather(*(one() for _ in range(6)))
                # while the burst is stuck behind the sleeping worker,
                # the control plane still answers instantly
                await asyncio.sleep(0.1)
                probe = AsyncServeClient(*server.address)
                started = time.perf_counter()
                status, health = await probe.request("GET", "/healthz")
                assert status == 200
                assert time.perf_counter() - started < 0.5
                await probe.close()

                results = await burst
                statuses = sorted(status for status, _ in results)
                assert statuses.count(200) >= 1
                assert statuses.count(503) >= 1
                assert set(statuses) <= {200, 503}  # never a crash or hang
                shed_envelopes = [
                    envelope for status, envelope in results if status == 503
                ]
                for envelope in shed_envelopes:
                    assert envelope["error"]["type"] == "Overloaded"
                shed_count = server.registry.counter("serve.shed").value(
                    route="derive"
                )
                assert shed_count == statuses.count(503)

        asyncio.run(main())

    def test_shed_responses_are_fast(self, monkeypatch):
        monkeypatch.setitem(workers.TASKS, "derive", sleepy_derive_task)

        async def main():
            async with running_server(workers=1, queue_limit=1) as server:
                blocker = AsyncServeClient(*server.address)
                blocked = asyncio.ensure_future(
                    blocker.post_op("derive", EXAMPLE_SPEC)
                )
                await asyncio.sleep(0.1)  # let it occupy the queue slot
                client = AsyncServeClient(*server.address)
                started = time.perf_counter()
                status, _ = await client.post_op("derive", EXAMPLE_SPEC)
                elapsed = time.perf_counter() - started
                assert status == 503
                assert elapsed < 0.2  # shed immediately, not after the worker
                await client.close()
                await blocked
                await blocker.close()

        asyncio.run(main())


class TestTimeouts:
    def test_overdue_request_is_504_and_counted(self, monkeypatch):
        monkeypatch.setitem(workers.TASKS, "derive", sleepy_derive_task)

        async def main():
            async with running_server(
                workers=1, request_timeout=0.05
            ) as server:
                client = AsyncServeClient(*server.address)
                status, envelope = await client.post_op("derive", EXAMPLE_SPEC)
                assert status == 504
                assert envelope["error"]["type"] == "TimeoutError"
                assert server.registry.counter("serve.timeouts").value(
                    route="derive"
                ) == 1
                await client.close()

        asyncio.run(main())


class TestBrokenPool:
    def test_broken_pool_fails_one_request_then_respawns(self):
        class BrokenOnceFactory:
            """First executor breaks every submit; respawn gets a real one."""

            def __init__(self):
                self.spawned = 0

            def __call__(self, workers):
                self.spawned += 1
                if self.spawned == 1:
                    return _BrokenExecutor()
                return ThreadPoolExecutor(workers)

        factory = BrokenOnceFactory()

        async def main():
            from repro.serve.server import DerivationServer, ServeConfig

            server = DerivationServer(
                ServeConfig(port=0, workers=1, worker_kind="process",
                            cache_dir=None, access_log=False),
                executor_factory=factory,
            )
            await server.start()
            try:
                client = AsyncServeClient(*server.address)
                status, envelope = await client.post_op("derive", EXAMPLE_SPEC)
                # the broken pool poisoned the first request, but the
                # respawned pool serves it (retry-once on submit failure)
                # or answers 500 — never a hang, never a dead server
                assert status in (200, 500)
                status, envelope = await client.post_op("derive", EXAMPLE_SPEC)
                assert status == 200
                assert server.pool.respawns >= 1
                await client.close()
            finally:
                await server.shutdown()

        asyncio.run(main())


class _BrokenExecutor:
    def submit(self, fn, *args, **kwargs):
        raise BrokenProcessPool("worker died")

    def shutdown(self, wait=True, cancel_futures=False):
        pass


class TestCache:
    def test_repeated_derive_is_a_cache_hit_with_zero_new_derivations(
        self, tmp_path
    ):
        async def main():
            async with running_server(cache_dir=str(tmp_path)) as server:
                client = AsyncServeClient(*server.address)
                status, first = await client.post_op("derive", EXAMPLE_SPEC)
                assert status == 200 and first["cache"] == "miss"
                derivations = server.registry.counter(
                    "serve.derivations"
                ).value()
                assert derivations == 1

                status, second = await client.post_op("derive", EXAMPLE_SPEC)
                assert status == 200 and second["cache"] == "hit"
                assert second["result"] == first["result"]
                assert server.registry.counter(
                    "serve.derivations"
                ).value() == 1  # zero new derivations
                assert server.registry.counter(
                    "serve.cache.hits"
                ).value() == 1
                await client.close()

        asyncio.run(main())

    def test_cosmetic_whitespace_still_hits(self, tmp_path):
        async def main():
            async with running_server(cache_dir=str(tmp_path)) as server:
                client = AsyncServeClient(*server.address)
                await client.post_op("derive", EXAMPLE_SPEC)
                status, envelope = await client.post_op(
                    "derive", EXAMPLE_SPEC + "   \n\n"
                )
                assert envelope["cache"] == "hit"
                await client.close()

        asyncio.run(main())

    def test_option_flip_misses(self, tmp_path):
        async def main():
            async with running_server(cache_dir=str(tmp_path)) as server:
                client = AsyncServeClient(*server.address)
                await client.post_op("derive", EXAMPLE_SPEC)
                status, envelope = await client.post_op(
                    "derive", EXAMPLE_SPEC, {"emit_sync": False}
                )
                assert envelope["cache"] == "miss"
                await client.close()

        asyncio.run(main())

    def test_serve_shares_the_batch_cache_store(self, tmp_path):
        """A spec derived through batch is a serve cache hit, and back."""
        from repro.batch import corpus_from_texts, run_batch

        cache = EntityCache(tmp_path)
        outcome = run_batch(
            corpus_from_texts([("example", EXAMPLE_SPEC)]), cache=cache
        )
        assert outcome.ok

        async def main():
            async with running_server(cache_dir=str(tmp_path)) as server:
                client = AsyncServeClient(*server.address)
                status, envelope = await client.post_op("derive", EXAMPLE_SPEC)
                assert envelope["cache"] == "hit"
                assert server.registry.counter(
                    "serve.derivations"
                ).value() == 0
                await client.close()

        asyncio.run(main())


class TestGracefulDrain:
    def test_shutdown_drains_in_flight_requests(self, monkeypatch):
        monkeypatch.setitem(
            workers.TASKS,
            "derive",
            lambda text, options=None: sleepy_derive_task(
                text, options, _duration=0.3
            ),
        )

        async def main():
            async with running_server(workers=1) as server:
                client = AsyncServeClient(*server.address)
                in_flight = asyncio.ensure_future(
                    client.post_op("derive", EXAMPLE_SPEC)
                )
                await asyncio.sleep(0.1)  # the request is inside the worker
                await server.shutdown()
                status, envelope = await in_flight
                assert status == 200 and envelope["ok"]
                await client.close()
                # new connections are refused after drain
                with pytest.raises(OSError):
                    reader, writer = await asyncio.open_connection(
                        *server.address
                    )
                    writer.close()

        asyncio.run(main())

    def test_healthz_reports_draining(self):
        async def main():
            async with running_server() as server:
                # simulate the drain flag without closing the listener
                server._draining = True
                client = AsyncServeClient(*server.address)
                status, health = await client.request("GET", "/healthz")
                assert health["status"] == "draining"
                status, envelope = await client.post_op("derive", EXAMPLE_SPEC)
                assert status == 503  # draining server sheds new work
                await client.close()

        asyncio.run(main())


class TestProcessPool:
    def test_real_process_workers_round_trip(self):
        async def main():
            async with running_server(
                workers=1, worker_kind="process"
            ) as server:
                client = AsyncServeClient(*server.address)
                status, envelope = await client.post_op("derive", EXAMPLE_SPEC)
                assert status == 200
                expected = derive_protocol(EXAMPLE_SPEC)
                assert envelope["result"]["places"] == expected.places
                await client.close()

        asyncio.run(main())


class TestDigest:
    def test_digest_summarizes_the_run(self, tmp_path):
        async def main():
            async with running_server(cache_dir=str(tmp_path)) as server:
                client = AsyncServeClient(*server.address)
                await client.post_op("derive", EXAMPLE_SPEC)
                await client.post_op("derive", EXAMPLE_SPEC)
                await client.close()
                digest = server.digest()
                assert "2 request(s)" in digest
                assert "1 cache hit(s)" in digest

        asyncio.run(main())
