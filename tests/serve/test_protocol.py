"""HTTP/1.1 framing: parsing, limits, and the shared wire shapes."""

import asyncio
import json

import pytest

from repro.serve.protocol import (
    ProtocolError,
    Request,
    read_request,
    read_response,
    render_json_response,
    render_response,
)


def parse(raw: bytes, max_body: int = 1_000_000):
    async def main():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, max_body)

    return asyncio.run(main())


def frame(
    method="POST", target="/v1/derive", body=b"{}", headers=()
) -> bytes:
    lines = [f"{method} {target} HTTP/1.1", f"Content-Length: {len(body)}"]
    lines.extend(headers)
    return ("\r\n".join(lines) + "\r\n\r\n").encode() + body


class TestReadRequest:
    def test_parses_method_target_headers_and_body(self):
        request = parse(frame(body=b'{"x": 1}'))
        assert request.method == "POST"
        assert request.target == "/v1/derive"
        assert request.headers["content-length"] == "8"
        assert request.json() == {"x": 1}

    def test_clean_eof_reads_as_none(self):
        assert parse(b"") is None

    def test_header_names_are_case_insensitive(self):
        request = parse(frame(headers=["X-Custom-Header: yes"]))
        assert request.headers["x-custom-header"] == "yes"

    @pytest.mark.parametrize(
        "raw",
        [
            b"NOT A REQUEST\r\n\r\n",
            b"GET /healthz SPDY/3\r\n\r\n",
            b"GET\r\n\r\n",
            b"POST /v1/derive HTTP/1.1\r\nbroken header\r\n\r\n",
            b"POST /v1/derive HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST /v1/derive HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
            b"POST /v1/derive HTTP/1.1\r\n\r\n",  # POST without length
        ],
    )
    def test_malformed_requests_are_400(self, raw):
        with pytest.raises(ProtocolError) as excinfo:
            parse(raw)
        assert excinfo.value.status == 400

    def test_truncated_body_is_400(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"
        with pytest.raises(ProtocolError) as excinfo:
            parse(raw)
        assert excinfo.value.status == 400

    def test_oversized_declared_body_is_413_without_reading_it(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n"
        with pytest.raises(ProtocolError) as excinfo:
            parse(raw, max_body=100)
        assert excinfo.value.status == 413

    def test_chunked_transfer_coding_is_501(self):
        raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        with pytest.raises(ProtocolError) as excinfo:
            parse(raw)
        assert excinfo.value.status == 501

    def test_too_many_headers_is_400(self):
        headers = [f"X-H{i}: {i}" for i in range(100)]
        with pytest.raises(ProtocolError) as excinfo:
            parse(frame(headers=headers))
        assert excinfo.value.status == 400

    def test_invalid_json_body_raises_400_from_json(self):
        request = parse(frame(body=b"{not json"))
        with pytest.raises(ProtocolError) as excinfo:
            request.json()
        assert excinfo.value.status == 400


class TestKeepAlive:
    def test_http11_defaults_to_keep_alive(self):
        assert Request("GET", "/", "HTTP/1.1").keep_alive

    def test_http11_connection_close_wins(self):
        request = Request(
            "GET", "/", "HTTP/1.1", headers={"connection": "close"}
        )
        assert not request.keep_alive

    def test_http10_defaults_to_close(self):
        assert not Request("GET", "/", "HTTP/1.0").keep_alive


class TestResponses:
    def test_render_and_read_round_trip(self):
        raw = render_json_response(200, {"hello": "world"})

        async def main():
            reader = asyncio.StreamReader()
            reader.feed_data(raw)
            reader.feed_eof()
            return await read_response(reader)

        status, headers, body = asyncio.run(main())
        assert status == 200
        assert headers["content-type"] == "application/json"
        assert json.loads(body) == {"hello": "world"}

    def test_close_response_carries_connection_close(self):
        raw = render_response(503, b"{}", keep_alive=False)
        assert b"Connection: close" in raw

    def test_extra_headers_ride_along(self):
        raw = render_response(503, b"{}", extra_headers={"Retry-After": "1"})
        assert b"Retry-After: 1" in raw
