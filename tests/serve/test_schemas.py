"""The serve wire schemas: request, response, loadgen report."""

from repro.obs.schema import (
    SERVE_REQUEST_SCHEMA,
    SERVE_RESPONSE_SCHEMA,
    validate_loadgen,
    validate_serve_request,
    validate_serve_response,
)
from repro.serve.client import request_document


def good_request():
    return {"schema": SERVE_REQUEST_SCHEMA, "spec": "SPEC ... ENDSPEC"}


def good_response():
    return {
        "schema": SERVE_RESPONSE_SCHEMA,
        "op": "derive",
        "ok": True,
        "status": 200,
        "cache": "miss",
        "duration_s": 0.01,
        "request_id": "000001",
        "result": {"places": [1, 2]},
        "error": None,
    }


class TestRequestValidator:
    def test_accepts_the_client_document(self):
        assert validate_serve_request(request_document("SPEC")) == []
        assert validate_serve_request(
            request_document("SPEC", {"mixed_choice": True})
        ) == []

    def test_accepts_null_options(self):
        document = good_request()
        document["options"] = None
        assert validate_serve_request(document) == []

    def test_rejects_non_object(self):
        assert validate_serve_request("nope") == ["request: not an object"]

    def test_rejects_wrong_schema_tag(self):
        document = good_request()
        document["schema"] = "repro.serve.request/v0"
        assert any("schema" in p for p in validate_serve_request(document))

    def test_rejects_missing_spec(self):
        document = good_request()
        del document["spec"]
        assert any("spec" in p for p in validate_serve_request(document))

    def test_rejects_non_object_options(self):
        document = good_request()
        document["options"] = ["strict"]
        assert any("options" in p for p in validate_serve_request(document))

    def test_rejects_unknown_fields(self):
        document = good_request()
        document["verbose"] = True
        problems = validate_serve_request(document)
        assert any("unknown field" in p for p in problems)


class TestResponseValidator:
    def test_accepts_an_ok_envelope(self):
        assert validate_serve_response(good_response()) == []

    def test_accepts_an_error_envelope(self):
        document = good_response()
        document.update(
            ok=False, status=422, result=None,
            error={"type": "ParseError", "message": "bad spec"},
        )
        assert validate_serve_response(document) == []

    def test_ok_without_result_is_rejected(self):
        document = good_response()
        document["result"] = None
        assert any("result" in p for p in validate_serve_response(document))

    def test_failure_without_error_is_rejected(self):
        document = good_response()
        document.update(ok=False, error=None)
        assert any("error" in p for p in validate_serve_response(document))

    def test_unknown_cache_verdict_is_rejected(self):
        document = good_response()
        document["cache"] = "stale"
        assert any("cache" in p for p in validate_serve_response(document))


class TestLoadgenValidator:
    def good(self):
        return {
            "schema": "repro.obs.loadgen/v2",
            "op": "derive",
            "target": "127.0.0.1:8437",
            "connections": 4,
            "requests": 16,
            "completed": 16,
            "ok": 16,
            "shed": 0,
            "failed": 0,
            "recovered": 0,
            "exhausted": 0,
            "retries": 0,
            "statuses": {"200": 16},
            "cache": {"hit": 15, "miss": 1, "off": 0},
            "duration_s": 0.25,
            "throughput_rps": 64.0,
            "latency_ms": {
                "mean": 10.0, "p50": 9.0, "p95": 20.0, "p99": 30.0,
                "max": 31.0,
            },
        }

    def test_accepts_a_full_report(self):
        assert validate_loadgen(self.good()) == []

    def test_rejects_unknown_op(self):
        document = self.good()
        document["op"] = "frobnicate"
        assert any("op" in p for p in validate_loadgen(document))

    def test_rejects_missing_latency_fields(self):
        document = self.good()
        del document["latency_ms"]["p99"]
        assert any("p99" in p for p in validate_loadgen(document))

    def test_rejects_missing_cache_fields(self):
        document = self.good()
        del document["cache"]["off"]
        assert any("cache" in p for p in validate_loadgen(document))

    def test_rejects_v1_reports_missing_retry_fields(self):
        document = self.good()
        document["schema"] = "repro.obs.loadgen/v1"
        del document["recovered"]
        del document["exhausted"]
        del document["retries"]
        problems = validate_loadgen(document)
        assert any("schema" in p for p in problems)
        assert any("retries" in p for p in problems)
