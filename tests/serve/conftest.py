"""Shared helpers: an in-process derivation server on a free port.

Each test owns one event loop (``asyncio.run``) and runs the server's
whole life inside it — thread workers by default so no fork cost is
paid per test.
"""

from contextlib import asynccontextmanager

from repro.serve.server import DerivationServer, ServeConfig

EXAMPLE_SPEC = "SPEC a1; exit >> b2; exit ENDSPEC"


@asynccontextmanager
async def running_server(**overrides):
    """Start a server with config overrides; always drains on exit."""
    defaults = dict(
        port=0,
        workers=2,
        worker_kind="thread",
        cache_dir=None,
        access_log=False,
    )
    defaults.update(overrides)
    server = DerivationServer(ServeConfig(**defaults))
    await server.start()
    try:
        yield server
    finally:
        await server.shutdown()
