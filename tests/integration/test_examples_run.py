"""Smoke tests: every shipped example script runs green.

The examples double as living documentation; these tests keep them from
rotting.  Each is executed in-process (runpy) with its module guard, and
the assertions inside the scripts do the real checking.
"""

import io
import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs(script, monkeypatch):
    captured = io.StringIO()
    monkeypatch.setattr(sys, "stdout", captured)
    runpy.run_path(str(script), run_name="__main__")
    output = captured.getvalue()
    assert output.strip(), f"{script.name} produced no output"


def test_expected_examples_present():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart",
        "file_transfer",
        "counting_protocol",
        "transport_service",
        "error_recovery",
        "protocol_inspection",
    } <= names
