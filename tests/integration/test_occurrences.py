"""Occurrence-number experiments (E7, paper Section 3.5, Examples 7 and 8).

Multiple simultaneous instances of the same process exchange messages
with identical node numbers; only the occurrence parameterization keeps
them apart.  These tests demonstrate both directions: with occurrences
the protocol is correct, and *without* them the specific confusion the
paper predicts (place 4 of Example 7 matching a message to the wrong
instance) becomes observable.
"""

from repro.core.generator import derive_protocol
from repro.runtime import build_system, check_run, random_run
from repro.runtime.executor import run_many


class TestExample7WithOccurrences:
    def test_all_schedules_conform(self, example7):
        system = build_system(example7.entities)
        for run in run_many(system, runs=40, max_steps=1_500):
            assert not run.deadlocked, str(run)
            verdict = check_run(example7.service, run)
            assert verdict.ok, str(verdict)

    def test_g4_happens_twice_after_full_instances(self, example7):
        system = build_system(example7.entities)
        run = random_run(system, seed=9, max_steps=1_500)
        assert run.terminated
        names = [str(event) for event in run.trace]
        assert names.count("g4") == 2
        # every g4 requires a preceding completed (a1, b2, c3) round:
        for position, name in enumerate(names):
            if name == "g4":
                prefix = names[:position]
                completed = min(
                    prefix.count("a1"), prefix.count("b2"), prefix.count("c3")
                )
                assert completed >= names[:position].count("g4") + 1

    def test_messages_carry_distinct_occurrences(self, example7):
        from repro.lotos.events import SendAction

        system = build_system(example7.entities, hide=False)
        run_occurrences = set()
        state = system.initial
        import random

        rng = random.Random(3)
        for _ in range(400):
            transitions = system.transitions(state)
            if not transitions:
                break
            label, state = transitions[rng.randrange(len(transitions))]
            if isinstance(label, SendAction):
                run_occurrences.add(label.message.occurrence)
        # left instance path != right instance path
        assert len({occ for occ in run_occurrences if occ}) >= 2


class TestExample7WithoutOccurrences:
    """Reproduction finding (see EXPERIMENTS.md).

    Without Section 3.5's occurrence parameterization, place 4 really
    does match messages to the *wrong instance* of B — the mechanism the
    paper worries about.  For Example 7 specifically, the two instances
    are structurally identical, so every cross-matched execution is
    trace-equivalent to a correctly-matched one: the confusion exists at
    the instance level but is invisible to an observer of the service
    access points.  The tests pin down both halves of that statement.
    """

    def test_messages_are_indistinguishable_without_occurrences(self, example7):
        from repro.lotos.events import SendAction

        system = build_system(example7.entities, hide=False, use_occurrences=False)
        identities = set()
        state = system.initial
        import random

        rng = random.Random(3)
        for _ in range(400):
            transitions = system.transitions(state)
            if not transitions:
                break
            label, state = transitions[rng.randrange(len(transitions))]
            if isinstance(label, SendAction) and label.message.node == 5:
                # the per-instance process-body message: without
                # occurrences both instances produce the same identity.
                identities.add((label.src, label.dest, label.message))
        by_channel = {}
        for src, dest, message in identities:
            by_channel.setdefault((src, dest), set()).add(message)
        assert any(len(messages) == 1 for messages in by_channel.values())

    def test_cross_matching_is_trace_invisible_for_symmetric_instances(
        self, example7
    ):
        # Both instances of B are identical, so even with instance
        # confusion every observable trace remains a service trace.
        system = build_system(example7.entities, use_occurrences=False)
        for seed in range(60):
            run = random_run(system, seed=seed, max_steps=1_500)
            assert not run.deadlocked
            verdict = check_run(example7.service, run)
            assert verdict.ok, str(verdict)


class TestExample8RecursiveDisable:
    SERVICE = """
    SPEC A WHERE
      PROC A = (a1; c1; A [> b2; d1; exit) [] (e1; exit)
    END ENDSPEC
    """

    def test_derives_and_runs(self):
        # R1/R2/R3 are violated by the paper's own sketch (it is used to
        # *motivate* occurrence numbers, not as a conforming input), so
        # derive leniently and only exercise execution robustness.
        result = derive_protocol(self.SERVICE, strict=False)
        system = build_system(
            result.entities, discipline="selective", require_empty_at_exit=False
        )
        for seed in range(20):
            run = random_run(system, seed=seed, max_steps=800)
            assert run.steps >= 0  # executes without crashing

    def test_messages_identify_instances(self):
        from repro.lotos.events import SendAction

        result = derive_protocol(self.SERVICE, strict=False)
        system = build_system(
            result.entities,
            hide=False,
            discipline="selective",
            require_empty_at_exit=False,
        )
        occurrences = set()
        import random

        rng = random.Random(0)
        state = system.initial
        for _ in range(600):
            transitions = system.transitions(state)
            if not transitions:
                break
            label, state = transitions[rng.randrange(len(transitions))]
            if isinstance(label, SendAction):
                occurrences.add(label.message.occurrence)
        lengths = {len(occ) for occ in occurrences if occ is not None}
        assert len(lengths) >= 1
