"""Full-fidelity round trip: derived text is a complete protocol spec.

The paper's output is *text* — protocol entity specifications a
downstream implementor consumes.  These tests close the loop: unparse
every derived entity, re-parse it, rebuild the distributed system from
the re-parsed entities, and check it is indistinguishable from the
system built from the original ASTs.  Any information the printer
dropped (message identities, occurrence parameters, operator structure)
would surface here.
"""

import pytest

from repro.core.generator import derive_protocol
from repro.lotos.parser import parse
from repro.lotos.traces import weak_trace_equivalent
from repro.lotos.unparse import unparse
from repro.runtime import build_system, random_run

SERVICES = [
    "SPEC a1; b2; c3; exit ENDSPEC",
    "SPEC a1; exit >> b2; exit ENDSPEC",
    "SPEC (a1; b2; exit) [] (c1; d2; exit) ENDSPEC",
    "SPEC (a1; exit ||| b2; exit) >> c3; exit ENDSPEC",
    "SPEC A WHERE PROC A = (a1; A >> b2; exit) [] (a1; b2; exit) END ENDSPEC",
    "SPEC (a1; b2; B) >> d3; exit WHERE PROC B = e2; exit END ENDSPEC",
]


def reparsed_entities(result):
    return {
        place: parse(unparse(result.entity(place), compact=False))
        for place in result.places
    }


class TestParseBack:
    @pytest.mark.parametrize("service", SERVICES)
    def test_reparsed_entities_equal_originals(self, service):
        result = derive_protocol(service)
        for place, spec in reparsed_entities(result).items():
            assert spec == result.entity(place)

    @pytest.mark.parametrize("service", SERVICES)
    def test_reparsed_system_runs_identically(self, service):
        result = derive_protocol(service)
        original = build_system(result.entities)
        rebuilt = build_system(reparsed_entities(result))
        for seed in range(5):
            first = random_run(original, seed=seed, max_steps=1_500)
            second = random_run(rebuilt, seed=seed, max_steps=1_500)
            assert first.trace == second.trace
            assert first.terminated == second.terminated

    @pytest.mark.parametrize("service", SERVICES[:4])
    def test_reparsed_system_trace_equivalent(self, service):
        result = derive_protocol(service)
        original = build_system(result.entities)
        rebuilt = build_system(reparsed_entities(result))
        equivalent, witness = weak_trace_equivalent(
            original.initial, original, rebuilt.initial, rebuilt, depth=6
        )
        assert equivalent, witness

    def test_compact_text_loses_nothing_for_nonrecursive(self):
        # compact rendering drops the symbolic occurrence marker, which
        # re-parses to the same symbolic value: still faithful.
        result = derive_protocol("SPEC a1; b2; exit ENDSPEC")
        for place in result.places:
            spec = parse(unparse(result.entity(place), compact=True))
            assert spec == result.entity(place)
