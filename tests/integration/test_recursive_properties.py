"""Property-based validation over randomly generated *recursive* services.

Complements ``test_properties.py`` (non-recursive) with the paper's
headline capability: unrestricted recursion.  Each generated service is
an Example 2-shaped counter

    PROC A = (prefix... ; A >> unwind...) [] (prefix... ; unwind...)

with randomized place assignments for the descent prefix and the unwind
chain — conforming by construction (both alternatives share starting
place and ending place).  Properties: derivation succeeds, schedules
conform and balance descents with unwinds, and service and system agree
on bounded weak traces.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.core.generator import derive_protocol
from repro.lotos.semantics import Semantics
from repro.lotos.syntax import (
    ActionPrefix,
    Choice,
    DefBlock,
    Enable,
    Exit,
    ProcessDefinition,
    ProcessRef,
    Specification,
)
from repro.lotos.events import ServicePrimitive
from repro.lotos.traces import weak_trace_equivalent
from repro.runtime import build_system, check_run
from repro.runtime.executor import run_many

PLACES = (1, 2, 3)


def _chain(names_places, continuation):
    node = continuation
    for name, place in reversed(names_places):
        node = ActionPrefix(ServicePrimitive(name, place), node)
    return node


@st.composite
def recursive_counters(draw) -> Specification:
    counter = itertools.count()

    def fresh(place):
        return (f"e{next(counter)}", place)

    start = draw(st.sampled_from(PLACES))
    descent_places = [start] + draw(
        st.lists(st.sampled_from(PLACES), min_size=0, max_size=2)
    )
    unwind_places = draw(
        st.lists(st.sampled_from(PLACES), min_size=1, max_size=2)
    )

    descent = [fresh(place) for place in descent_places]
    unwind = [fresh(place) for place in unwind_places]

    # PROC A = (descent; A >> unwind; exit) [] (descent'; unwind'; exit)
    # Reusing the same event objects in both alternatives mirrors the
    # paper's Example 2 (same primitives, different continuations).
    left = Enable(
        _chain(descent, ProcessRef("A")), _chain(unwind, Exit())
    )
    right = _chain(descent, _chain(unwind, Exit()))
    body = Choice(left, right)
    return Specification(
        DefBlock(
            ProcessRef("A"),
            (ProcessDefinition("A", DefBlock(body)),),
        )
    )


class TestRecursiveCounters:
    @given(recursive_counters())
    @settings(max_examples=30, deadline=None)
    def test_derivation_conforms(self, service):
        result = derive_protocol(service)
        assert result.violations == []
        system = build_system(result.entities)
        for run in run_many(system, runs=3, max_steps=2_500):
            assert run.terminated, str(run)
            verdict = check_run(result.service, run)
            assert verdict.ok, str(verdict)

    @given(recursive_counters())
    @settings(max_examples=30, deadline=None)
    def test_descents_balance_unwinds(self, service):
        result = derive_protocol(service)
        # identify the descent head event (first of the process body)
        body = result.prepared.definitions[0].body.behaviour
        head = body.left.left
        while not isinstance(head, ActionPrefix):
            head = head.left
        head_name = head.event.name
        # and one unwind event
        unwind_head = body.left.right
        unwind_name = unwind_head.event.name
        system = build_system(result.entities)
        for run in run_many(system, runs=3, max_steps=2_500):
            names = [event.name for event in run.trace]
            assert names.count(head_name) == names.count(unwind_name) >= 1

    @given(recursive_counters())
    @settings(max_examples=15, deadline=None)
    def test_bounded_weak_trace_equivalence(self, service):
        result = derive_protocol(service)
        semantics, root = Semantics.of_specification(
            result.prepared, bind_occurrences=False
        )
        system = build_system(result.entities)
        equivalent, witness = weak_trace_equivalent(
            root, semantics, system.initial, system, depth=4
        )
        assert equivalent, f"diverges on {witness}"
