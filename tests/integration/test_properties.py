"""Property-based validation over randomly generated conforming services.

A custom hypothesis strategy builds service specifications that satisfy
R1/R2 *by construction* (every subexpression carries a controlled single
starting place and single ending place).  For every generated service:

* the attribute table agrees with the construction's endpoints;
* the derivation succeeds and keeps only local primitives per entity;
* random schedules through the medium conform to the service;
* service and composed system are weak-trace equivalent to a depth bound.

This is the strongest automated statement of the paper's theorem this
side of a proof assistant: thousands of distinct conforming services, one
property.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.core.generator import derive_protocol
from repro.lotos.events import ServicePrimitive
from repro.lotos.semantics import Semantics
from repro.lotos.syntax import (
    ActionPrefix,
    Behaviour,
    Choice,
    DefBlock,
    Enable,
    Exit,
    Parallel,
    Specification,
)
from repro.lotos.traces import weak_trace_equivalent
from repro.runtime import build_system, check_run
from repro.runtime.executor import run_many

PLACES = (1, 2, 3)


class _Builder:
    """Deterministic construction of a conforming service from choices."""

    def __init__(self):
        self._counter = itertools.count()

    def event(self, place: int) -> ServicePrimitive:
        return ServicePrimitive(f"e{next(self._counter)}", place)

    def chain(self, draw, start: int, end: int) -> Behaviour:
        middle = draw(st.lists(st.sampled_from(PLACES), max_size=2))
        places = [start] + middle + [end]
        node: Behaviour = Exit()
        for place in reversed(places):
            node = ActionPrefix(self.event(place), node)
        return node

    def build(self, draw, start: int, end: int, depth: int) -> Behaviour:
        """A behaviour with SP == {start} and EP == {end}."""
        if depth <= 0:
            return self.chain(draw, start, end)
        kind = draw(st.sampled_from(["chain", "prefix", "enable", "choice", "par"]))
        if kind == "chain":
            return self.chain(draw, start, end)
        if kind == "prefix":
            mid = draw(st.sampled_from(PLACES))
            return ActionPrefix(
                self.event(start), self.build(draw, mid, end, depth - 1)
            )
        if kind == "enable":
            mid1 = draw(st.sampled_from(PLACES))
            mid2 = draw(st.sampled_from(PLACES))
            return Enable(
                self.build(draw, start, mid1, depth - 1),
                self.build(draw, mid2, end, depth - 1),
            )
        if kind == "choice":
            return Choice(
                self.build(draw, start, end, depth - 1),
                self.build(draw, start, end, depth - 1),
            )
        # parallel: wrap in a common start event and a common closing
        # chain so SP/EP stay singletons.
        left_start = draw(st.sampled_from(PLACES))
        right_start = draw(st.sampled_from(PLACES))
        left_end = draw(st.sampled_from(PLACES))
        right_end = draw(st.sampled_from(PLACES))
        par = Parallel(
            self.build(draw, left_start, left_end, depth - 1),
            self.build(draw, right_start, right_end, depth - 1),
        )
        return ActionPrefix(
            self.event(start),
            Enable(par, self.chain(draw, draw(st.sampled_from(PLACES)), end)),
        )


@st.composite
def conforming_services(draw, max_depth: int = 2) -> Specification:
    builder = _Builder()
    start = draw(st.sampled_from(PLACES))
    end = draw(st.sampled_from(PLACES))
    depth = draw(st.integers(min_value=0, max_value=max_depth))
    behaviour = builder.build(draw, start, end, depth)
    return Specification(DefBlock(behaviour))


class TestGeneratedServices:
    @given(conforming_services())
    @settings(max_examples=40, deadline=None)
    def test_derivation_succeeds_and_projects_locally(self, service):
        result = derive_protocol(service)
        assert result.violations == []
        for place in result.places:
            for node in result.entity(place).walk_behaviours():
                if isinstance(node, ActionPrefix) and isinstance(
                    node.event, ServicePrimitive
                ):
                    assert node.event.place == place

    @given(conforming_services())
    @settings(max_examples=25, deadline=None)
    def test_random_schedules_conform(self, service):
        result = derive_protocol(service)
        system = build_system(result.entities)
        for run in run_many(system, runs=4, max_steps=2_000):
            verdict = check_run(result.service, run)
            assert verdict.ok, f"{verdict} for {service}"
            assert run.terminated

    @given(conforming_services(max_depth=1))
    @settings(max_examples=20, deadline=None)
    def test_bounded_weak_trace_equivalence(self, service):
        result = derive_protocol(service)
        semantics, root = Semantics.of_specification(
            result.prepared, bind_occurrences=False
        )
        system = build_system(result.entities)
        equivalent, witness = weak_trace_equivalent(
            root, semantics, system.initial, system, depth=5
        )
        assert equivalent, f"diverges on {witness} for {service}"

    @given(conforming_services())
    @settings(max_examples=25, deadline=None)
    def test_attribute_endpoints_match_construction(self, service):
        result = derive_protocol(service)
        attrs = result.attrs.of(result.prepared.root.behaviour)
        assert len(attrs.sp) == 1
        assert len(attrs.ep) == 1
