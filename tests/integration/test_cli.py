"""CLI (`lotos-pg`) tests."""

import pytest

from repro.cli import main

SERVICE = """SPEC S [> interrupt3; exit WHERE
  PROC S = (read1; push2; S >> pop2; write3; exit)
        [] (eof1; make3; exit) END
ENDSPEC
"""


@pytest.fixture()
def service_file(tmp_path):
    path = tmp_path / "service.lotos"
    path.write_text(SERVICE)
    return str(path)


class TestCli:
    def test_derive_all_places(self, service_file, capsys):
        assert main([service_file]) == 0
        out = capsys.readouterr().out
        assert "place 1" in out and "place 2" in out and "place 3" in out
        assert "PROC S" in out

    def test_single_place(self, service_file, capsys):
        assert main([service_file, "--place", "2"]) == 0
        out = capsys.readouterr().out
        assert "place 2" in out and "place 1" not in out

    def test_unknown_place_fails(self, service_file, capsys):
        assert main([service_file, "--place", "7"]) == 1

    def test_attributes(self, service_file, capsys):
        assert main([service_file, "--attributes"]) == 0
        out = capsys.readouterr().out
        assert "ALL = [1, 2, 3]" in out
        assert "process S: SP=[1] EP=[3] AP=[1, 2, 3]" in out

    def test_complexity(self, service_file, capsys):
        assert main([service_file, "--complexity"]) == 0
        out = capsys.readouterr().out
        assert "Message complexity" in out

    def test_runs(self, service_file, capsys):
        assert main([service_file, "--run", "2"]) == 0
        out = capsys.readouterr().out
        assert "seed 0" in out and "seed 1" in out

    def test_verify_finite(self, tmp_path, capsys):
        path = tmp_path / "finite.lotos"
        path.write_text("SPEC a1; exit >> b2; exit ENDSPEC")
        assert main([str(path), "--verify"]) == 0
        out = capsys.readouterr().out
        assert "EQUIVALENT" in out

    def test_raw_output_contains_empty(self, service_file, capsys):
        assert main([service_file, "--raw", "--place", "1"]) == 0
        out = capsys.readouterr().out
        assert "empty" in out

    def test_full_messages(self, tmp_path, capsys):
        path = tmp_path / "finite.lotos"
        path.write_text("SPEC a1; exit >> b2; exit ENDSPEC")
        assert main([str(path), "--full-messages"]) == 0
        out = capsys.readouterr().out
        assert "s2(s," in out

    def test_restriction_violation_fails(self, tmp_path, capsys):
        path = tmp_path / "bad.lotos"
        path.write_text("SPEC a1; b2; exit [] c2; b2; exit ENDSPEC")
        assert main([str(path)]) == 1
        err = capsys.readouterr().err
        assert "R1" in err

    def test_lenient_mode_warns(self, tmp_path, capsys):
        path = tmp_path / "bad.lotos"
        path.write_text("SPEC a1; b2; exit [] c2; b2; exit ENDSPEC")
        assert main([str(path), "--lenient"]) == 0
        captured = capsys.readouterr()
        assert "warning" in captured.err
        assert "place 1" in captured.out

    def test_naive_mode(self, tmp_path, capsys):
        path = tmp_path / "finite.lotos"
        path.write_text("SPEC a1; exit >> b2; exit ENDSPEC")
        assert main([str(path), "--naive"]) == 0
        out = capsys.readouterr().out
        assert "s2(" not in out

    def test_stdin(self, tmp_path, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("SPEC a1; b2; exit ENDSPEC"))
        assert main(["-"]) == 0
        assert "place 2" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["/nonexistent/spec.lotos"]) == 2

    def test_parse_error_reported(self, tmp_path, capsys):
        path = tmp_path / "broken.lotos"
        path.write_text("SPEC a1 exit ENDSPEC")
        assert main([str(path)]) == 1
        assert "error" in capsys.readouterr().err


class TestCliExtensions:
    def test_msc(self, service_file, capsys):
        assert main([service_file, "--msc"]) == 0
        out = capsys.readouterr().out
        assert "Message sequence chart" in out

    def test_analyze(self, service_file, capsys):
        assert main([service_file, "--analyze"]) == 0
        out = capsys.readouterr().out
        assert "deadlocks" in out

    def test_dot_tree(self, service_file, capsys):
        assert main([service_file, "--dot", "tree"]) == 0
        out = capsys.readouterr().out
        assert "digraph derivation_tree" in out
        assert "SP={1,3}" in out

    def test_dot_lts(self, tmp_path, capsys):
        path = tmp_path / "finite.lotos"
        path.write_text("SPEC a1; b2; exit ENDSPEC")
        assert main([str(path), "--dot", "lts"]) == 0
        out = capsys.readouterr().out
        assert "digraph lts" in out

    def test_mixed_choice_flag(self, tmp_path, capsys):
        path = tmp_path / "mixed.lotos"
        path.write_text("SPEC (a1; x3; exit) [] (b2; y3; exit) ENDSPEC")
        assert main([str(path)]) == 1  # rejected without the flag
        capsys.readouterr()
        assert main([str(path), "--mixed-choice"]) == 0
        out = capsys.readouterr().out
        assert "grant" in out

    def test_parameters_flag(self, tmp_path, capsys):
        path = tmp_path / "params.lotos"
        path.write_text("SPEC read1(rec); push2(rec); exit ENDSPEC")
        assert main([str(path), "--parameters"]) == 0
        out = capsys.readouterr().out
        assert "carries [rec]" in out
