"""Error recovery over an unreliable medium (the Section 6 future work).

Negative control: derived protocols *assume* the reliable medium, so a
raw lossy medium wedges them.  Positive result: layering the ARQ
recovery sublayer underneath restores the service exactly — the
"systematic transformation to an error-recoverable protocol" realized as
a protocol stack.
"""

import pytest

from repro.core.generator import derive_protocol
from repro.medium.lossy import ArqMedium, LossyMedium
from repro.runtime import build_system, check_run, random_run

SERVICE = "SPEC a1; b2; c3; d1; exit ENDSPEC"


@pytest.fixture(scope="module")
def pipeline_result():
    return derive_protocol(SERVICE)


class TestRawLossBreaksDerivedProtocols:
    def test_deadlocks_appear(self, pipeline_result):
        deadlocks = 0
        for seed in range(30):
            system = build_system(
                pipeline_result.entities, medium=LossyMedium(loss_budget=2)
            )
            run = random_run(system, seed=seed, max_steps=400)
            if run.deadlocked:
                deadlocks += 1
        assert deadlocks > 10  # loss usually wedges a blocking receive

    def test_no_safety_violation_only_liveness(self, pipeline_result):
        # Loss can only remove behaviour, never reorder it: every trace
        # that does happen is still a service trace.
        for seed in range(30):
            system = build_system(
                pipeline_result.entities, medium=LossyMedium(loss_budget=2)
            )
            run = random_run(system, seed=seed, max_steps=400)
            if run.deadlocked:
                continue
            assert check_run(SERVICE, run)

    def test_zero_budget_equals_reliable(self, pipeline_result):
        system = build_system(
            pipeline_result.entities, medium=LossyMedium(loss_budget=0)
        )
        run = random_run(system, seed=0, max_steps=400)
        assert run.terminated and check_run(SERVICE, run)


class TestArqRestoresTheService:
    @pytest.mark.parametrize("loss_budget", [0, 1, 3])
    def test_all_schedules_complete_and_conform(self, pipeline_result, loss_budget):
        for seed in range(25):
            system = build_system(
                pipeline_result.entities, medium=ArqMedium(loss_budget=loss_budget)
            )
            run = random_run(system, seed=seed, max_steps=5_000)
            assert not run.deadlocked, f"seed {seed}"
            assert run.terminated, f"seed {seed}: {run}"
            verdict = check_run(SERVICE, run)
            assert verdict.ok, str(verdict)

    def test_recursion_over_arq(self, example2):
        system = build_system(
            example2.entities, medium=ArqMedium(loss_budget=2)
        )
        run = random_run(system, seed=3, max_steps=8_000)
        assert run.terminated
        names = [event.name for event in run.trace]
        assert names.count("a") == names.count("b") >= 1

    def test_bounded_trace_equivalence_over_arq(self, pipeline_result):
        """The ARQ-composed system is weak-trace equivalent to the service."""
        from repro.lotos.semantics import Semantics
        from repro.lotos.traces import weak_trace_equivalent

        semantics, root = Semantics.of_specification(
            pipeline_result.prepared, bind_occurrences=False
        )
        system = build_system(
            pipeline_result.entities, medium=ArqMedium(loss_budget=1)
        )
        equivalent, witness = weak_trace_equivalent(
            root, semantics, system.initial, system, depth=5
        )
        assert equivalent, witness

    def test_arq_overhead_is_measurable(self, pipeline_result):
        """Recovery costs internal steps; quantify against the baseline."""
        reliable = build_system(pipeline_result.entities)
        recovered = build_system(
            pipeline_result.entities, medium=ArqMedium(loss_budget=2)
        )
        baseline = random_run(reliable, seed=1, max_steps=5_000)
        with_arq = random_run(recovered, seed=1, max_steps=5_000)
        assert baseline.terminated and with_arq.terminated
        assert with_arq.steps > baseline.steps
