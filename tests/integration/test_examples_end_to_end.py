"""End-to-end executions of the paper's examples (E2, E5, E6, E11)."""

import random

from repro.runtime import build_system, check_run, random_run
from repro.runtime.conformance import check_trace
from repro.runtime.executor import run_many


class TestExample2CountingProtocol:
    def test_all_schedules_conform(self, example2):
        system = build_system(example2.entities)
        for run in run_many(system, runs=50, max_steps=600):
            verdict = check_run(example2.service, run)
            assert verdict.ok, str(verdict)

    def test_traces_are_a_power_n_b_power_n(self, example2):
        system = build_system(example2.entities)
        seen_n = set()
        for run in run_many(system, runs=60, max_steps=600):
            assert run.terminated
            names = [event.name for event in run.trace]
            n = names.count("a")
            assert names == ["a"] * n + ["b"] * n
            assert n >= 1
            seen_n.add(n)
        assert len(seen_n) > 2  # genuinely varying depth

    def test_nonregular_depth_reachable(self, example2):
        # Drive the recursion to a fixed depth and confirm balance.  At
        # place 1 the choice offers two a1 transitions: the first (left
        # alternative) recurses, the last (right alternative) terminates
        # the descent.
        system = build_system(example2.entities)
        rng = random.Random(7)
        target = 12
        done = [0]

        def steer(state, transitions):
            a1_indices = [
                index
                for index, (label, _) in enumerate(transitions)
                if str(label) == "a1"
            ]
            others = [
                index
                for index, (label, _) in enumerate(transitions)
                if str(label) != "a1"
            ]
            if a1_indices and done[0] < target:
                done[0] += 1
                return a1_indices[0]  # recursive alternative
            if others:
                return rng.choice(others)
            done[0] += 1
            return a1_indices[-1]  # terminating alternative

        run = random_run(system, seed=1, max_steps=4_000, chooser=steer)
        names = [event.name for event in run.trace]
        assert run.terminated, run
        assert names.count("a") == names.count("b")
        assert names.count("a") >= target


class TestExample5ChoiceSynchronization:
    def test_place2_always_learns_the_choice(self, example5):
        # The motivating bug of Section 3.2: place 2 must not hang when
        # place 1 ends the recursion via the right alternative.
        system = build_system(example5.entities)
        for run in run_many(system, runs=40, max_steps=1_000):
            assert not run.deadlocked, str(run)
            verdict = check_run(example5.service, run)
            assert verdict.ok, str(verdict)

    def test_recursive_descent_then_exit(self, example5):
        system = build_system(example5.entities)
        depth = [0]

        def steer(state, transitions):
            for index, (label, _) in enumerate(transitions):
                if str(label) == "a1" and depth[0] < 3:
                    depth[0] += 1
                    return index
            for index, (label, _) in enumerate(transitions):
                if str(label) != "a1":
                    return index
            return 0

        run = random_run(system, seed=2, max_steps=2_000, chooser=steer)
        names = [str(event) for event in run.trace]
        assert run.terminated, run
        # every recursive descent must be unwound with a c2 before d3:
        assert names.count("a1") == names.count("c2")
        assert names[-1] == "d3" or names[-1] == "f3"


class TestExample6Disable:
    def test_no_deadlock_under_any_schedule(self, example6):
        system = build_system(
            example6.entities, discipline="selective", require_empty_at_exit=False
        )
        for run in run_many(system, runs=50, max_steps=400):
            assert not run.deadlocked, str(run)
            assert run.terminated, str(run)

    def test_interrupt_can_preempt(self, example6):
        system = build_system(
            example6.entities, discipline="selective", require_empty_at_exit=False
        )
        preempted = False
        for seed in range(50):
            run = random_run(system, seed=seed, max_steps=400)
            names = [str(event) for event in run.trace]
            if "d3" in names and "c3" not in names:
                preempted = True
        assert preempted

    def test_normal_completion_suppresses_interrupt(self, example6):
        system = build_system(
            example6.entities, discipline="selective", require_empty_at_exit=False
        )

        def never_d3(state, transitions):
            for index, (label, _) in enumerate(transitions):
                if str(label) != "d3":
                    return index
            return 0

        run = random_run(system, seed=0, max_steps=400, chooser=never_d3)
        names = [str(event) for event in run.trace]
        assert names == ["a1", "b2", "c3"]
        assert run.terminated

    def test_abnormal_orderings_are_the_documented_shortcomings(self, example6):
        # Any non-service trace must be explainable by Section 3.3's
        # shortcoming (ii): a normal event sliding past d3 while the
        # broadcast is in flight.
        system = build_system(
            example6.entities, discipline="selective", require_empty_at_exit=False
        )
        for seed in range(60):
            run = random_run(system, seed=seed, max_steps=400)
            if check_trace(example6.service, run.trace, terminated=run.terminated):
                continue
            names = [str(event) for event in run.trace]
            assert "d3" in names, names
            # moving the post-d3 normal events back before d3 must yield
            # a legal service trace:
            cut = names.index("d3")
            normal = [e for e in run.trace if str(e) != "d3"]
            reordered = normal[:]
            reordered.insert(len(normal), run.trace[cut])
            # normal-prefix check: the pre-d3 part plus slid events is a
            # prefix of a1.b2.c3
            prefix = [str(e) for e in normal]
            assert prefix == ["a1", "b2", "c3"][: len(prefix)], names
