"""Transport-style case study (E11): the paper's PG validation class."""

import random

import pytest

from repro.core.generator import derive_protocol
from repro.runtime import build_system, random_run
from repro.runtime.conformance import check_trace
from repro.verification.checker import safety_report, verify_derivation

SERVICE = """
SPEC Session [> abort1; exit WHERE
  PROC Session =
      ( conreq1; conind2;
          ( (accept2; confirm1; Transfer >> disreq2; disind1; exit)
            [] (reject2; refused1; exit) ) )
      [] ( quit1; exit )
  END
  PROC Transfer =
      ( datareq1; dataind2; Transfer >> ack2; ackind1; exit )
      [] ( datareq1; dataind2; ack2; ackind1; exit )
  END
ENDSPEC
"""

ABORT_FREE = SERVICE.replace("Session [> abort1; exit", "Session")


@pytest.fixture(scope="module")
def transport():
    return derive_protocol(SERVICE)


@pytest.fixture(scope="module")
def transport_abort_free():
    return derive_protocol(ABORT_FREE)


class TestDerivation:
    def test_derives_cleanly(self, transport):
        assert transport.places == [1, 2]
        assert transport.violations == []

    def test_processes_preserved(self, transport):
        for place in transport.places:
            names = [d.name for d in transport.entity(place).definitions]
            assert names == ["Session", "Transfer"]


class TestExecution:
    def test_no_deadlocks(self, transport):
        system = build_system(
            transport.entities, discipline="selective", require_empty_at_exit=False
        )
        for seed in range(40):
            run = random_run(system, seed=seed, max_steps=2_000)
            assert not run.deadlocked, str(run)

    def test_full_session_with_data_phase(self, transport):
        system = build_system(
            transport.entities, discipline="selective", require_empty_at_exit=False
        )
        rng = random.Random(4)
        sent = [0]

        def steer(state, transitions):
            allowed = []
            for index, (label, _) in enumerate(transitions):
                name = str(label)
                if name == "abort1":
                    continue
                if name == "quit1":
                    continue
                if name == "reject2":
                    continue
                if name == "datareq1" and sent[0] >= 4:
                    continue
                allowed.append(index)
            choice = rng.choice(allowed) if allowed else 0
            if str(transitions[choice][0]) == "datareq1":
                sent[0] += 1
            return choice

        run = random_run(system, seed=4, max_steps=4_000, chooser=steer)
        names = [str(event) for event in run.trace]
        assert run.terminated, run
        assert names[0] == "conreq1"
        assert "accept2" in names
        assert names.count("datareq1") == names.count("dataind2") >= 1
        assert names.count("ack2") == names.count("datareq1")
        assert names[-1] == "disind1"
        assert check_trace(transport.service, run.trace, terminated=True)

    def test_rejection_path(self, transport):
        system = build_system(
            transport.entities, discipline="selective", require_empty_at_exit=False
        )

        def steer(state, transitions):
            order = ["conreq1", "conind2", "reject2", "refused1"]
            for wanted in order:
                for index, (label, _) in enumerate(transitions):
                    if str(label) == wanted:
                        return index
            for index, (label, _) in enumerate(transitions):
                if str(label) not in ("abort1", "quit1", "accept2"):
                    return index
            return 0

        run = random_run(system, seed=0, max_steps=1_000, chooser=steer)
        names = [str(event) for event in run.trace]
        assert names == ["conreq1", "conind2", "reject2", "refused1"]
        assert run.terminated


class TestVerification:
    def test_abort_free_bounded_equivalence(self, transport_abort_free):
        report = verify_derivation(transport_abort_free, trace_depth=6)
        assert report.equivalent, str(report)

    def test_safety_violations_involve_only_the_abort(self, transport):
        report = safety_report(transport, trace_depth=5)
        if not report.equivalent:
            rendered = [str(label) for label in report.counterexample]
            assert "abort1" in rendered
