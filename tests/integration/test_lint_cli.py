"""CLI tests for ``repro`` (subcommand dispatch) and ``repro lint``."""

import io
import json

import pytest

from repro.cli import lint_main, main, repro_main

CLEAN = """SPEC S [> interrupt3; exit WHERE
  PROC S = (read1; push2; S >> pop2; write3; exit)
        [] (eof1; make3; exit) END
ENDSPEC
"""

#: One warning (L001), no errors.
WARNING_ONLY = """SPEC a1; b2; exit WHERE
  PROC Helper = c2; exit END
ENDSPEC
"""

#: R1 error plus the L009 warning.
MIXED = "SPEC a1; c3; exit [] b2; c3; exit ENDSPEC\n"


@pytest.fixture()
def spec_file(tmp_path):
    def write(text, name="service.lotos"):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    return write


class TestLintCommand:
    def test_clean_spec_exits_zero(self, spec_file, capsys):
        path = spec_file(CLEAN)
        assert repro_main(["lint", path]) == 0
        out = capsys.readouterr().out
        assert out.strip() == f"{path}: 0 error(s), 0 warning(s), 0 info(s)"

    def test_warnings_exit_zero_by_default(self, spec_file, capsys):
        assert lint_main([spec_file(WARNING_ONLY)]) == 0
        out = capsys.readouterr().out
        assert "[L001]" in out and "1 warning(s)" in out

    def test_strict_turns_warnings_into_failure(self, spec_file):
        assert lint_main([spec_file(WARNING_ONLY), "--strict"]) == 1

    def test_errors_exit_one(self, spec_file, capsys):
        assert lint_main([spec_file(MIXED)]) == 1
        out = capsys.readouterr().out
        assert "[R1]" in out and "[L009]" in out

    def test_mixed_choice_mode(self, spec_file, capsys):
        assert lint_main([spec_file(MIXED), "--mixed-choice"]) == 0
        out = capsys.readouterr().out
        assert "[R1]" not in out and "[L009]" not in out

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "nope.lotos")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_stdin_dash(self, monkeypatch, capsys):
        monkeypatch.setattr("sys.stdin", io.StringIO(WARNING_ONLY))
        assert lint_main(["-"]) == 0
        assert "<stdin>:2:8:" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("L001", "L011"):
            assert rule_id in out
        assert "unused-process" in out

    def test_json_output_parses(self, spec_file, capsys):
        path = spec_file(WARNING_ONLY)
        assert lint_main([path, "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == 1
        assert document["source"] == path
        assert document["summary"]["warnings"] == 1
        [entry] = document["diagnostics"]
        assert entry["rule"] == "L001"
        assert (entry["line"], entry["column"]) == (2, 8)

    def test_json_multi_file_document(self, spec_file, capsys):
        paths = [spec_file(CLEAN, "a.lotos"), spec_file(MIXED, "b.lotos")]
        assert lint_main([*paths, "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == 1
        assert [r["source"] for r in document["results"]] == paths

    def test_multiple_files_worst_exit_wins(self, spec_file):
        assert lint_main([spec_file(CLEAN, "a.lotos"), spec_file(MIXED, "b.lotos")]) == 1


class TestReproDispatch:
    def test_no_arguments_prints_usage(self, capsys):
        assert repro_main([]) == 2
        assert "usage: repro" in capsys.readouterr().out

    def test_help_exits_zero(self, capsys):
        assert repro_main(["--help"]) == 0
        assert "lint" in capsys.readouterr().out

    def test_unknown_command(self, capsys):
        assert repro_main(["frobnicate"]) == 2
        assert "unknown command" in capsys.readouterr().err

    def test_derive_dispatches_to_main(self, spec_file, capsys):
        assert repro_main(["derive", spec_file(CLEAN)]) == 0
        assert "Protocol entity for place 1" in capsys.readouterr().out


class TestDeriveSurfacesLint:
    def test_warnings_on_stderr_before_derivation(self, spec_file, capsys):
        assert main([spec_file(WARNING_ONLY)]) == 0
        captured = capsys.readouterr()
        assert "lint:" in captured.err and "[L001]" in captured.err
        assert "Protocol entity" in captured.out

    def test_clean_spec_stays_silent(self, spec_file, capsys):
        assert main([spec_file(CLEAN)]) == 0
        assert "lint:" not in capsys.readouterr().err

    def test_mixed_choice_derivation_not_nagged(self, spec_file, capsys):
        assert main([spec_file(MIXED), "--mixed-choice"]) == 0
        assert "[L009]" not in capsys.readouterr().err
