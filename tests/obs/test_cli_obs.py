"""CLI surface of the observability work: --trace/--stats, profile, --version."""

import json

import pytest

from repro.cli import repro_main
from repro.obs.schema import validate_report

SERVICE = "SPEC a1; exit >> b2; exit ENDSPEC"


@pytest.fixture()
def spec_path(tmp_path):
    path = tmp_path / "service.lotos"
    path.write_text(SERVICE)
    return str(path)


class TestDeriveObservability:
    def test_trace_goes_to_stderr(self, spec_path, capsys):
        assert repro_main(["derive", spec_path, "--trace"]) == 0
        captured = capsys.readouterr()
        assert "Protocol entity for place 1" in captured.out
        assert "derive" in captured.err
        assert "derive.parse" in captured.err
        assert "ms" in captured.err

    def test_stats_text_goes_to_stderr(self, spec_path, capsys):
        assert repro_main(["derive", spec_path, "--stats"]) == 0
        captured = capsys.readouterr()
        assert "derive.places 2" in captured.err

    def test_stats_json_is_a_valid_snapshot(self, spec_path, capsys):
        assert repro_main(["derive", spec_path, "--stats=json"]) == 0
        captured = capsys.readouterr()
        document = json.loads(captured.err)
        assert document["schema"] == "repro.obs.metrics/v1"

    def test_stdout_identical_with_and_without_observability(
        self, spec_path, capsys
    ):
        assert repro_main(["derive", spec_path]) == 0
        plain = capsys.readouterr().out
        assert repro_main(["derive", spec_path, "--trace", "--stats"]) == 0
        observed = capsys.readouterr().out
        assert observed == plain

    def test_quiet_silences_lint_warnings(self, tmp_path, capsys):
        # ||| with an event left of the bar that R-checks clean but lints:
        # reuse a spec that produces a lint info/warning via disable.
        path = tmp_path / "disable.lotos"
        path.write_text("SPEC (a1; b2; c3; exit) [> (d3; exit) ENDSPEC")
        assert repro_main(["derive", str(path)]) == 0
        loud = capsys.readouterr().err
        assert repro_main(["derive", str(path), "--quiet"]) == 0
        quiet = capsys.readouterr().err
        assert quiet == ""
        assert len(loud) >= len(quiet)


class TestProfileCommand:
    def test_emits_a_valid_report_on_stdout(self, spec_path, capsys):
        assert (
            repro_main(
                ["profile", spec_path, "--runs", "2", "--seed", "3"]
            )
            == 0
        )
        captured = capsys.readouterr()
        report = json.loads(captured.out)
        assert validate_report(report) == []
        # spec-relative, never the absolute temp path: reports must be
        # machine-independent (see repro.obs.spec_display_name)
        assert report["source"] == "service.lotos"
        assert [row["seed"] for row in report["runs"]] == [3, 4]
        # the digest rides on stderr
        assert "profile of" in captured.err

    def test_quiet_suppresses_the_digest(self, spec_path, capsys):
        assert repro_main(["profile", spec_path, "--quiet"]) == 0
        captured = capsys.readouterr()
        assert captured.err == ""
        json.loads(captured.out)

    def test_indent_zero_is_compact(self, spec_path, capsys):
        assert (
            repro_main(["profile", spec_path, "--quiet", "--indent", "0"])
            == 0
        )
        out = capsys.readouterr().out
        assert out.count("\n") == 1  # one line + trailing newline

    def test_no_verify_flag(self, spec_path, capsys):
        assert repro_main(["profile", spec_path, "--quiet", "--no-verify"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["verification"] is None

    def test_missing_file_exits_2(self, capsys):
        assert repro_main(["profile", "/nonexistent.lotos"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_spec_exits_1(self, tmp_path, capsys):
        path = tmp_path / "bad.lotos"
        path.write_text("SPEC a1; b1; a1; exit ENDSPEC [")
        assert repro_main(["profile", str(path)]) == 1
        assert "error:" in capsys.readouterr().err


class TestVersionAndUsage:
    def test_repro_version(self, capsys):
        assert repro_main(["--version"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert out.strip().split()[-1][0].isdigit()

    def test_subcommand_version_action(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            repro_main(["derive", "--version"])
        assert excinfo.value.code == 0
        assert "lotos-pg" in capsys.readouterr().out

    def test_usage_lists_profile(self, capsys):
        assert repro_main(["--help"]) == 0
        assert "profile" in capsys.readouterr().out


class TestLintQuiet:
    def test_quiet_keeps_the_exit_code_but_prints_nothing(
        self, tmp_path, capsys
    ):
        path = tmp_path / "clean.lotos"
        path.write_text(SERVICE)
        assert repro_main(["lint", str(path), "--quiet"]) == 0
        assert capsys.readouterr().out == ""
        bad = tmp_path / "bad.lotos"
        bad.write_text("SPEC a1; a2; exit [] a1; b2; exit ENDSPEC")
        code_loud = repro_main(["lint", str(bad)])
        loud = capsys.readouterr().out
        code_quiet = repro_main(["lint", str(bad), "--quiet"])
        quiet = capsys.readouterr().out
        assert code_quiet == code_loud
        assert quiet == "" and loud != ""
