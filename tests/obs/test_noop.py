"""Disabled observability must not change any output, byte for byte."""

from repro.core.generator import derive_protocol
from repro.obs import observe
from repro.runtime import build_system, random_run
from repro.verification import verify_derivation

SERVICE = "SPEC a1; b2; exit >> c3; exit ENDSPEC"


def _entity_texts(result):
    return {place: result.entity_text(place) for place in result.places}


def test_derivation_output_identical_enabled_vs_disabled():
    baseline = derive_protocol(SERVICE)
    with observe():
        observed = derive_protocol(SERVICE)
    assert _entity_texts(observed) == _entity_texts(baseline)


def test_verification_verdict_identical_enabled_vs_disabled():
    result = derive_protocol(SERVICE)
    baseline = verify_derivation(result)
    with observe():
        observed = verify_derivation(result)
    assert observed.method == baseline.method
    assert observed.equivalent == baseline.equivalent
    assert observed.congruent == baseline.congruent


def test_run_schedule_identical_enabled_vs_disabled():
    result = derive_protocol(SERVICE)
    system = build_system(result.entities)
    baseline = random_run(system, seed=9)
    with observe():
        observed = random_run(system, seed=9)
    assert observed.schedule == baseline.schedule
    assert observed.observable == baseline.observable
    assert observed.queue_high_water == baseline.queue_high_water
    assert observed.delivery_delays == baseline.delivery_delays


def test_instrumentation_publishes_only_when_enabled():
    with observe() as obs:
        result = derive_protocol(SERVICE)
        system = build_system(result.entities)
        random_run(system, seed=0)
    metrics = {m["name"] for m in obs.metrics.snapshot()["metrics"]}
    assert {
        "derive.places",
        "derive.sync_fragments",
        "executor.runs",
        "executor.messages_sent",
        "medium.queue_depth",
        "medium.delay_steps",
    } <= metrics
    span_names = {span["name"] for span in obs.tracer.to_dict()["spans"]}
    assert {"derive", "executor.run"} <= span_names
