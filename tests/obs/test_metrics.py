"""Instrument semantics and the metrics snapshot document."""

import pytest

from repro.obs.metrics import (
    METRICS_SCHEMA,
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
    get_registry,
    use_registry,
)
from repro.obs.schema import validate_metrics


class TestCounter:
    def test_accumulates_per_label_combination(self):
        registry = MetricsRegistry()
        counter = registry.counter("verify.checks")
        counter.inc(method="exact")
        counter.inc(2, method="exact")
        counter.inc(method="bounded")
        assert counter.value(method="exact") == 3
        assert counter.value(method="bounded") == 1
        assert counter.value(method="missing") == 0

    def test_rejects_negative_increments(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_registry_returns_the_same_instrument_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")


class TestGauge:
    def test_set_overwrites_and_set_max_keeps_high_water(self):
        gauge = MetricsRegistry().gauge("medium.queue_depth")
        gauge.set(3, channel="1->2")
        gauge.set(1, channel="1->2")
        assert gauge.value(channel="1->2") == 1
        gauge.set_max(5, channel="1->2")
        gauge.set_max(2, channel="1->2")
        assert gauge.value(channel="1->2") == 5

    def test_unset_series_reads_none(self):
        assert MetricsRegistry().gauge("g").value(channel="?") is None


class TestHistogram:
    def test_bounds_are_upper_inclusive_with_overflow(self):
        histogram = Histogram("h", buckets=(1, 5, 10))
        for value in (0, 1, 2, 5, 11):
            histogram.observe(value)
        series, = histogram.series()
        assert series["count"] == 5
        assert series["sum"] == 19
        assert series["buckets"] == [[1, 2], [5, 2], [10, 0]]
        assert series["overflow"] == 1

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram("h", buckets=(5, 1))

    def test_count_per_labels(self):
        histogram = Histogram("h", buckets=(10,))
        histogram.observe(1, channel="a")
        histogram.observe(2, channel="a")
        assert histogram.count(channel="a") == 2
        assert histogram.count(channel="b") == 0

    def test_percentile_returns_bucket_upper_bounds(self):
        histogram = Histogram("h", buckets=(1, 5, 10))
        for value in (0.5, 0.7, 2, 3, 4, 6, 7, 8, 9, 10):
            histogram.observe(value)
        # ranks: 10 samples; <=1 holds 2, <=5 holds 3, <=10 holds 5
        assert histogram.percentile(10) == 1.0
        assert histogram.percentile(20) == 1.0
        assert histogram.percentile(50) == 5.0
        assert histogram.percentile(99) == 10.0

    def test_percentile_overflow_reads_as_inf(self):
        histogram = Histogram("h", buckets=(1,))
        histogram.observe(100)
        assert histogram.percentile(50) == float("inf")

    def test_percentile_empty_series_is_none(self):
        histogram = Histogram("h", buckets=(1,))
        assert histogram.percentile(50) is None
        assert histogram.percentile(50, route="missing") is None

    def test_percentile_respects_labels(self):
        histogram = Histogram("h", buckets=(1, 10))
        histogram.observe(0.5, route="fast")
        histogram.observe(8, route="slow")
        assert histogram.percentile(50, route="fast") == 1.0
        assert histogram.percentile(50, route="slow") == 10.0

    def test_percentile_rejects_out_of_range_q(self):
        histogram = Histogram("h", buckets=(1,))
        with pytest.raises(ValueError, match="percentile"):
            histogram.percentile(0)
        with pytest.raises(ValueError, match="percentile"):
            histogram.percentile(101)

    def test_null_instrument_percentile_is_none(self):
        assert NULL_INSTRUMENT.percentile(95) is None


class TestSnapshot:
    def test_document_shape_and_schema(self):
        registry = MetricsRegistry()
        registry.counter("derive.places", help="places").inc(3)
        registry.gauge("g").set(1, channel="1->2")
        registry.histogram("h").observe(4)
        document = registry.snapshot()
        assert document["schema"] == METRICS_SCHEMA
        assert validate_metrics(document) == []
        names = [entry["name"] for entry in document["metrics"]]
        assert names == sorted(names)

    def test_render_lists_every_series(self):
        registry = MetricsRegistry()
        registry.counter("runs").inc(2)
        registry.gauge("depth").set(4, channel="1->2")
        registry.histogram("delay").observe(3)
        text = registry.render()
        assert "runs 2" in text
        assert "depth{channel=1->2} 4" in text
        assert "delay count=1 sum=3" in text

    def test_reset_clears_all_instruments(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.snapshot()["metrics"] == []


class TestNullRegistry:
    def test_default_is_the_null_registry(self):
        assert get_registry() is NULL_REGISTRY
        assert not NULL_REGISTRY.enabled

    def test_instruments_are_the_shared_noop(self):
        assert NULL_REGISTRY.counter("x") is NULL_INSTRUMENT
        assert NULL_REGISTRY.gauge("y") is NULL_INSTRUMENT
        assert NULL_REGISTRY.histogram("z") is NULL_INSTRUMENT
        NULL_INSTRUMENT.inc()
        NULL_INSTRUMENT.set(3)
        NULL_INSTRUMENT.observe(1)
        assert NULL_INSTRUMENT.value() == 0

    def test_use_registry_restores_the_previous_one(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            assert get_registry() is registry
        assert get_registry() is NULL_REGISTRY
