"""The consolidated profile report and its schema validation."""

import json

import pytest

from repro.obs.profile import (
    channel_name,
    profile_spec,
    render_report,
    render_report_json,
    spec_display_name,
)
from repro.obs.schema import PROFILE_SCHEMA, validate_report

SEQUENCE = "SPEC a1; exit >> b2; exit ENDSPEC"
DISABLE = "SPEC (a1; b2; c3; exit) [> (d3; exit) ENDSPEC"


@pytest.fixture(scope="module")
def sequence_report():
    return profile_spec(SEQUENCE, source="sequence", runs=2, seed=1)


class TestReport:
    def test_validates_against_the_schema(self, sequence_report):
        assert validate_report(sequence_report) == []
        assert sequence_report["schema"] == PROFILE_SCHEMA

    def test_derivation_section(self, sequence_report):
        derivation = sequence_report["derivation"]
        assert sequence_report["places"] == [1, 2]
        assert derivation["places"] == 2
        assert derivation["sync_fragments"] > 0
        assert derivation["violations"] == 0
        assert derivation["has_disable"] is False

    def test_verification_is_exact_for_the_finite_service(
        self, sequence_report
    ):
        verification = sequence_report["verification"]
        assert verification["method"] == "weak-bisimulation"
        assert verification["equivalent"] is True

    def test_runs_are_seeded_and_conformant(self, sequence_report):
        rows = sequence_report["runs"]
        assert [row["seed"] for row in rows] == [1, 2]
        assert all(row["conformant"] for row in rows)
        assert all(row["status"] == "terminated" for row in rows)
        assert sequence_report["conformant"] is True

    def test_medium_section_has_channel_high_water(self, sequence_report):
        hwm = sequence_report["medium"]["queue_high_water"]
        assert hwm.get("1->2") == 1
        delays = sequence_report["medium"]["delays"]
        assert delays["count"] == sum(
            row["messages_sent"] for row in sequence_report["runs"]
        )
        assert delays["min"] >= 1

    def test_trace_and_metrics_are_embedded(self, sequence_report):
        span_names = [s["name"] for s in sequence_report["trace"]["spans"]]
        assert span_names == ["profile"]
        children = [
            c["name"] for c in sequence_report["trace"]["spans"][0]["children"]
        ]
        assert "derive" in children
        assert "profile.verify" in children
        assert "profile.execute" in children
        metric_names = [
            m["name"] for m in sequence_report["metrics"]["metrics"]
        ]
        assert "derive.places" in metric_names
        assert "executor.runs" in metric_names

    def test_deterministic_given_the_seed(self, sequence_report):
        again = profile_spec(SEQUENCE, source="sequence", runs=2, seed=1)
        assert again["runs"] == sequence_report["runs"]
        assert (
            again["medium"]["queue_high_water"]
            == sequence_report["medium"]["queue_high_water"]
        )


class TestDisableService:
    def test_uses_trace_inclusion_and_selective_discipline(self):
        report = profile_spec(DISABLE, source="disable", runs=1)
        assert validate_report(report) == []
        assert report["derivation"]["has_disable"] is True
        assert report["verification"]["method"] == "bounded-trace-inclusion"
        assert report["medium"]["discipline"] == "selective"

    def test_no_verify_skips_the_section(self):
        report = profile_spec(DISABLE, runs=1, verify=False)
        assert report["verification"] is None
        assert validate_report(report) == []


class TestRendering:
    def test_digest_mentions_the_key_numbers(self, sequence_report):
        text = render_report(sequence_report)
        assert "profile of sequence" in text
        assert "2 entities" in text
        assert "weak-bisimulation -> EQUIVALENT" in text
        assert "run seed=1" in text
        assert "queue high-water" in text

    def test_json_round_trips(self, sequence_report):
        parsed = json.loads(render_report_json(sequence_report))
        assert parsed["schema"] == PROFILE_SCHEMA
        compact = render_report_json(sequence_report, indent=None)
        assert "\n" not in compact


def test_channel_name():
    assert channel_name((1, 2)) == "1->2"


class TestSpecDisplayName:
    def test_absolute_paths_collapse_to_the_basename(self):
        assert spec_display_name("/tmp/xyz123/service.lotos") == "service.lotos"

    def test_relative_paths_are_kept_as_typed(self):
        assert (
            spec_display_name("tests/goldens/example4_sequence.lotos")
            == "tests/goldens/example4_sequence.lotos"
        )

    def test_root_relative_naming(self, tmp_path):
        spec = tmp_path / "corpus" / "deep.lotos"
        assert spec_display_name(str(spec), root=str(tmp_path)) == (
            "corpus/deep.lotos"
        )

    def test_stdin_marker(self):
        assert spec_display_name("-") == "<stdin>"
