"""Tracer mechanics: nesting, attributes, exporters, zero-cost no-op."""

import pytest

from repro.obs.spans import (
    NULL_SPAN,
    NULL_TRACER,
    TRACE_SCHEMA,
    Tracer,
    get_tracer,
    set_tracer,
    traced,
    use_tracer,
)
from repro.obs.schema import validate_trace


class TestNesting:
    def test_children_attach_to_the_open_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b"):
                pass
        assert [root.name for root in tracer.roots] == ["outer"]
        assert [c.name for c in tracer.roots[0].children] == [
            "inner.a",
            "inner.b",
        ]

    def test_sequential_roots_form_a_forest(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [root.name for root in tracer.roots] == ["first", "second"]

    def test_durations_are_monotone(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer, = tracer.roots
        assert outer.end is not None
        assert outer.duration >= outer.children[0].duration >= 0


class TestAttributes:
    def test_span_set_records_result_attributes(self):
        tracer = Tracer()
        with tracer.span("lts.build", max_states=10) as span:
            span.set(states=4, truncated=0)
        span, = tracer.roots
        assert span.attrs == {"max_states": 10, "states": 4, "truncated": 0}

    def test_exception_marks_the_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        span, = tracer.roots
        assert span.attrs["error"] == "ValueError"
        assert span.end is not None


class TestExport:
    def test_to_dict_matches_the_schema(self):
        tracer = Tracer()
        with tracer.span("derive", places=[2, 1]):
            with tracer.span("derive.parse"):
                pass
        document = tracer.to_dict()
        assert document["schema"] == TRACE_SCHEMA
        assert validate_trace(document) == []
        derive = document["spans"][0]
        assert derive["name"] == "derive"
        assert derive["attrs"]["places"] == ["1", "2"]  # jsonable coercion
        assert derive["children"][0]["name"] == "derive.parse"

    def test_render_shows_tree_and_attrs(self):
        tracer = Tracer()
        with tracer.span("a") as span:
            span.set(n=3)
            with tracer.span("b"):
                pass
        text = tracer.render()
        lines = text.splitlines()
        assert lines[0].startswith("a  ") and "[n=3]" in lines[0]
        assert lines[1].startswith("  b  ")

    def test_empty_tracer_renders_placeholder(self):
        assert Tracer().render() == "(no spans recorded)"


class TestActiveTracer:
    def test_default_is_the_null_tracer(self):
        assert get_tracer() is NULL_TRACER

    def test_use_tracer_restores_the_previous_one(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_returns_the_previous_one(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            assert previous is NULL_TRACER
            assert get_tracer() is tracer
        finally:
            set_tracer(previous)

    def test_traced_decorator_uses_the_tracer_active_at_call_time(self):
        @traced("work.unit")
        def unit():
            return 41

        assert unit() == 41  # disabled: plain call, no recording
        tracer = Tracer()
        with use_tracer(tracer):
            assert unit() == 41
        assert [root.name for root in tracer.roots] == ["work.unit"]


class TestNoOpIsFree:
    def test_null_span_is_one_shared_singleton(self):
        assert NULL_TRACER.span("anything", key="value") is NULL_SPAN
        assert NULL_TRACER.span("other") is NULL_SPAN

    def test_disabled_path_never_reads_the_clock(self, monkeypatch):
        """The crisp zero-cost property: no perf_counter call when off.

        Every instrumentation site in the pipeline goes through the
        active tracer; with the null tracer installed a clock read would
        only come from a bug in the no-op path.
        """

        def exploding_clock():
            raise AssertionError("perf_counter read on the disabled path")

        monkeypatch.setattr("repro.obs.spans._perf_counter", exploding_clock)
        from repro.core.generator import derive_protocol

        result = derive_protocol("SPEC a1; exit >> b2; exit ENDSPEC")
        assert result.places == [1, 2]

    def test_enabled_path_does_read_the_clock(self, monkeypatch):
        """Counterpart: the same monkeypatch trips once tracing is on."""

        def exploding_clock():
            raise AssertionError("clock")

        from repro.core.generator import derive_protocol

        tracer = Tracer()  # constructed before the clock is broken
        monkeypatch.setattr("repro.obs.spans._perf_counter", exploding_clock)
        with use_tracer(tracer):
            with pytest.raises(AssertionError, match="clock"):
                derive_protocol("SPEC a1; exit >> b2; exit ENDSPEC")
