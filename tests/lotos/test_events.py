"""Event-model unit tests: identity, rendering, matching, binding."""


from repro.lotos.events import (
    DELTA,
    INTERNAL,
    ReceiveAction,
    SendAction,
    ServicePrimitive,
    SyncMessage,
    matches,
    place_of,
)


class TestLabels:
    def test_primitive_rendering(self):
        assert str(ServicePrimitive("read", 1)) == "read1"

    def test_internal_is_unobservable(self):
        assert not INTERNAL.is_observable()

    def test_delta_is_observable(self):
        assert DELTA.is_observable()

    def test_primitive_equality(self):
        assert ServicePrimitive("a", 1) == ServicePrimitive("a", 1)
        assert ServicePrimitive("a", 1) != ServicePrimitive("a", 2)
        assert ServicePrimitive("a", 1) != ServicePrimitive("b", 1)

    def test_place_of(self):
        assert place_of(ServicePrimitive("a", 3)) == 3
        assert place_of(INTERNAL) is None
        assert place_of(SendAction(dest=2, message=SyncMessage(1), src=4)) == 4
        assert place_of(ReceiveAction(src=2, message=SyncMessage(1), dest=5)) == 5
        assert place_of(SendAction(dest=2, message=SyncMessage(1))) is None


class TestSyncMessage:
    def test_bind_symbolic(self):
        message = SyncMessage(8)
        assert message.bind((1, 2)) == SyncMessage(8, (1, 2))

    def test_bind_concrete_is_noop(self):
        message = SyncMessage(8, (3,))
        assert message.bind((1, 2)) is message

    def test_render_compact(self):
        assert SyncMessage(8).render() == "8"
        assert SyncMessage(8, (1, 2)).render() == "8"

    def test_render_full(self):
        assert SyncMessage(8).render(compact=False) == "s,8"
        assert SyncMessage(8, (1, 2)).render(compact=False) == "<1.2>,8"
        assert SyncMessage(8, ()).render(compact=False) == "<>,8"

    def test_render_kind(self):
        assert SyncMessage(8, (), "exec").render() == "exec,8"

    def test_identity_includes_occurrence_and_kind(self):
        assert SyncMessage(8, (1,)) != SyncMessage(8, (2,))
        assert SyncMessage(8, (), "exec") != SyncMessage(8, (), "done")


class TestSendReceive:
    def test_short_form_rendering(self):
        assert str(SendAction(dest=2, message=SyncMessage(8))) == "s2(8)"
        assert str(ReceiveAction(src=1, message=SyncMessage(8))) == "r1(8)"

    def test_long_form_rendering(self):
        assert (
            SendAction(dest=2, message=SyncMessage(8), src=1).render()
            == "s^1_2(8)"
        )
        assert (
            ReceiveAction(src=1, message=SyncMessage(8), dest=2).render()
            == "r^2_1(8)"
        )

    def test_with_src_and_short(self):
        send = SendAction(dest=2, message=SyncMessage(8))
        annotated = send.with_src(1)
        assert annotated.src == 1
        assert annotated.short() == send

    def test_with_dest_and_short(self):
        receive = ReceiveAction(src=1, message=SyncMessage(8))
        annotated = receive.with_dest(2)
        assert annotated.dest == 2
        assert annotated.short() == receive


class TestMatching:
    def test_matching_pair(self):
        send = SendAction(dest=2, message=SyncMessage(8), src=1)
        receive = ReceiveAction(src=1, message=SyncMessage(8), dest=2)
        assert matches(send, receive)

    def test_message_mismatch(self):
        send = SendAction(dest=2, message=SyncMessage(8), src=1)
        receive = ReceiveAction(src=1, message=SyncMessage(9), dest=2)
        assert not matches(send, receive)

    def test_wrong_sender(self):
        send = SendAction(dest=2, message=SyncMessage(8), src=3)
        receive = ReceiveAction(src=1, message=SyncMessage(8), dest=2)
        assert not matches(send, receive)

    def test_wrong_destination(self):
        send = SendAction(dest=3, message=SyncMessage(8), src=1)
        receive = ReceiveAction(src=1, message=SyncMessage(8), dest=2)
        assert not matches(send, receive)

    def test_short_forms_match_on_message_only(self):
        send = SendAction(dest=2, message=SyncMessage(8))
        receive = ReceiveAction(src=1, message=SyncMessage(8))
        assert matches(send, receive)

    def test_occurrence_mismatch(self):
        send = SendAction(dest=2, message=SyncMessage(8, (1,)), src=1)
        receive = ReceiveAction(src=1, message=SyncMessage(8, (2,)), dest=2)
        assert not matches(send, receive)
