"""Fuzz-style robustness: hostile input never escapes the error API."""

import string

from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.lotos.events import Label
from repro.lotos.lts import build_lts
from repro.lotos.parser import parse, parse_behaviour
from repro.lotos.semantics import Semantics
from repro.lotos.syntax import Behaviour, Empty
from tests.lotos.test_unparse_roundtrip import behaviours


class TestParserRobustness:
    @given(st.text(alphabet=string.printable, max_size=80))
    @settings(max_examples=300, deadline=None)
    def test_arbitrary_text_never_crashes(self, text):
        try:
            parse_behaviour(text)
        except ReproError:
            pass  # rejecting is fine; crashing with anything else is not
        except RecursionError:
            pass  # pathological nesting is acceptable to refuse

    TOKENS = [
        "SPEC", "ENDSPEC", "PROC", "END", "WHERE", "exit", "stop",
        "a1", "b2", "read1", "A", "B", "i", "s2(1)", "r1(2)",
        ";", "[]", "|||", "||", "|[", "]|", "[>", ">>", "(", ")", "=", ",",
    ]

    @given(st.lists(st.sampled_from(TOKENS), max_size=25))
    @settings(max_examples=300, deadline=None)
    def test_token_soup_never_crashes(self, tokens):
        text = " ".join(tokens)
        for entry in (parse, parse_behaviour):
            try:
                entry(text)
            except ReproError:
                pass

    @given(st.lists(st.sampled_from(TOKENS), max_size=25))
    @settings(max_examples=150, deadline=None)
    def test_accepted_token_soup_round_trips(self, tokens):
        from repro.lotos.unparse import unparse_behaviour

        text = " ".join(tokens)
        try:
            node = parse_behaviour(text)
        except ReproError:
            return
        assert parse_behaviour(unparse_behaviour(node, compact=False)) == node


class TestSemanticsRobustness:
    @given(behaviours)
    @settings(max_examples=200, deadline=None)
    def test_transitions_well_typed(self, node: Behaviour):
        semantics = Semantics({"A": Empty(), "B": Empty(), "Loop": Empty()})
        try:
            transitions = semantics.transitions(node)
        except ReproError:
            return  # Empty() has no semantics; dangling refs resolve to it
        for label, residual in transitions:
            assert isinstance(label, Label)
            assert isinstance(residual, Behaviour)

    @given(behaviours)
    @settings(max_examples=100, deadline=None)
    def test_bounded_lts_never_crashes(self, node: Behaviour):
        from repro.lotos.syntax import ActionPrefix, Exit

        semantics = Semantics(
            {
                "A": ActionPrefix(
                    __import__("repro.lotos.events", fromlist=["ServicePrimitive"])
                    .ServicePrimitive("z", 1),
                    Exit(),
                ),
                "B": Exit(),
                "Loop": Exit(),
            }
        )
        try:
            lts = build_lts(node, semantics, max_states=200, on_limit="truncate")
        except ReproError:
            return
        assert lts.num_states >= 1


class TestSimplifierRobustness:
    @given(behaviours)
    @settings(max_examples=200, deadline=None)
    def test_simplify_idempotent(self, node: Behaviour):
        from repro.core.simplify import simplify
        from repro.errors import DerivationError

        try:
            once = simplify(node)
        except DerivationError:
            return  # half-empty choice: correctly rejected
        assert simplify(once) == once
