"""SOS rule tests, one class per operator, plus recursion handling."""

import pytest

from repro.errors import (
    SemanticsError,
    UnboundProcessError,
    UnguardedRecursionError,
)
from repro.lotos.events import INTERNAL, Delta, ServicePrimitive
from repro.lotos.parser import parse, parse_behaviour
from repro.lotos.semantics import Semantics
from repro.lotos.syntax import (
    Disable,
    Empty,
    Enable,
    Exit,
    Stop,
)

SEM = Semantics()


def labels_of(node, semantics=SEM):
    return sorted(str(label) for label, _ in semantics.transitions(node))


class TestBasics:
    def test_stop_has_no_transitions(self):
        assert SEM.transitions(Stop()) == ()

    def test_exit_offers_delta(self):
        ((label, residual),) = SEM.transitions(Exit())
        assert isinstance(label, Delta)
        assert residual == Stop()

    def test_action_prefix(self):
        node = parse_behaviour("a1; b2; exit")
        ((label, residual),) = SEM.transitions(node)
        assert label == ServicePrimitive("a", 1)
        assert residual == parse_behaviour("b2; exit")

    def test_internal_prefix(self):
        node = parse_behaviour("i; a1; exit")
        ((label, _),) = SEM.transitions(node)
        assert label == INTERNAL
        assert not label.is_observable()

    def test_empty_has_no_semantics(self):
        with pytest.raises(SemanticsError, match="empty"):
            SEM.transitions(Empty())


class TestChoice:
    def test_offers_both_initials(self):
        node = parse_behaviour("a1; exit [] b2; exit")
        assert labels_of(node) == ["a1", "b2"]

    def test_choice_commits(self):
        node = parse_behaviour("a1; c1; exit [] b2; exit")
        (_, after_a), _ = SEM.transitions(node)
        assert labels_of(after_a) == ["c1"]

    def test_delta_is_a_choice_initial(self):
        node = parse_behaviour("a1; exit [] exit")
        assert labels_of(node) == ["a1", "delta"]


class TestParallel:
    def test_interleaving(self):
        node = parse_behaviour("a1; exit ||| b2; exit")
        assert labels_of(node) == ["a1", "b2"]

    def test_interleaving_keeps_other_side(self):
        node = parse_behaviour("a1; exit ||| b2; exit")
        transitions = dict(
            (str(label), residual) for label, residual in SEM.transitions(node)
        )
        assert labels_of(transitions["a1"]) == ["b2"]

    def test_delta_synchronizes(self):
        node = parse_behaviour("exit ||| exit")
        assert labels_of(node) == ["delta"]

    def test_delta_blocked_until_both_sides_terminate(self):
        node = parse_behaviour("a1; exit ||| exit")
        assert labels_of(node) == ["a1"]

    def test_rendezvous(self):
        node = parse_behaviour("m1; exit |[m1]| m1; exit")
        ((label, residual),) = SEM.transitions(node)
        assert label == ServicePrimitive("m", 1)
        assert labels_of(residual) == ["delta"]

    def test_rendezvous_blocks_when_one_side_not_ready(self):
        node = parse_behaviour("m1; exit |[m1]| a2; m1; exit")
        assert labels_of(node) == ["a2"]

    def test_full_sync(self):
        node = parse_behaviour("m1; exit || m1; exit")
        assert labels_of(node) == ["m1"]

    def test_full_sync_mismatch_deadlocks(self):
        node = parse_behaviour("a1; exit || b1; exit")
        assert labels_of(node) == []

    def test_internal_never_synchronizes(self):
        node = parse_behaviour("i; a1; exit || i; a1; exit")
        # Both internal moves interleave even under ||.
        assert labels_of(node) == ["i", "i"]


class TestEnable:
    def test_left_moves_first(self):
        node = parse_behaviour("a1; exit >> b2; exit")
        ((label, residual),) = SEM.transitions(node)
        assert str(label) == "a1"
        assert isinstance(residual, Enable)

    def test_delta_becomes_internal(self):
        node = parse_behaviour("(a1; exit) >> b2; exit")
        (_, after_a), = SEM.transitions(node)
        ((label, residual),) = SEM.transitions(after_a)
        assert label == INTERNAL
        assert residual == parse_behaviour("b2; exit")

    def test_right_inert_until_left_terminates(self):
        node = parse_behaviour("a1; c1; exit >> b2; exit")
        assert labels_of(node) == ["a1"]


class TestDisable:
    def test_both_sides_initially_enabled(self):
        node = parse_behaviour("a1; exit [> b2; exit")
        assert labels_of(node) == ["a1", "b2"]

    def test_disable_stays_armed_during_left(self):
        node = parse_behaviour("a1; c1; exit [> b2; exit")
        transitions = {str(l): r for l, r in SEM.transitions(node)}
        assert isinstance(transitions["a1"], Disable)
        assert labels_of(transitions["a1"]) == ["b2", "c1"]

    def test_interrupt_discards_left(self):
        node = parse_behaviour("a1; c1; exit [> b2; exit")
        transitions = {str(l): r for l, r in SEM.transitions(node)}
        assert labels_of(transitions["b2"]) == ["delta"]

    def test_left_termination_discards_right(self):
        node = parse_behaviour("exit [> b2; exit")
        transitions = {str(l): r for l, r in SEM.transitions(node)}
        assert set(transitions) == {"delta", "b2"}
        assert labels_of(transitions["delta"]) == []  # stop


class TestHide:
    def test_hidden_event_becomes_internal(self):
        node = parse_behaviour("hide a1 in a1; b2; exit")
        ((label, residual),) = SEM.transitions(node)
        assert label == INTERNAL
        assert labels_of(residual) == ["b2"]

    def test_delta_is_never_hidden(self):
        node = parse_behaviour("hide a1 in exit")
        ((label, _),) = SEM.transitions(node)
        assert isinstance(label, Delta)

    def test_hide_messages(self):
        node = parse_behaviour("hide messages in s2(1); a1; exit")
        ((label, residual),) = SEM.transitions(node)
        assert label == INTERNAL
        assert labels_of(residual) == ["a1"]


class TestProcesses:
    def test_unfolding(self):
        spec = parse("SPEC A WHERE PROC A = a1; A END ENDSPEC")
        semantics, root = Semantics.of_specification(spec)
        ((label, residual),) = semantics.transitions(root)
        assert str(label) == "a1"
        ((label2, _),) = semantics.transitions(residual)
        assert str(label2) == "a1"

    def test_unbound_reference(self):
        semantics = Semantics({})
        with pytest.raises(UnboundProcessError):
            semantics.transitions(parse_behaviour("B"))

    def test_unreached_reference_is_not_resolved(self):
        # Lazy unfolding: the dangling B is never consulted while it sits
        # behind an unexecuted prefix.
        semantics = Semantics({})
        node = parse_behaviour("a1; exit >> B")
        assert [str(l) for l, _ in semantics.transitions(node)] == ["a1"]

    def test_unguarded_recursion_detected(self):
        spec = parse("SPEC A WHERE PROC A = A END ENDSPEC")
        semantics, root = Semantics.of_specification(spec)
        with pytest.raises(UnguardedRecursionError):
            semantics.transitions(root)

    def test_mutual_recursion(self):
        spec = parse(
            "SPEC A WHERE PROC A = a1; B END PROC B = b2; A END ENDSPEC"
        )
        semantics, root = Semantics.of_specification(spec)
        seen = []
        node = root
        for _ in range(4):
            ((label, node),) = semantics.transitions(node)
            seen.append(str(label))
        assert seen == ["a1", "b2", "a1", "b2"]

    def test_nested_scope_shadowing(self):
        spec = parse(
            """SPEC A WHERE
                 PROC A = B WHERE PROC B = a1; exit END END
                 PROC B = b2; exit END
               ENDSPEC"""
        )
        semantics, root = Semantics.of_specification(spec)
        # The inner B (a1) must win inside A.
        ((label, _),) = semantics.transitions(root)
        assert str(label) == "a1"


class TestTransitionCaching:
    def test_results_are_memoized(self):
        semantics = Semantics()
        node = parse_behaviour("a1; exit ||| b2; exit")
        first = semantics.transitions(node)
        second = semantics.transitions(node)
        assert first is second

    def test_duplicate_transitions_are_merged(self):
        node = parse_behaviour("a1; exit [] a1; exit")
        assert len(SEM.transitions(node)) == 1
