"""Tau-chain compression tests."""

import pytest

from repro.core.generator import derive_protocol
from repro.lotos.equivalence import (
    observationally_congruent,
    weak_bisimilar,
)
from repro.lotos.lts import build_lts
from repro.lotos.parser import parse_behaviour
from repro.lotos.reduction import compress_tau_chains
from repro.lotos.semantics import Semantics
from repro.runtime import build_system

SEM = Semantics()


class TestCompression:
    def test_internal_chain_collapses(self):
        lts = build_lts(parse_behaviour("i; i; i; a1; exit"), SEM)
        reduced = compress_tau_chains(lts)
        # initial state is kept; the chain behind it collapses
        assert reduced.num_states < lts.num_states
        assert weak_bisimilar(lts, reduced)

    def test_initial_state_never_merged(self):
        lts = build_lts(parse_behaviour("i; a1; exit"), SEM)
        reduced = compress_tau_chains(lts)
        assert reduced.initial == 0
        # rooted condition preserved: an initial tau remains
        assert observationally_congruent(lts, reduced)

    def test_observable_steps_untouched(self):
        lts = build_lts(parse_behaviour("a1; b2; exit"), SEM)
        reduced = compress_tau_chains(lts)
        assert reduced.num_states == lts.num_states

    def test_divergent_self_loop_kept(self):
        from repro.lotos.parser import parse

        spec = parse("SPEC L WHERE PROC L = i; L END ENDSPEC")
        semantics, root = Semantics.of_specification(spec, bind_occurrences=False)
        lts = build_lts(root, semantics)
        reduced = compress_tau_chains(lts)
        assert reduced.num_transitions >= 1  # loop not erased

    def test_branching_internal_states_kept(self):
        # a state with TWO internal successors is not deterministic
        lts = build_lts(parse_behaviour("i; a1; exit [] i; b2; exit"), SEM)
        reduced = compress_tau_chains(lts)
        assert weak_bisimilar(lts, reduced)
        assert not observationally_congruent(
            build_lts(parse_behaviour("a1; exit [] b2; exit"), SEM), reduced
        )

    @pytest.mark.parametrize(
        "service",
        [
            "SPEC a1; b2; c3; exit ENDSPEC",
            "SPEC (a1; exit ||| b2; exit) >> c3; exit ENDSPEC",
            "SPEC (a1; b2; B) >> d3; exit WHERE PROC B = e2; exit END ENDSPEC",
        ],
    )
    def test_composed_systems_preserve_equivalences(self, service):
        result = derive_protocol(service)
        system = build_system(result.entities)
        lts = build_lts(system.initial, system, max_states=30_000)
        reduced = compress_tau_chains(lts)
        assert reduced.num_states <= lts.num_states
        semantics, root = Semantics.of_specification(
            result.prepared, bind_occurrences=False
        )
        service_lts = build_lts(root, semantics)
        assert weak_bisimilar(service_lts, reduced)
        assert observationally_congruent(service_lts, reduced)

    def test_truncated_states_not_merged(self):
        from repro.lotos.parser import parse

        spec = parse("SPEC A WHERE PROC A = a1; A END ENDSPEC")
        semantics, root = Semantics.of_specification(spec, bind_occurrences=True)
        lts = build_lts(root, semantics, max_states=10, on_limit="truncate")
        reduced = compress_tau_chains(lts)
        assert reduced.truncated_states
