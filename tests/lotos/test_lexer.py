"""Lexer unit tests: tokens, positions, comments, error handling."""

import pytest

from repro.errors import LexerError
from repro.lotos.lexer import split_event_identifier, tokenize


def token_types(text):
    return [token.type for token in tokenize(text)]


def token_values(text):
    return [token.value for token in tokenize(text) if token.type != "EOF"]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type == "EOF"

    def test_whitespace_only(self):
        assert token_types("  \n\t  ") == ["EOF"]

    def test_keywords(self):
        assert token_types("SPEC ENDSPEC PROC END WHERE exit") == [
            "KEYWORD"
        ] * 6 + ["EOF"]

    def test_extension_keywords(self):
        assert token_types("stop hide in empty") == ["KEYWORD"] * 4 + ["EOF"]

    def test_identifiers_are_not_keywords(self):
        types = token_types("read1 Spec SPECS exits")
        assert types == ["IDENT"] * 4 + ["EOF"]

    def test_numbers(self):
        tokens = tokenize("123 4")
        assert [t.type for t in tokens[:-1]] == ["NUMBER", "NUMBER"]
        assert [t.value for t in tokens[:-1]] == ["123", "4"]


class TestOperators:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("|||", ["INTERLEAVE"]),
            ("||", ["FULLSYNC"]),
            ("|[", ["LSYNC"]),
            ("]|", ["RSYNC"]),
            ("[>", ["DISABLE"]),
            ("[]", ["CHOICE"]),
            (">>", ["ENABLE"]),
            (";", ["SEMI"]),
            ("=", ["EQUALS"]),
            (",", ["COMMA"]),
        ],
    )
    def test_single_operator(self, text, expected):
        assert token_types(text) == expected + ["EOF"]

    def test_maximal_munch_interleave_vs_fullsync(self):
        # ||| must not lex as || followed by |.
        assert token_types("|||") == ["INTERLEAVE", "EOF"]

    def test_lone_bracket_is_an_error(self):
        with pytest.raises(LexerError):
            tokenize("]")

    def test_disable_vs_choice(self):
        assert token_types("[>[]") == ["DISABLE", "CHOICE", "EOF"]


class TestComments:
    def test_comment_is_skipped(self):
        assert token_values("a1 (* a comment *) ; exit") == ["a1", ";", "exit"]

    def test_comment_may_contain_operators(self):
        assert token_values("(* ;;; [] |[ *) b2") == ["b2"]

    def test_unterminated_comment_raises(self):
        with pytest.raises(LexerError) as excinfo:
            tokenize("a1 (* never closed")
        assert "unterminated" in str(excinfo.value)

    def test_parenthesis_not_comment(self):
        assert token_values("( a1 )") == ["(", "a1", ")"]


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a1;\nb2; exit")
        b2 = next(t for t in tokens if t.value == "b2")
        assert (b2.line, b2.column) == (2, 1)
        exit_token = next(t for t in tokens if t.value == "exit")
        assert (exit_token.line, exit_token.column) == (2, 5)

    def test_error_position(self):
        with pytest.raises(LexerError) as excinfo:
            tokenize("a1;\n  @")
        assert excinfo.value.line == 2
        assert excinfo.value.column == 3


class TestSplitEventIdentifier:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("a1", ("a", 1)),
            ("read1", ("read", 1)),
            ("push2", ("push", 2)),
            ("interrupt3", ("interrupt", 3)),
            ("a12", ("a", 12)),
            ("data2go3", ("data2go", 3)),
            ("i", ("i", None)),
            ("read", ("read", None)),
        ],
    )
    def test_split(self, name, expected):
        assert split_event_identifier(name) == expected
