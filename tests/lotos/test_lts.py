"""LTS construction: completeness, truncation, deadlock analysis."""

import pytest

from repro.errors import StateSpaceLimitExceeded
from repro.lotos.lts import build_lts
from repro.lotos.parser import parse, parse_behaviour
from repro.lotos.semantics import Semantics

SEM = Semantics()


class TestConstruction:
    def test_linear_chain(self):
        lts = build_lts(parse_behaviour("a1; b2; exit"), SEM)
        # a1;b2;exit -> b2;exit -> exit -> stop
        assert lts.num_states == 4
        assert lts.num_transitions == 3
        assert lts.complete

    def test_sharing_of_identical_states(self):
        # Both branches converge on the same residual.
        lts = build_lts(parse_behaviour("a1; c1; exit [] b1; c1; exit"), SEM)
        assert lts.num_states == 4  # root, c1;exit, exit, stop

    def test_diamond_from_interleaving(self):
        lts = build_lts(parse_behaviour("a1; exit ||| b2; exit"), SEM)
        # The 2x2 progress diamond plus the synchronized-termination
        # residue: delta fires only from (exit ||| exit).
        assert lts.complete
        assert lts.num_states == 5
        assert lts.num_transitions == 5

    def test_labels(self):
        lts = build_lts(parse_behaviour("a1; exit ||| b2; exit"), SEM)
        assert {str(label) for label in lts.labels()} == {"a1", "b2", "delta"}

    def test_observable_labels_exclude_internal(self):
        lts = build_lts(parse_behaviour("i; a1; exit"), SEM)
        assert {str(label) for label in lts.observable_labels()} == {"a1", "delta"}

    def test_successors(self):
        lts = build_lts(parse_behaviour("a1; exit [] a1; stop"), SEM)
        from repro.lotos.events import ServicePrimitive

        targets = lts.successors(0, ServicePrimitive("a", 1))
        assert len(targets) == 2


class TestBudget:
    def test_raise_on_limit(self):
        spec = parse("SPEC A WHERE PROC A = a1; A END ENDSPEC")
        semantics, root = Semantics.of_specification(spec, bind_occurrences=True)
        # occurrence paths make every unfolding a fresh state
        with pytest.raises(StateSpaceLimitExceeded):
            build_lts(root, semantics, max_states=50, on_limit="raise")

    def test_truncate_on_limit(self):
        spec = parse("SPEC A WHERE PROC A = a1; A END ENDSPEC")
        semantics, root = Semantics.of_specification(spec, bind_occurrences=True)
        lts = build_lts(root, semantics, max_states=50, on_limit="truncate")
        assert not lts.complete
        assert lts.num_states == 50
        assert lts.truncated_states

    def test_tail_recursion_without_occurrences_is_finite(self):
        spec = parse("SPEC A WHERE PROC A = a1; A END ENDSPEC")
        semantics, root = Semantics.of_specification(spec, bind_occurrences=False)
        lts = build_lts(root, semantics, max_states=50)
        assert lts.complete
        assert lts.num_states == 1  # a1; A loops back to itself

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            build_lts(parse_behaviour("a1; exit"), SEM, on_limit="explode")


class TestDeadlocks:
    def test_stop_after_delta_is_not_a_genuine_deadlock(self):
        lts = build_lts(parse_behaviour("a1; exit"), SEM)
        assert lts.deadlock_states()  # the stop residue
        assert lts.genuine_deadlocks() == []

    def test_explicit_stop_is_genuine(self):
        lts = build_lts(parse_behaviour("a1; stop"), SEM)
        assert len(lts.genuine_deadlocks()) == 1

    def test_sync_mismatch_deadlock(self):
        lts = build_lts(parse_behaviour("a1; m1; exit |[m1]| b1; n1; exit |[n1]| exit"), SEM)
        assert lts.genuine_deadlocks()


class TestTauClosure:
    def test_closure_follows_internal_chains(self):
        lts = build_lts(parse_behaviour("i; i; a1; exit"), SEM)
        closure = lts.tau_closure(lts.initial)
        assert len(closure) == 3  # root, i;a1, a1

    def test_closure_is_reflexive(self):
        lts = build_lts(parse_behaviour("a1; exit"), SEM)
        assert lts.tau_closure(0) == {0}
