"""Weak-trace machinery: acceptance, enumeration, bounded comparison."""

from repro.lotos.events import DELTA, ServicePrimitive
from repro.lotos.parser import parse, parse_behaviour
from repro.lotos.semantics import Semantics
from repro.lotos.traces import (
    accepts,
    enumerate_weak_traces,
    format_trace,
    initial_class,
    observable_moves,
    weak_trace_equivalent,
    weak_trace_included,
)

SEM = Semantics()


def prim(name, place):
    return ServicePrimitive(name, place)


class TestAccepts:
    def test_empty_trace_always_accepted(self):
        assert accepts(parse_behaviour("a1; exit"), SEM, [])

    def test_simple_trace(self):
        node = parse_behaviour("a1; b2; exit")
        assert accepts(node, SEM, [prim("a", 1), prim("b", 2)])
        assert accepts(node, SEM, [prim("a", 1), prim("b", 2), DELTA])

    def test_rejects_wrong_order(self):
        node = parse_behaviour("a1; b2; exit")
        assert not accepts(node, SEM, [prim("b", 2)])

    def test_rejects_premature_delta(self):
        node = parse_behaviour("a1; b2; exit")
        assert not accepts(node, SEM, [prim("a", 1), DELTA])

    def test_internal_steps_are_skipped(self):
        node = parse_behaviour("i; a1; i; b2; exit")
        assert accepts(node, SEM, [prim("a", 1), prim("b", 2)])

    def test_nondeterministic_acceptance(self):
        node = parse_behaviour("a1; b2; exit [] a1; c3; exit")
        assert accepts(node, SEM, [prim("a", 1), prim("b", 2)])
        assert accepts(node, SEM, [prim("a", 1), prim("c", 3)])


class TestEnumeration:
    def test_enumerates_all_prefixes(self):
        traces = enumerate_weak_traces(parse_behaviour("a1; b2; exit"), SEM, 5)
        rendered = {format_trace(t) for t in traces}
        assert rendered == {
            "<empty>",
            "a1",
            "a1 . b2",
            "a1 . b2 . delta",
        }

    def test_depth_bound_respected(self):
        traces = enumerate_weak_traces(parse_behaviour("a1; b2; exit"), SEM, 1)
        assert max(len(t) for t in traces) == 1

    def test_interleaving_traces(self):
        traces = enumerate_weak_traces(
            parse_behaviour("a1; exit ||| b2; exit"), SEM, 2
        )
        rendered = {format_trace(t) for t in traces}
        assert "a1 . b2" in rendered and "b2 . a1" in rendered

    def test_distinct_prefixes_to_same_class_both_counted(self):
        # a;c [] b;c: after a or b the residual class is the same, yet
        # both a.c and b.c must be enumerated.
        traces = enumerate_weak_traces(
            parse_behaviour("a1; c1; exit [] b1; c1; exit"), SEM, 2
        )
        rendered = {format_trace(t) for t in traces}
        assert "a1 . c1" in rendered and "b1 . c1" in rendered


class TestBoundedEquivalence:
    def test_equivalent_modulo_internal(self):
        eq, witness = weak_trace_equivalent(
            parse_behaviour("a1; i; b2; exit"),
            SEM,
            parse_behaviour("a1; b2; exit"),
            SEM,
            depth=5,
        )
        assert eq and witness is None

    def test_distinguishing_trace_is_minimal(self):
        eq, witness = weak_trace_equivalent(
            parse_behaviour("a1; b2; exit"),
            SEM,
            parse_behaviour("a1; c3; exit"),
            SEM,
            depth=5,
        )
        assert not eq
        assert len(witness) == 2  # a1 then the divergence

    def test_depth_limits_detection(self):
        # Difference at depth 3 is invisible at depth 2.
        left = parse_behaviour("a1; b2; c3; exit")
        right = parse_behaviour("a1; b2; d3; exit")
        eq, _ = weak_trace_equivalent(left, SEM, right, SEM, depth=2)
        assert eq
        eq, witness = weak_trace_equivalent(left, SEM, right, SEM, depth=3)
        assert not eq

    def test_delta_differences_detected(self):
        eq, witness = weak_trace_equivalent(
            parse_behaviour("a1; exit"), SEM, parse_behaviour("a1; stop"), SEM, 3
        )
        assert not eq
        assert witness[-1] == DELTA

    def test_recursion_bounded(self):
        spec = parse("SPEC A WHERE PROC A = a1; A END ENDSPEC")
        semantics, root = Semantics.of_specification(spec, bind_occurrences=False)
        eq, _ = weak_trace_equivalent(root, semantics, root, semantics, depth=10)
        assert eq


class TestBoundedInclusion:
    def test_subset_included(self):
        small = parse_behaviour("a1; b2; exit")
        big = parse_behaviour("a1; b2; exit [] a1; c3; exit")
        ok, _ = weak_trace_included(small, SEM, big, SEM, depth=5)
        assert ok

    def test_superset_not_included(self):
        small = parse_behaviour("a1; b2; exit")
        big = parse_behaviour("a1; b2; exit [] a1; c3; exit")
        ok, witness = weak_trace_included(big, SEM, small, SEM, depth=5)
        assert not ok
        assert format_trace(witness) == "a1 . c3"


class TestHelpers:
    def test_initial_class_includes_tau_reach(self):
        node = parse_behaviour("i; a1; exit")
        assert len(initial_class(node, SEM)) == 2

    def test_observable_moves_merges_nondeterminism(self):
        node = parse_behaviour("a1; b2; exit [] a1; c3; exit")
        moves = observable_moves(initial_class(node, SEM), SEM)
        assert set(map(str, moves)) == {"a1"}
        (targets,) = moves.values()
        assert len(targets) == 2

    def test_format_trace(self):
        assert format_trace([]) == "<empty>"
        assert format_trace([prim("a", 1), DELTA]) == "a1 . delta"
