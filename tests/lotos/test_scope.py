"""Scope elaboration and occurrence binding tests."""

import pytest

from repro.errors import UnboundProcessError
from repro.lotos.events import ReceiveAction, SendAction, SyncMessage
from repro.lotos.parser import parse, parse_behaviour
from repro.lotos.scope import bind_occurrence, flatten, flatten_spec
from repro.lotos.syntax import ActionPrefix, ProcessRef


class TestFlatten:
    def test_single_level(self):
        spec = parse("SPEC A WHERE PROC A = a1; exit END ENDSPEC")
        root, definitions = flatten(spec)
        assert root == ProcessRef("A")
        assert set(definitions) == {"A"}

    def test_nested_definitions_lifted(self):
        spec = parse(
            "SPEC A WHERE PROC A = B WHERE PROC B = b2; exit END END ENDSPEC"
        )
        root, definitions = flatten(spec)
        assert set(definitions) == {"A", "B"}
        assert definitions["A"] == ProcessRef("B")

    def test_shadowing_disambiguated(self):
        spec = parse(
            """SPEC A WHERE
                 PROC A = B WHERE PROC B = a1; exit END END
                 PROC B = b2; exit END
               ENDSPEC"""
        )
        root, definitions = flatten(spec)
        assert set(definitions) == {"A", "B", "B#2"}
        # Inner reference resolves to the inner (first-flattened) B.
        inner_name = definitions["A"].name
        assert definitions[inner_name] == parse_behaviour("a1; exit")

    def test_sibling_scope_visibility(self):
        spec = parse(
            "SPEC A WHERE PROC A = a1; B END PROC B = b2; A END ENDSPEC"
        )
        _, definitions = flatten(spec)
        assert definitions["A"].continuation == ProcessRef("B")
        assert definitions["B"].continuation == ProcessRef("A")

    def test_duplicate_sibling_definitions(self):
        # Sibling duplicates used to collide on their raw name, leaving a
        # definition slot empty (None body) and crashing downstream passes.
        spec = parse(
            """SPEC P WHERE
                 PROC P = a1; exit END
                 PROC P = b2; exit END
               ENDSPEC"""
        )
        root, definitions = flatten(spec)
        assert set(definitions) == {"P", "P#2"}
        assert definitions["P"] == parse_behaviour("a1; exit")
        assert definitions["P#2"] == parse_behaviour("b2; exit")
        # References resolve to the later (shadowing) sibling.
        assert root == ProcessRef("P#2")

    def test_unbound_reference_raises(self):
        spec = parse("SPEC A WHERE PROC A = Missing END ENDSPEC")
        with pytest.raises(UnboundProcessError):
            flatten(spec)

    def test_flatten_spec_shape(self):
        spec = parse(
            "SPEC A WHERE PROC A = B WHERE PROC B = b2; exit END END ENDSPEC"
        )
        flat = flatten_spec(spec)
        assert [d.name for d in flat.definitions] == ["A", "B"]
        assert all(not d.body.definitions for d in flat.definitions)


class TestBindOccurrence:
    def test_symbolic_message_bound(self):
        node = parse_behaviour("s2(8); exit")
        bound = bind_occurrence(node, (3,))
        assert bound.event.message == SyncMessage(8, (3,))

    def test_concrete_message_unchanged(self):
        node = ActionPrefix(
            SendAction(dest=2, message=SyncMessage(8, (1,))),
            parse_behaviour("exit"),
        )
        assert bind_occurrence(node, (9,)) is node

    def test_receive_bound(self):
        node = parse_behaviour("r1(4); exit")
        bound = bind_occurrence(node, (2, 7))
        assert bound.event.message.occurrence == (2, 7)

    def test_reference_extended_by_site(self):
        ref = ProcessRef("A", site=5)
        bound = bind_occurrence(ref, (3,))
        assert bound.occurrence == (3, 5)

    def test_bound_reference_unchanged(self):
        ref = ProcessRef("A", site=5, occurrence=(1, 2))
        assert bind_occurrence(ref, (9,)) is ref

    def test_binding_is_deep(self):
        node = parse_behaviour("s2(1); exit ||| (r3(2); exit >> A)")
        bound = bind_occurrence(node, (4,))
        messages = [
            sub.event.message
            for sub in bound.walk()
            if isinstance(sub, ActionPrefix)
            and isinstance(sub.event, (SendAction, ReceiveAction))
        ]
        assert all(m.occurrence == (4,) for m in messages)

    def test_binding_primitives_is_identity(self):
        node = parse_behaviour("a1; b2; exit")
        assert bind_occurrence(node, (1,)) is node
