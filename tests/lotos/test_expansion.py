"""Action-prefix-form transformation tests (paper rules 9.1-9.4)."""

import pytest

from repro.errors import ExpansionError
from repro.lotos.expansion import (
    head_normal_form,
    is_action_prefix_form,
    transform_disable_operands,
)
from repro.lotos.lts import build_lts
from repro.lotos.equivalence import observationally_congruent
from repro.lotos.parser import parse, parse_behaviour
from repro.lotos.scope import flatten_spec
from repro.lotos.semantics import Semantics
from repro.lotos.syntax import Disable

SEM = Semantics()


class TestIsActionPrefixForm:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("a1; exit", True),
            ("a1; exit [] b2; exit", True),
            ("a1; exit [] b2; exit [] c3; exit", True),
            ("a1; (b2; exit ||| c3; exit)", True),
            ("a1; exit ||| b2; exit", False),
            ("exit", False),
            ("a1; exit >> b2; exit", False),
            ("(a1; exit [] b2; exit) [] c3; exit", True),
        ],
    )
    def test_classification(self, text, expected):
        assert is_action_prefix_form(parse_behaviour(text)) is expected


class TestHeadNormalForm:
    def test_prefix_form_untouched(self):
        node = parse_behaviour("a1; exit [] b2; exit")
        assert head_normal_form(node, SEM) is node

    def test_expansion_theorem_t1(self):
        # The Annex A T1 example: parallel becomes choice of prefixes.
        node = parse_behaviour("a1; exit ||| b2; exit")
        normal = head_normal_form(node, SEM)
        assert is_action_prefix_form(normal)
        # semantics preserved (expansion is a congruence)
        assert observationally_congruent(
            build_lts(node, SEM), build_lts(normal, SEM)
        )

    def test_enable_expansion(self):
        node = parse_behaviour("a1; exit >> b2; exit")
        normal = head_normal_form(node, SEM)
        assert is_action_prefix_form(normal)
        assert observationally_congruent(
            build_lts(node, SEM), build_lts(normal, SEM)
        )

    def test_immediate_termination_rejected(self):
        with pytest.raises(ExpansionError):
            head_normal_form(parse_behaviour("exit"), SEM)
        with pytest.raises(ExpansionError):
            head_normal_form(parse_behaviour("a1; exit [] exit"), SEM)

    def test_immediate_termination_allowed_with_exit(self):
        normal = head_normal_form(
            parse_behaviour("a1; exit [] exit"), SEM, allow_exit=True
        )
        assert normal is not None

    def test_stop_normalizes_to_stop(self):
        from repro.lotos.syntax import Stop

        assert head_normal_form(parse_behaviour("stop"), SEM) == Stop()


class TestTransformDisableOperands:
    def test_already_normal_spec_unchanged(self):
        spec = flatten_spec(
            parse("SPEC a1; exit [> b2; exit ENDSPEC")
        )
        assert transform_disable_operands(spec) is spec

    def test_parallel_operand_expanded(self):
        spec = flatten_spec(
            parse("SPEC a1; exit [> (b2; exit ||| c3; exit) ENDSPEC")
        )
        transformed = transform_disable_operands(spec)
        disable = transformed.root.behaviour
        assert isinstance(disable, Disable)
        assert is_action_prefix_form(disable.right)

    def test_process_reference_operand_unfolded(self):
        spec = flatten_spec(
            parse(
                "SPEC a1; exit [> B WHERE PROC B = b2; exit [] c3; exit END ENDSPEC"
            )
        )
        transformed = transform_disable_operands(spec)
        assert is_action_prefix_form(transformed.root.behaviour.right)

    def test_nested_disable_in_residual(self):
        spec = flatten_spec(
            parse(
                "SPEC a1; exit [> ((b2; exit) ||| (c3; exit [> d3; exit)) ENDSPEC"
            )
        )
        transformed = transform_disable_operands(spec)

        def all_normal(node):
            for sub in node.walk():
                if isinstance(sub, Disable) and not is_action_prefix_form(sub.right):
                    return False
            return True

        assert all_normal(transformed.root.behaviour)

    def test_transformation_preserves_semantics(self):
        spec = flatten_spec(
            parse("SPEC a1; b2; exit [> (c3; exit ||| d3; exit) ENDSPEC")
        )
        transformed = transform_disable_operands(spec)
        sem1, root1 = Semantics.of_specification(spec)
        sem2, root2 = Semantics.of_specification(transformed)
        assert observationally_congruent(
            build_lts(root1, sem1), build_lts(root2, sem2)
        )
