"""Unparser tests, including property-based parse/unparse round trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lotos.events import (
    ReceiveAction,
    SendAction,
    ServicePrimitive,
    SyncMessage,
)
from repro.lotos.parser import parse, parse_behaviour
from repro.lotos.syntax import (
    ActionPrefix,
    Behaviour,
    Choice,
    DefBlock,
    Disable,
    Enable,
    Exit,
    Parallel,
    ProcessDefinition,
    ProcessRef,
    Specification,
    Stop,
)
from repro.lotos.unparse import unparse, unparse_behaviour


class TestRendering:
    @pytest.mark.parametrize(
        "text",
        [
            "a1; exit",
            "a1; b2; exit",
            "a1; exit [] b1; exit",
            "a1; exit ||| b2; exit",
            "a1; exit |[a1]| a1; exit",
            "a1; exit || a1; exit",
            "a1; exit >> b2; exit",
            "a1; exit [> b1; exit",
            "a1; B",
            "s2(8); exit",
            "r1(2); exit",
        ],
    )
    def test_fixed_point(self, text):
        """Unparsing is a fixed point: text -> AST -> same text modulo ws."""
        node = parse_behaviour(text)
        rendered = unparse_behaviour(node)
        assert parse_behaviour(rendered) == node

    def test_choice_under_prefix_is_parenthesized(self):
        node = ActionPrefix(
            ServicePrimitive("a", 1),
            Choice(
                ActionPrefix(ServicePrimitive("b", 1), Exit()),
                ActionPrefix(ServicePrimitive("c", 1), Exit()),
            ),
        )
        assert unparse_behaviour(node) == "a1; (b1; exit [] c1; exit)"

    def test_minimal_parens_for_enable_of_parallel(self):
        node = Enable(
            Parallel(
                ActionPrefix(ServicePrimitive("a", 1), Exit()),
                ActionPrefix(ServicePrimitive("b", 2), Exit()),
            ),
            ActionPrefix(ServicePrimitive("c", 3), Exit()),
        )
        # ||| binds tighter than >>, so no parentheses are required.
        assert unparse_behaviour(node) == "a1; exit ||| b2; exit >> c3; exit"
        assert parse_behaviour(unparse_behaviour(node)) == node

    def test_compact_message_rendering(self):
        node = ActionPrefix(SendAction(dest=2, message=SyncMessage(8)), Exit())
        assert unparse_behaviour(node) == "s2(8); exit"
        assert unparse_behaviour(node, compact=False) == "s2(s,8); exit"

    def test_concrete_occurrence_rendering(self):
        node = ActionPrefix(
            ReceiveAction(src=1, message=SyncMessage(8, occurrence=(3, 5))),
            Exit(),
        )
        assert unparse_behaviour(node, compact=False) == "r1(<3.5>,8); exit"
        assert parse_behaviour(unparse_behaviour(node, compact=False)) == node

    def test_spec_round_trip(self):
        spec = parse(
            """SPEC S [> interrupt3; exit WHERE
                 PROC S = (read1; push2; S >> pop2; write3; exit)
                       [] (eof1; make3; exit) END
               ENDSPEC"""
        )
        assert parse(unparse(spec)) == spec


# ----------------------------------------------------------------------
# Property-based round trips over random ASTs.
# ----------------------------------------------------------------------
primitives = st.builds(
    ServicePrimitive,
    name=st.sampled_from(["a", "b", "read", "push", "req"]),
    place=st.integers(min_value=1, max_value=4),
)
messages = st.builds(
    SyncMessage,
    node=st.integers(min_value=0, max_value=30),
    occurrence=st.one_of(
        st.none(), st.tuples(), st.tuples(st.integers(1, 9), st.integers(1, 9))
    ),
    kind=st.sampled_from(["sync", "exec", "done"]),
)
events = st.one_of(
    primitives,
    st.builds(SendAction, dest=st.integers(1, 4), message=messages),
    st.builds(ReceiveAction, src=st.integers(1, 4), message=messages),
)

leaves = st.one_of(
    st.just(Exit()),
    st.just(Stop()),
    st.builds(ProcessRef, st.sampled_from(["A", "B", "Loop"])),
)


def composites(children: st.SearchStrategy) -> st.SearchStrategy:
    return st.one_of(
        st.builds(ActionPrefix, events, children),
        st.builds(Choice, children, children),
        st.builds(Enable, children, children),
        st.builds(Disable, children, children),
        st.builds(
            Parallel,
            children,
            children,
            st.frozensets(primitives, max_size=2),
            st.booleans(),
        ).filter(lambda p: not (p.sync_all and p.sync)),
    )


behaviours = st.recursive(leaves, composites, max_leaves=12)


class TestPropertyRoundTrip:
    @given(behaviours)
    @settings(max_examples=300, deadline=None)
    def test_parse_unparse_identity(self, node: Behaviour):
        rendered = unparse_behaviour(node, compact=False)
        assert parse_behaviour(rendered) == node

    @given(behaviours, behaviours)
    @settings(max_examples=100, deadline=None)
    def test_spec_parse_unparse_identity(self, root, body):
        spec = Specification(
            DefBlock(root, (ProcessDefinition("A", DefBlock(body)),))
        )
        assert parse(unparse(spec, compact=False)) == spec

    @given(behaviours)
    @settings(max_examples=100, deadline=None)
    def test_rendering_is_stable(self, node: Behaviour):
        once = unparse_behaviour(node, compact=False)
        twice = unparse_behaviour(parse_behaviour(once), compact=False)
        assert once == twice
