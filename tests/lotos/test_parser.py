"""Parser tests: every Table 1 production, precedence, and errors (E1)."""

import pytest

from repro.errors import ParseError
from repro.lotos.events import (
    InternalAction,
    ReceiveAction,
    SendAction,
    ServicePrimitive,
    SyncMessage,
)
from repro.lotos.parser import parse, parse_behaviour
from repro.lotos.syntax import (
    ActionPrefix,
    Choice,
    Disable,
    Enable,
    Exit,
    Hide,
    Parallel,
    ProcessRef,
    Stop,
)


class TestEvents:
    def test_service_primitive(self):
        node = parse_behaviour("read1; exit")
        assert node == ActionPrefix(ServicePrimitive("read", 1), Exit())

    def test_multidigit_place(self):
        node = parse_behaviour("a12; exit")
        assert node.event == ServicePrimitive("a", 12)

    def test_internal_action(self):
        node = parse_behaviour("i; a1; exit")
        assert node.event == InternalAction()

    def test_send_interaction(self):
        node = parse_behaviour("s2(8); exit")
        assert node.event == SendAction(dest=2, message=SyncMessage(8))

    def test_receive_interaction(self):
        node = parse_behaviour("r1(2); exit")
        assert node.event == ReceiveAction(src=1, message=SyncMessage(2))

    def test_message_with_symbolic_occurrence(self):
        node = parse_behaviour("s2(s,8); exit")
        assert node.event.message == SyncMessage(8, occurrence=None)

    def test_message_with_concrete_occurrence(self):
        node = parse_behaviour("s2(<3.5>,8); exit")
        assert node.event.message == SyncMessage(8, occurrence=(3, 5))

    def test_message_with_root_occurrence(self):
        node = parse_behaviour("s2(<>,8); exit")
        assert node.event.message == SyncMessage(8, occurrence=())

    def test_message_with_kind(self):
        node = parse_behaviour("s2(exec,8); exit")
        assert node.event.message == SyncMessage(8, kind="exec")

    def test_s_without_parens_is_a_primitive(self):
        node = parse_behaviour("s2; exit")
        assert node.event == ServicePrimitive("s", 2)

    def test_event_without_place_rejected(self):
        with pytest.raises(ParseError, match="place"):
            parse_behaviour("read; exit")


class TestSequences:
    def test_event_exit(self):
        node = parse_behaviour("a1; exit")
        assert isinstance(node.continuation, Exit)

    def test_event_stop(self):
        node = parse_behaviour("a1; stop")
        assert isinstance(node.continuation, Stop)

    def test_chain(self):
        node = parse_behaviour("a1; b2; c3; exit")
        assert node.event == ServicePrimitive("a", 1)
        assert node.continuation.event == ServicePrimitive("b", 2)
        assert node.continuation.continuation.event == ServicePrimitive("c", 3)

    def test_process_reference(self):
        node = parse_behaviour("a1; B")
        assert node.continuation == ProcessRef("B")

    def test_parenthesized_expression(self):
        node = parse_behaviour("a1; (b2; exit [] c2; exit)")
        assert isinstance(node.continuation, Choice)


class TestOperatorsAndPrecedence:
    def test_choice(self):
        node = parse_behaviour("a1; exit [] b1; exit")
        assert isinstance(node, Choice)

    def test_choice_is_right_associative(self):
        node = parse_behaviour("a1; exit [] b1; exit [] c1; exit")
        assert isinstance(node, Choice)
        assert isinstance(node.right, Choice)
        assert isinstance(node.left, ActionPrefix)

    def test_prefix_binds_tighter_than_choice(self):
        node = parse_behaviour("a1; b1; exit [] c1; exit")
        assert isinstance(node, Choice)
        assert node.left.event == ServicePrimitive("a", 1)

    def test_interleave(self):
        node = parse_behaviour("a1; exit ||| b2; exit")
        assert isinstance(node, Parallel)
        assert node.is_interleaving()

    def test_full_sync(self):
        node = parse_behaviour("a1; exit || a1; exit")
        assert isinstance(node, Parallel)
        assert node.sync_all

    def test_general_parallel(self):
        node = parse_behaviour("a1; m2; exit |[m2]| m2; c3; exit")
        assert node.sync == frozenset({ServicePrimitive("m", 2)})

    def test_general_parallel_multiple_gates(self):
        node = parse_behaviour("a1; exit |[a1, b2]| b2; exit")
        assert node.sync == frozenset(
            {ServicePrimitive("a", 1), ServicePrimitive("b", 2)}
        )

    def test_empty_sync_subset(self):
        node = parse_behaviour("a1; exit |[]| b2; exit")
        assert node.is_interleaving()

    def test_choice_binds_tighter_than_parallel(self):
        node = parse_behaviour("a1; exit [] b1; exit ||| c2; exit")
        assert isinstance(node, Parallel)
        assert isinstance(node.left, Choice)

    def test_parallel_binds_tighter_than_disable(self):
        node = parse_behaviour("a1; exit ||| b2; exit [> c1; exit")
        assert isinstance(node, Disable)
        assert isinstance(node.left, Parallel)

    def test_disable_binds_tighter_than_enable(self):
        node = parse_behaviour("a1; exit [> b1; exit >> c1; exit")
        assert isinstance(node, Enable)
        assert isinstance(node.left, Disable)

    def test_enable_is_right_associative(self):
        node = parse_behaviour("a1; exit >> b1; exit >> c1; exit")
        assert isinstance(node, Enable)
        assert isinstance(node.right, Enable)

    def test_disable_right_nests(self):
        node = parse_behaviour("a1; exit [> b1; exit [> c1; exit")
        assert isinstance(node, Disable)
        assert isinstance(node.right, Disable)

    def test_paper_example3_body_shape(self):
        # (read1; push2; S >> pop2; write3; exit): the >> splits the
        # prefix chains, rule 19 parentheses notwithstanding.
        node = parse_behaviour("read1; push2; S >> pop2; write3; exit")
        assert isinstance(node, Enable)
        assert node.left.event == ServicePrimitive("read", 1)
        assert node.left.continuation.continuation == ProcessRef("S")


class TestHideExtension:
    def test_hide_events(self):
        node = parse_behaviour("hide a1, b2 in a1; b2; exit")
        assert isinstance(node, Hide)
        assert node.gates == frozenset(
            {ServicePrimitive("a", 1), ServicePrimitive("b", 2)}
        )

    def test_hide_messages(self):
        node = parse_behaviour("hide messages in s2(1); exit")
        assert node.hide_messages


class TestSpecifications:
    def test_minimal_spec(self):
        spec = parse("SPEC a1; exit ENDSPEC")
        assert spec.definitions == ()
        assert spec.behaviour == ActionPrefix(ServicePrimitive("a", 1), Exit())

    def test_spec_with_where(self):
        spec = parse("SPEC A WHERE PROC A = a1; exit END ENDSPEC")
        assert len(spec.definitions) == 1
        assert spec.definitions[0].name == "A"

    def test_multiple_process_definitions(self):
        spec = parse(
            "SPEC A WHERE PROC A = a1; B END PROC B = b2; exit END ENDSPEC"
        )
        assert [d.name for d in spec.definitions] == ["A", "B"]

    def test_nested_where(self):
        spec = parse(
            "SPEC A WHERE PROC A = B WHERE PROC B = b2; exit END END ENDSPEC"
        )
        inner = spec.definitions[0].body.definitions
        assert inner[0].name == "B"

    def test_example1_from_paper(self):
        spec = parse(
            "SPEC (a1; b2; B) >> (d3; exit) WHERE PROC B = c1; exit END ENDSPEC"
        )
        assert isinstance(spec.behaviour, Enable)

    def test_example3_from_paper(self):
        spec = parse(
            """SPEC S [> interrupt3; exit WHERE
                 PROC S = (read1; push2; S >> pop2; write3; exit)
                       [] (eof1; make3; exit) END
               ENDSPEC"""
        )
        assert isinstance(spec.behaviour, Disable)
        body = spec.definitions[0].body.behaviour
        assert isinstance(body, Choice)


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "SPEC ENDSPEC",
            "SPEC a1; exit",  # missing ENDSPEC
            "a1 exit",  # missing semicolon
            "SPEC a1; exit WHERE ENDSPEC",  # WHERE without PROC
            "SPEC A WHERE PROC a = b1; exit END ENDSPEC",  # lowercase proc id
            "a1; exit [] ",
            "(a1; exit",
            "a1; exit |[ b2 c3 ]| exit",
        ],
    )
    def test_rejects(self, text):
        with pytest.raises(ParseError):
            if text.startswith("SPEC"):
                parse(text)
            else:
                parse_behaviour(text)

    def test_uppercase_event_rejected(self):
        with pytest.raises(ParseError, match="lower-case"):
            parse_behaviour("a1; exit |[B2]| exit")

    def test_message_without_node_rejected(self):
        with pytest.raises(ParseError):
            parse_behaviour("s2(s); exit")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_behaviour("a1; exit b2")
