"""Behavioural-equivalence tests: the observation congruence laws of the
paper's Annex A, checked semantically.

Each law ``B1 = B2`` from Annex A is validated by building both LTSs and
asking for observation congruence (the laws are stated as congruences).
These tests double as a regression net for the SOS rules: virtually any
semantics bug breaks at least one law.
"""


from repro.lotos.equivalence import (
    minimize_weak,
    observationally_congruent,
    strong_bisimilar,
    weak_bisimilar,
)
from repro.lotos.lts import build_lts
from repro.lotos.parser import parse_behaviour
from repro.lotos.semantics import Semantics

SEM = Semantics()


def lts(text):
    return build_lts(parse_behaviour(text), SEM)


def congruent(text1, text2):
    return observationally_congruent(lts(text1), lts(text2))


def weakly(text1, text2):
    return weak_bisimilar(lts(text1), lts(text2))


def strongly(text1, text2):
    return strong_bisimilar(lts(text1), lts(text2))


class TestChoiceLaws:
    def test_c1_commutativity(self):
        assert congruent("a1; exit [] b2; exit", "b2; exit [] a1; exit")

    def test_c2_associativity(self):
        assert congruent(
            "a1; exit [] (b2; exit [] c3; exit)",
            "(a1; exit [] b2; exit) [] c3; exit",
        )

    def test_c3_idempotence(self):
        assert congruent("a1; exit [] a1; exit", "a1; exit")


class TestParallelLaws:
    def test_p1_commutativity(self):
        assert congruent("a1; exit ||| b2; exit", "b2; exit ||| a1; exit")
        assert congruent(
            "a1; exit |[a1]| a1; b2; exit", "a1; b2; exit |[a1]| a1; exit"
        )

    def test_p2_associativity(self):
        assert congruent(
            "a1; exit ||| (b2; exit ||| c3; exit)",
            "(a1; exit ||| b2; exit) ||| c3; exit",
        )

    def test_p4_subset_equivalence(self):
        # |[list]| equals || when the list covers both alphabets.
        assert congruent(
            "a1; exit |[a1]| a1; exit", "a1; exit || a1; exit"
        )

    def test_p5_empty_subset_is_interleaving(self):
        assert congruent("a1; exit |[]| b2; exit", "a1; exit ||| b2; exit")

    def test_exit_is_interleaving_unit(self):
        assert congruent("a1; exit ||| exit", "a1; exit")


class TestHidingLaws:
    def test_h4_disjoint_hide_is_identity(self):
        assert congruent("hide c3 in a1; exit", "a1; exit")

    def test_h5_hiding_a_prefix(self):
        assert congruent("hide a1 in a1; b2; exit", "i; b2; exit")

    def test_h6_hide_distributes_over_choice(self):
        assert weakly(
            "hide c3 in (a1; c3; exit [] b2; exit)",
            "(hide c3 in a1; c3; exit) [] (hide c3 in b2; exit)",
        )

    def test_h8_hide_distributes_over_enable(self):
        assert congruent(
            "hide c3 in (a1; exit >> c3; b2; exit)",
            "(hide c3 in a1; exit) >> (hide c3 in c3; b2; exit)",
        )


class TestEnableLaws:
    def test_e1_exit_enable(self):
        assert congruent("exit >> b2; exit", "i; b2; exit")

    def test_e2_associativity(self):
        assert congruent(
            "(a1; exit >> b2; exit) >> c3; exit",
            "a1; exit >> (b2; exit >> c3; exit)",
        )


class TestDisableLaws:
    def test_d1_associativity(self):
        assert congruent(
            "a1; exit [> (b2; exit [> c3; exit)",
            "(a1; exit [> b2; exit) [> c3; exit",
        )

    def test_d2_absorption(self):
        assert congruent(
            "(a1; exit [> b2; exit) [] b2; exit", "a1; exit [> b2; exit"
        )

    def test_d3_exit_disable(self):
        assert congruent("exit [> b2; exit", "exit [] b2; exit")


class TestInternalActionLaws:
    def test_i1_prefix_absorbs_internal(self):
        assert congruent("a1; i; b2; exit", "a1; b2; exit")

    def test_i2_tau_choice(self):
        assert congruent("b2; exit [] i; b2; exit", "i; b2; exit")

    def test_i3(self):
        assert congruent(
            "a1; (b2; exit [] i; c3; exit) [] a1; c3; exit",
            "a1; (b2; exit [] i; c3; exit)",
        )

    def test_tau_prefix_not_congruent_to_bare(self):
        # i;B ~weak~ B but NOT congruent (the rooted condition).
        assert weakly("i; a1; exit", "a1; exit")
        assert not congruent("i; a1; exit", "a1; exit")


class TestEquivalenceHierarchy:
    def test_strong_implies_weak(self):
        assert strongly("a1; exit [] a1; exit", "a1; exit")
        assert weakly("a1; exit [] a1; exit", "a1; exit")

    def test_weak_does_not_imply_strong(self):
        assert weakly("a1; i; b2; exit", "a1; b2; exit")
        assert not strongly("a1; i; b2; exit", "a1; b2; exit")

    def test_inequivalent_behaviours(self):
        assert not weakly("a1; exit", "b2; exit")
        assert not weakly("a1; b2; exit", "a1; exit")

    def test_choice_vs_internal_choice(self):
        # a[]b differs from i;a [] i;b even weakly (refusal after tau).
        assert not weakly(
            "a1; exit [] b2; exit", "i; a1; exit [] i; b2; exit"
        )


class TestMinimization:
    def test_minimize_collapses_tau_chain(self):
        built = lts("i; i; i; a1; exit")
        classes, partition = minimize_weak(built)
        # i;i;i;a1, i;i;a1, i;a1, a1 collapse into one class.
        assert classes == 3  # {pre-a1 states}, {exit}, {stop}

    def test_minimize_identity_on_minimal(self):
        built = lts("a1; b2; exit")
        classes, _ = minimize_weak(built)
        assert classes == built.num_states
