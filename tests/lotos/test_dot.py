"""DOT-export tests (Figure 4 as a drawable artifact)."""

from repro.core.generator import derive_protocol
from repro.lotos.dot import lts_to_dot, syntax_tree_to_dot
from repro.lotos.lts import build_lts
from repro.lotos.parser import parse, parse_behaviour
from repro.lotos.semantics import Semantics


class TestSyntaxTreeDot:
    def test_plain_tree(self):
        spec = parse("SPEC a1; b2; exit ENDSPEC")
        dot = syntax_tree_to_dot(spec)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert "a1 ;" in dot and "b2 ;" in dot and "exit" in dot

    def test_attributed_tree_reproduces_fig4_data(self):
        from repro import workloads

        result = derive_protocol(workloads.EXAMPLE3_FILE_TRANSFER)
        dot = syntax_tree_to_dot(result.prepared, result.attrs)
        # the root disable with its Fig. 4 attributes:
        assert "SP={1,3}" in dot
        assert "AP={1,2,3}" in dot
        assert "[>" in dot
        assert "PROC S" in dot

    def test_operators_rendered(self):
        spec = parse(
            "SPEC (a1; exit ||| b2; exit) >> (m3; exit |[m3]| m3; exit) ENDSPEC"
        )
        dot = syntax_tree_to_dot(spec)
        assert "|||" in dot and ">>" in dot and "|[m3]|" in dot

    def test_quotes_escaped(self):
        spec = parse("SPEC a1; exit ENDSPEC")
        dot = syntax_tree_to_dot(spec)
        assert '\\"' not in dot  # nothing to escape here, but no crash

    def test_every_edge_references_defined_nodes(self):
        spec = parse("SPEC A WHERE PROC A = a1; A [] b2; exit END ENDSPEC")
        dot = syntax_tree_to_dot(spec)
        defined = set()
        referenced = set()
        for line in dot.splitlines():
            line = line.strip()
            if "->" in line:
                source, _, rest = line.partition("->")
                referenced.add(source.strip())
                referenced.add(rest.split("[")[0].strip().rstrip(";"))
            elif line.endswith("];") and "[label=" in line:
                defined.add(line.split("[")[0].strip())
        assert referenced <= defined


class TestLtsDot:
    def test_small_lts(self):
        lts = build_lts(parse_behaviour("a1; b2; exit"), Semantics())
        dot = lts_to_dot(lts)
        assert "doublecircle" in dot
        assert 's0 -> s1 [label="a1"]' in dot
        assert "delta" in dot

    def test_internal_moves_dashed(self):
        lts = build_lts(parse_behaviour("i; a1; exit"), Semantics())
        dot = lts_to_dot(lts)
        assert "style=dashed" in dot

    def test_truncation_marker(self):
        spec = parse("SPEC A WHERE PROC A = a1; A END ENDSPEC")
        semantics, root = Semantics.of_specification(spec, bind_occurrences=True)
        lts = build_lts(root, semantics, max_states=5, on_limit="truncate")
        dot = lts_to_dot(lts)
        assert "style=dotted" in dot

    def test_state_cap(self):
        spec = parse("SPEC A WHERE PROC A = a1; A END ENDSPEC")
        semantics, root = Semantics.of_specification(spec, bind_occurrences=True)
        lts = build_lts(root, semantics, max_states=50, on_limit="truncate")
        dot = lts_to_dot(lts, max_states=10)
        assert "more states" in dot
