"""Lossy-medium and ARQ-sublayer unit tests (paper Section 6 extension)."""


from repro.lotos.events import SyncMessage
from repro.medium.lossy import ArqChannel, ArqMedium, LossyMedium

M1 = SyncMessage(1)
M2 = SyncMessage(2)


class TestLossyMedium:
    def test_behaves_like_fifo_when_no_loss_taken(self):
        medium = LossyMedium().send(1, 2, M1).send(1, 2, M2)
        assert medium.receivable(1, 2, M1)
        assert not medium.receivable(1, 2, M2)
        medium = medium.receive(1, 2, M1)
        assert medium.receivable(1, 2, M2)

    def test_loss_transition_per_message(self):
        medium = LossyMedium(loss_budget=5).send(1, 2, M1).send(3, 2, M2)
        drops = medium.internal_transitions()
        assert len(drops) == 2
        for _desc, new in drops:
            assert new.in_flight == 1
            assert new.loss_budget == 4

    def test_budget_exhaustion_stops_losses(self):
        medium = LossyMedium(loss_budget=1).send(1, 2, M1).send(1, 2, M2)
        (_, after_one), *_ = medium.internal_transitions()
        assert after_one.internal_transitions() == []

    def test_zero_budget_is_reliable(self):
        medium = LossyMedium(loss_budget=0).send(1, 2, M1)
        assert medium.internal_transitions() == []


class TestArqChannelMachine:
    def drive(self, medium, steps=50, pick=0):
        """Follow internal transitions (deterministically) to quiescence."""
        for _ in range(steps):
            transitions = medium.internal_transitions()
            transitions = [t for t in transitions if not t[0].startswith("lose")]
            if not transitions:
                return medium
            medium = transitions[pick % len(transitions)][1]
        return medium

    def test_delivery_without_loss(self):
        medium = ArqMedium(loss_budget=0).send(1, 2, M1)
        assert not medium.receivable(1, 2, M1)  # not delivered yet
        medium = self.drive(medium)
        assert medium.receivable(1, 2, M1)
        medium = medium.receive(1, 2, M1)
        assert medium.is_empty

    def test_fifo_order_preserved_across_arq(self):
        medium = ArqMedium(loss_budget=0).send(1, 2, M1).send(1, 2, M2)
        medium = self.drive(medium)
        assert medium.receivable(1, 2, M1)
        assert not medium.receivable(1, 2, M2)
        medium = medium.receive(1, 2, M1)
        medium = self.drive(medium)
        assert medium.receivable(1, 2, M2)

    def test_data_loss_then_retransmission(self):
        medium = ArqMedium(loss_budget=1).send(1, 2, M1)
        # transmit
        (desc, medium), = [
            t for t in medium.internal_transitions() if t[0].startswith("transmit")
        ]
        # lose the datagram
        (desc, medium), = [
            t for t in medium.internal_transitions() if t[0].startswith("lose-data")
        ]
        # retransmit and deliver
        medium = self.drive(medium)
        assert medium.receivable(1, 2, M1)

    def test_ack_loss_and_duplicate_suppression(self):
        medium = ArqMedium(loss_budget=1).send(1, 2, M1)
        (_, medium), = [
            t for t in medium.internal_transitions() if t[0].startswith("transmit")
        ]
        (_, medium), = [
            t for t in medium.internal_transitions() if t[0].startswith("deliver-data")
        ]
        # message delivered once; now lose the ack
        (_, medium), = [
            t for t in medium.internal_transitions() if t[0].startswith("lose-ack")
        ]
        # sender retransmits; receiver must NOT deliver a duplicate
        medium = self.drive(medium)
        assert medium.receivable(1, 2, M1)
        medium = medium.receive(1, 2, M1)
        medium = self.drive(medium)
        assert not medium.receivable(1, 2, M1)
        assert medium.is_empty

    def test_channels_independent(self):
        medium = ArqMedium(loss_budget=0).send(1, 2, M1).send(2, 1, M2)
        medium = self.drive(medium)
        assert medium.receivable(1, 2, M1)
        assert medium.receivable(2, 1, M2)

    def test_selective_discipline_on_delivered_buffer(self):
        medium = ArqMedium(loss_budget=0, discipline="selective")
        medium = medium.send(1, 2, M1).send(1, 2, M2)
        medium = self.drive(medium)
        assert medium.receivable(1, 2, M2)

    def test_idle_channel_state_is_canonical(self):
        fresh = ArqMedium(loss_budget=0)
        used = fresh.send(1, 2, M1)
        used = self.drive(used).receive(1, 2, M1)
        used = self.drive(used)
        assert used == fresh

    def test_channel_idle_flag(self):
        assert ArqChannel().idle
        assert not ArqChannel(outbox=(M1,)).idle
