"""Property-based invariants of the media (perfect, lossy, ARQ)."""

import random

from hypothesis import given, settings, strategies as st

from repro.lotos.events import SyncMessage
from repro.medium.lossy import ArqMedium, LossyMedium
from repro.medium.state import make_medium

messages = st.builds(
    SyncMessage,
    node=st.integers(min_value=0, max_value=5),
    occurrence=st.sampled_from([None, (), (1,), (2, 3)]),
)

operations = st.lists(
    st.tuples(
        st.sampled_from(["send", "receive"]),
        st.integers(min_value=1, max_value=3),  # src
        st.integers(min_value=1, max_value=3),  # dest
        messages,
    ),
    max_size=30,
)


class TestPerfectMediumProperties:
    @given(operations)
    @settings(max_examples=120, deadline=None)
    def test_fifo_preserves_per_channel_order(self, ops):
        medium = make_medium(discipline="fifo")
        sent = {}
        received = {}
        for kind, src, dest, message in ops:
            if src == dest:
                continue
            if kind == "send":
                medium = medium.send(src, dest, message)
                sent.setdefault((src, dest), []).append(message)
            else:
                queue = medium.queue(src, dest)
                if queue and medium.receivable(src, dest, queue[0]):
                    medium = medium.receive(src, dest, queue[0])
                    received.setdefault((src, dest), []).append(queue[0])
        for key, messages_received in received.items():
            # every received sequence is a prefix of the sent sequence
            assert sent[key][: len(messages_received)] == messages_received

    @given(operations)
    @settings(max_examples=120, deadline=None)
    def test_conservation(self, ops):
        """in_flight == sends - receives, always >= 0."""
        medium = make_medium(discipline="selective")
        balance = 0
        for kind, src, dest, message in ops:
            if kind == "send":
                medium = medium.send(src, dest, message)
                balance += 1
            elif medium.receivable(src, dest, message):
                medium = medium.receive(src, dest, message)
                balance -= 1
        assert medium.in_flight == balance >= 0

    @given(operations)
    @settings(max_examples=60, deadline=None)
    def test_snapshot_equality_is_content_equality(self, ops):
        """Replaying the same operations yields equal snapshots."""
        first = make_medium()
        second = make_medium()
        for kind, src, dest, message in ops:
            if kind != "send":
                continue
            first = first.send(src, dest, message)
            second = second.send(src, dest, message)
        assert first == second and hash(first) == hash(second)


class TestArqProperties:
    @given(
        st.lists(messages, min_size=1, max_size=6),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_reliable_in_order_delivery_under_loss(self, payload, budget, seed):
        """Whatever the loss pattern, ARQ delivers everything in order."""
        medium = ArqMedium(loss_budget=budget)
        for message in payload:
            medium = medium.send(1, 2, message)
        rng = random.Random(seed)
        received = []
        for _ in range(600):
            # consume whatever is deliverable first
            while received != payload and medium.receivable(1, 2, payload[len(received)]):
                medium = medium.receive(1, 2, payload[len(received)])
                received.append(payload[len(received)])
            transitions = medium.internal_transitions()
            if not transitions:
                break
            _desc, medium = transitions[rng.randrange(len(transitions))]
        # drain any remainder
        while len(received) < len(payload) and medium.receivable(
            1, 2, payload[len(received)]
        ):
            medium = medium.receive(1, 2, payload[len(received)])
            received.append(payload[len(received)])
            # progress the machinery deterministically between receives
            for _ in range(40):
                transitions = [
                    t
                    for t in medium.internal_transitions()
                    if not t[0].startswith("lose")
                ]
                if not transitions:
                    break
                medium = transitions[0][1]
        assert received == payload
        assert medium.is_empty or medium.internal_transitions()

    @given(st.lists(messages, min_size=1, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_no_duplication_without_loss(self, payload):
        medium = ArqMedium(loss_budget=0)
        for message in payload:
            medium = medium.send(1, 2, message)
        delivered = []
        for _ in range(200):
            transitions = medium.internal_transitions()
            if not transitions:
                break
            medium = transitions[0][1]
            while medium.receivable(1, 2, medium._channel((1, 2)).delivered[0]) if medium._channel((1, 2)).delivered else False:
                head = medium._channel((1, 2)).delivered[0]
                medium = medium.receive(1, 2, head)
                delivered.append(head)
        assert delivered == payload
        assert medium.is_empty


class TestLossyProperties:
    @given(st.lists(messages, min_size=1, max_size=8), st.integers(0, 5))
    @settings(max_examples=80, deadline=None)
    def test_loss_only_removes(self, payload, budget):
        """A lossy medium never reorders or invents messages."""
        medium = LossyMedium(loss_budget=budget)
        for message in payload:
            medium = medium.send(1, 2, message)
        rng = random.Random(42)
        # interleave drops and receives arbitrarily
        received = []
        for _ in range(60):
            drops = medium.internal_transitions()
            queue = medium.queue(1, 2)
            if drops and rng.random() < 0.4:
                _desc, medium = drops[rng.randrange(len(drops))]
            elif queue:
                medium = medium.receive(1, 2, queue[0])
                received.append(queue[0])
            else:
                break
        # received is a subsequence of payload, in order
        iterator = iter(payload)
        assert all(any(item == sent for sent in iterator) for item in received)
