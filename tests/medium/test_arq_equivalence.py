"""Observational equivalence of the ARQ sublayer (hypothesis).

The paper's Section 6 future-work sentence, as a property: derived
entities must not be able to tell the recovered medium from the
perfect one.  For every send pattern, loss budget and adversarial
interleaving of the ARQ machinery (transmissions, deliveries, *and*
losses), a run over :class:`ArqMedium` observes — at the entity
interface: ``receivable``/``receive`` — exactly the per-channel
message sequence a run over the reliable medium observes, and drains
to empty.  The raw :class:`LossyMedium` is the negative control: a
single unrecovered drop is observable.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.lotos.events import SyncMessage
from repro.medium.lossy import ArqMedium, LossyMedium
from repro.medium.state import make_medium

messages = st.builds(
    SyncMessage,
    node=st.integers(min_value=0, max_value=4),
    occurrence=st.sampled_from([None, (), (1,), (2, 3)]),
)

channels = st.sampled_from([(1, 2), (2, 1), (1, 3)])

send_patterns = st.lists(
    st.tuples(channels, messages), min_size=1, max_size=8
)


def reliable_observation(sends):
    """What a run over the perfect FIFO medium observes, per channel.

    Over :func:`make_medium` every message is immediately in flight
    and consumed in send order — the reference any recovered medium
    must reproduce.  Computed by actually driving the perfect medium,
    not assumed.
    """
    medium = make_medium(discipline="fifo")
    pending = {}
    for (src, dest), message in sends:
        medium = medium.send(src, dest, message)
        pending.setdefault((src, dest), []).append(message)
    observed = {}
    for key, queue in sorted(pending.items()):
        for message in queue:
            assert medium.receivable(*key, message)
            medium = medium.receive(*key, message)
            observed.setdefault(key, []).append(message)
    assert medium.is_empty
    return observed


def drive(medium, sends, rng, max_steps=900):
    """Adversarially schedule ``medium`` to quiescence, consuming
    greedily at the entity interface; returns (observed, medium)."""
    expected = {}
    for (src, dest), message in sends:
        medium = medium.send(src, dest, message)
        expected.setdefault((src, dest), []).append(message)
    cursors = {key: 0 for key in expected}
    observed = {}

    def consume(medium):
        progressed = True
        while progressed:
            progressed = False
            for key in sorted(cursors):
                queue = expected[key]
                if cursors[key] < len(queue) and medium.receivable(
                    *key, queue[cursors[key]]
                ):
                    medium = medium.receive(*key, queue[cursors[key]])
                    observed.setdefault(key, []).append(queue[cursors[key]])
                    cursors[key] += 1
                    progressed = True
        return medium

    for _ in range(max_steps):
        medium = consume(medium)
        transitions = medium.internal_transitions()
        if not transitions:
            break
        _desc, medium = transitions[rng.randrange(len(transitions))]
    return consume(medium), observed


class TestArqObservationalEquivalence:
    @given(
        send_patterns,
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=120, deadline=None)
    def test_arq_run_equals_reliable_run(self, sends, budget, seed):
        reference = reliable_observation(sends)
        medium, observed = drive(
            ArqMedium(loss_budget=budget), sends, random.Random(seed)
        )
        assert observed == reference
        assert medium.is_empty

    @given(send_patterns, st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_lossless_lossy_medium_is_reliable(self, sends, seed):
        """Budget 0 degenerates LossyMedium to the perfect FIFO."""
        reference = reliable_observation(sends)
        medium, observed = drive(
            LossyMedium(loss_budget=0), sends, random.Random(seed)
        )
        assert observed == reference
        assert medium.is_empty


class TestLossyNegativeControl:
    def test_an_unrecovered_drop_is_observable(self):
        """Without the ARQ sublayer the fault leaks into the service:
        the head-of-queue drop stalls FIFO consumption for good."""
        first, second = SyncMessage(1), SyncMessage(2)
        sends = [((1, 2), first), ((1, 2), second)]
        reference = reliable_observation(sends)
        medium = LossyMedium(loss_budget=1)
        for (src, dest), message in sends:
            medium = medium.send(src, dest, message)
        drop_head = next(
            new
            for desc, new in medium.internal_transitions()
            if str(first) in desc
        )
        assert not drop_head.receivable(1, 2, first)
        observed = []
        while drop_head.receivable(1, 2, second):
            drop_head = drop_head.receive(1, 2, second)
            observed.append(second)
        assert {(1, 2): observed} != reference

    def test_arq_recovers_the_same_drop(self):
        """The same two-message exchange over ARQ, losing the first
        datagram on the wire, still observes the reliable sequence."""
        first, second = SyncMessage(1), SyncMessage(2)
        sends = [((1, 2), first), ((1, 2), second)]
        medium = ArqMedium(loss_budget=1)
        for (src, dest), message in sends:
            medium = medium.send(src, dest, message)
        # transmit the first datagram, then lose it
        (_, medium), = [
            t for t in medium.internal_transitions()
            if t[0].startswith("transmit")
        ]
        (_, medium), = [
            t for t in medium.internal_transitions()
            if t[0].startswith("lose-data")
        ]
        medium, observed = drive(medium, [], random.Random(0))
        # nothing new was sent in drive(); consume via the original order
        received = []
        for message in (first, second):
            for _ in range(200):
                if medium.receivable(1, 2, message):
                    break
                transitions = [
                    t for t in medium.internal_transitions()
                    if not t[0].startswith("lose")
                ]
                assert transitions
                medium = transitions[0][1]
            medium = medium.receive(1, 2, message)
            received.append(message)
        assert received == [first, second]
