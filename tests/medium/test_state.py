"""FIFO medium tests: queueing disciplines, capacity, immutability."""

import pytest

from repro.lotos.events import SyncMessage
from repro.medium.state import MediumState, make_medium

M1 = SyncMessage(1)
M2 = SyncMessage(2)
M3 = SyncMessage(3, (1,))


class TestBasics:
    def test_fresh_medium_is_empty(self):
        medium = make_medium()
        assert medium.is_empty
        assert medium.in_flight == 0

    def test_send_enqueues(self):
        medium = make_medium().send(1, 2, M1)
        assert not medium.is_empty
        assert medium.queue(1, 2) == (M1,)
        assert medium.in_flight == 1

    def test_immutability(self):
        original = make_medium()
        original.send(1, 2, M1)
        assert original.is_empty

    def test_fifo_order_preserved(self):
        medium = make_medium().send(1, 2, M1).send(1, 2, M2)
        assert medium.queue(1, 2) == (M1, M2)

    def test_channels_are_directional(self):
        medium = make_medium().send(1, 2, M1)
        assert medium.queue(2, 1) == ()

    def test_iter_messages(self):
        medium = make_medium().send(1, 2, M1).send(3, 1, M2)
        assert sorted(medium.iter_messages()) == sorted(
            [(1, 2, M1), (3, 1, M2)]
        )

    def test_hashable_and_canonical(self):
        a = make_medium().send(1, 2, M1).send(3, 1, M2)
        b = make_medium().send(3, 1, M2).send(1, 2, M1)
        assert a == b
        assert hash(a) == hash(b)

    def test_unknown_discipline_rejected(self):
        with pytest.raises(ValueError):
            MediumState(discipline="chaotic")


class TestFifoDiscipline:
    def test_head_only_receivable(self):
        medium = make_medium(discipline="fifo").send(1, 2, M1).send(1, 2, M2)
        assert medium.receivable(1, 2, M1)
        assert not medium.receivable(1, 2, M2)

    def test_receive_pops_head(self):
        medium = make_medium(discipline="fifo").send(1, 2, M1).send(1, 2, M2)
        medium = medium.receive(1, 2, M1)
        assert medium.queue(1, 2) == (M2,)

    def test_receive_non_head_raises(self):
        medium = make_medium(discipline="fifo").send(1, 2, M1).send(1, 2, M2)
        with pytest.raises(ValueError):
            medium.receive(1, 2, M2)

    def test_empty_channel_not_receivable(self):
        assert not make_medium().receivable(1, 2, M1)


class TestSelectiveDiscipline:
    def test_any_position_receivable(self):
        medium = (
            make_medium(discipline="selective").send(1, 2, M1).send(1, 2, M2)
        )
        assert medium.receivable(1, 2, M1)
        assert medium.receivable(1, 2, M2)

    def test_receive_removes_first_match(self):
        medium = (
            make_medium(discipline="selective")
            .send(1, 2, M1)
            .send(1, 2, M2)
            .send(1, 2, M1)
        )
        medium = medium.receive(1, 2, M2)
        assert medium.queue(1, 2) == (M1, M1)

    def test_occurrence_distinguishes_messages(self):
        medium = make_medium(discipline="selective").send(1, 2, M3)
        assert not medium.receivable(1, 2, SyncMessage(3, (2,)))
        assert medium.receivable(1, 2, M3)

    def test_missing_message_raises(self):
        medium = make_medium(discipline="selective").send(1, 2, M1)
        with pytest.raises(ValueError):
            medium.receive(1, 2, M2)


class TestCapacity:
    def test_unbounded_by_default(self):
        medium = make_medium()
        for index in range(100):
            medium = medium.send(1, 2, SyncMessage(index))
        assert medium.in_flight == 100

    def test_capacity_one(self):
        medium = make_medium(capacity=1).send(1, 2, M1)
        assert not medium.can_send(1, 2)
        with pytest.raises(ValueError):
            medium.send(1, 2, M2)

    def test_capacity_is_per_channel(self):
        medium = make_medium(capacity=1).send(1, 2, M1)
        assert medium.can_send(1, 3)
        assert medium.can_send(2, 1)

    def test_capacity_frees_after_receive(self):
        medium = make_medium(capacity=1).send(1, 2, M1).receive(1, 2, M1)
        assert medium.can_send(1, 2)

    def test_empty_queues_removed_from_snapshot(self):
        medium = make_medium().send(1, 2, M1).receive(1, 2, M1)
        assert medium == make_medium()
