"""The acceptance bar: zero lost requests under every built-in plan.

Each plan boots a real in-process server with its fault schedule
active and fires a retrying closed-loop burst at it.  The verdict the
resilience layer has to earn, per plan: every request eventually
landed a 2xx, ``/healthz`` answered throughout, and the report
validates against ``repro.obs.chaos/v1``.
"""

import asyncio
import json

import pytest

from repro.chaos import BUILTIN_PLANS, ChaosError
from repro.chaos.runner import (
    default_retry,
    render_digest,
    resolve_plan,
    run_chaos,
)
from repro.cli import repro_main
from repro.obs.schema import validate_chaos


def run(plan_name, seed=0, **kwargs):
    plan = resolve_plan(plan_name, seed)
    defaults = dict(connections=3, requests=24, workers=2)
    defaults.update(kwargs)
    return asyncio.run(run_chaos(plan, **defaults))


class TestEveryBuiltinPlanLosesNothing:
    @pytest.mark.parametrize("plan_name", sorted(BUILTIN_PLANS))
    def test_zero_lost_requests_and_server_alive(self, plan_name):
        report = run(plan_name)
        assert validate_chaos(report) == []
        verdict = report["verdict"]
        assert verdict["ok"], render_digest(report)
        assert verdict["lost_requests"] == 0
        assert verdict["server_alive"]
        assert report["health"]["failures"] == 0
        assert report["health"]["probes"] > 0
        assert report["loadgen"]["exhausted"] == 0
        assert report["loadgen"]["ok"] == report["loadgen"]["requests"]

    @pytest.mark.parametrize("plan_name", sorted(BUILTIN_PLANS))
    def test_faults_actually_fired(self, plan_name):
        """A chaos run that injects nothing proves nothing.

        ``spawn-flaky``'s second fault (``pool.spawn``) only fires on a
        respawn, which thread pools never do — its ``worker.task``
        kills still must fire.
        """
        report = run(plan_name)
        assert report["injections"]["total"] > 0
        planned_points = {
            fault["point"] for fault in report["plan"]["faults"]
        }
        fired_points = set(report["injections"]["by_point"])
        assert fired_points <= planned_points
        assert fired_points  # at least one planned point fired


class TestFaultConsequences:
    def test_worker_kill_recovers_through_retries(self):
        report = run("worker-kill")
        assert report["injections"]["by_kind"]["worker_kill"] == 3
        assert report["loadgen"]["retries"] >= 3
        assert report["loadgen"]["recovered"] >= 1

    def test_latency_plan_needs_no_retries(self):
        """Slowdowns are not failures: requests succeed first try."""
        report = run("latency")
        assert report["injections"]["by_kind"]["latency"] > 0
        assert report["loadgen"]["retries"] == 0
        assert report["loadgen"]["recovered"] == 0

    def test_cache_corrupt_self_heals(self):
        report = run("cache-corrupt")
        assert report["injections"]["by_kind"]["corrupt_entry"] > 0
        # every corrupted read healed into a rederivation, not a failure
        assert report["loadgen"]["failed"] == 0

    def test_injections_show_up_in_server_metrics(self):
        report = run("worker-kill")
        names = {
            metric["name"]
            for metric in report["server"]["metrics"]["metrics"]
        }
        assert "chaos.injections" in names


class TestDeterminism:
    def test_single_connection_runs_replay_exactly(self):
        """Same plan, same seed, one connection: identical schedule
        and identical per-request outcome classification."""
        kwargs = dict(seed=3, connections=1, requests=18)
        first = run("worker-kill", **kwargs)
        second = run("worker-kill", **kwargs)
        assert first["injections"]["events"] == second["injections"]["events"]
        for key in ("ok", "shed", "failed", "recovered", "exhausted",
                    "retries", "statuses"):
            assert first["loadgen"][key] == second["loadgen"][key], key

    def test_reseeding_is_recorded_in_the_report(self):
        report = run("latency", seed=42, requests=9, connections=1)
        assert report["plan"]["seed"] == 42


class TestResolvePlan:
    def test_builtin_by_name(self):
        plan = resolve_plan("mayhem", seed=5)
        assert plan.name == "mayhem"
        assert plan.seed == 5

    def test_plan_document_from_file(self, tmp_path):
        document = BUILTIN_PLANS["latency"].to_dict()
        document["name"] = "my-latency"
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(document), encoding="utf-8")
        plan = resolve_plan(str(path), seed=9)
        assert plan.name == "my-latency"
        assert plan.seed == 9
        assert plan.faults == BUILTIN_PLANS["latency"].faults

    def test_unknown_name_raises(self):
        with pytest.raises(ChaosError, match="unknown fault plan"):
            resolve_plan("raining-frogs")

    def test_unreadable_file_raises(self, tmp_path):
        with pytest.raises(ChaosError, match="cannot read"):
            resolve_plan(str(tmp_path / "missing.json"))

    def test_non_json_file_raises(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("not json", encoding="utf-8")
        with pytest.raises(ChaosError, match="not JSON"):
            resolve_plan(str(path))

    def test_default_retry_is_seeded_from_the_plan(self):
        assert default_retry(resolve_plan("mayhem", seed=7)).seed == 7


class TestChaosCommand:
    def test_reports_and_exits_zero_on_a_clean_run(self, capsys):
        code = repro_main(
            ["chaos", "worker-kill", "--requests", "12",
             "--connections", "2", "--indent", "0"]
        )
        captured = capsys.readouterr()
        assert code == 0
        report = json.loads(captured.out)
        assert validate_chaos(report) == []
        assert report["verdict"]["ok"]
        assert "chaos: plan 'worker-kill'" in captured.err
        assert "verdict: OK" in captured.err

    def test_list_plans(self, capsys):
        assert repro_main(["chaos", "--list-plans"]) == 0
        out = capsys.readouterr().out
        for name in BUILTIN_PLANS:
            assert name in out

    def test_unknown_plan_exits_two(self, capsys):
        assert repro_main(["chaos", "raining-frogs"]) == 2
        assert "unknown fault plan" in capsys.readouterr().err

    def test_quiet_suppresses_the_digest(self, capsys):
        code = repro_main(
            ["chaos", "latency", "--requests", "6", "--connections", "1",
             "--indent", "0", "--quiet"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert captured.err == ""
