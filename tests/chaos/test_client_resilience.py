"""Client behaviour under a hostile server: Retry-After, stale
connections, retry journeys and the circuit breaker.

A tiny scripted HTTP server plays the hostile side: each accepted
connection serves the next canned response and then (optionally) drops
the socket without a ``Connection: close`` header — exactly the
condition that makes a kept-alive client connection go stale.
"""

import asyncio
import json
import threading

import pytest

from repro.serve.client import AsyncServeClient, ServeClient, ServeError
from repro.serve.resilience import (
    CircuitBreaker,
    CircuitOpenError,
    RetryPolicy,
)

OK_BODY = json.dumps({"ok": True, "result": {"fine": True}}).encode()
SHED_BODY = json.dumps({"ok": False, "status": 503}).encode()


class ScriptedServer:
    """Serves one canned response per request, in script order.

    Each script entry is ``(status, extra_headers, body, close_after)``.
    ``close_after=True`` hard-closes the connection after the response
    without announcing it — the stale keep-alive trap.
    """

    def __init__(self, script):
        self.script = list(script)
        self.served = 0
        self.connections = 0
        self._server = None

    async def __aenter__(self):
        self._server = await asyncio.start_server(
            self._handle, "127.0.0.1", 0
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def __aexit__(self, *exc_info):
        self._server.close()
        await self._server.wait_closed()

    async def _handle(self, reader, writer):
        self.connections += 1
        try:
            while self.script:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except (asyncio.IncompleteReadError, ConnectionError):
                    return
                length = 0
                for line in head.split(b"\r\n"):
                    if line.lower().startswith(b"content-length:"):
                        length = int(line.split(b":", 1)[1])
                if length:
                    await reader.readexactly(length)
                status, headers, body, close_after = self.script.pop(0)
                self.served += 1
                reason = {200: "OK", 503: "Service Unavailable",
                          500: "Internal Server Error"}.get(status, "Status")
                lines = [f"HTTP/1.1 {status} {reason}",
                         "Content-Type: application/json",
                         f"Content-Length: {len(body)}"]
                lines += [f"{k}: {v}" for k, v in headers.items()]
                writer.write(
                    ("\r\n".join(lines) + "\r\n\r\n").encode() + body
                )
                await writer.drain()
                if close_after:
                    return  # hard close, no Connection: close announced
        finally:
            writer.close()


def sync_request(port, script_server, **client_kwargs):
    with ServeClient("127.0.0.1", port, timeout=5.0, **client_kwargs) as client:
        status, envelope = client.request("POST", "/v1/derive", {"x": 1})
        return status, envelope, client.last_retry


class TestRetryAfterSurfacing:
    def test_async_client_attaches_parsed_retry_after(self):
        async def scenario():
            script = [(503, {"Retry-After": "7"}, SHED_BODY, False)]
            async with ScriptedServer(script) as server:
                client = AsyncServeClient("127.0.0.1", server.port, timeout=5.0)
                try:
                    status, envelope = await client.request(
                        "POST", "/v1/derive", {"x": 1}
                    )
                finally:
                    await client.close()
            return status, envelope

        status, envelope = asyncio.run(scenario())
        assert status == 503
        assert envelope["retry_after"] == 7.0

    def test_sync_client_attaches_parsed_retry_after(self):
        async def scenario():
            script = [(503, {"Retry-After": "0.5"}, SHED_BODY, False)]
            async with ScriptedServer(script) as server:
                return await asyncio.to_thread(sync_request, server.port, None)

        status, envelope, _ = asyncio.run(scenario())
        assert status == 503
        assert envelope["retry_after"] == 0.5

    def test_no_header_means_no_attachment(self):
        async def scenario():
            script = [(200, {}, OK_BODY, False)]
            async with ScriptedServer(script) as server:
                return await asyncio.to_thread(sync_request, server.port, None)

        status, envelope, _ = asyncio.run(scenario())
        assert status == 200
        assert "retry_after" not in envelope

    def test_serve_error_carries_retry_after_attribute(self):
        error = ServeError("shed", retry_after=2.0)
        assert error.retry_after == 2.0
        assert ServeError("plain").retry_after is None


class TestStaleConnectionReconnect:
    def test_async_reused_connection_eof_reconnects_once(self):
        """Request 2 rides a kept-alive socket the server already
        dropped; the client must reconnect and resend, not fail."""

        async def scenario():
            script = [
                (200, {}, OK_BODY, True),   # served, then hard close
                (200, {}, OK_BODY, False),  # served on the reconnect
            ]
            async with ScriptedServer(script) as server:
                client = AsyncServeClient("127.0.0.1", server.port, timeout=5.0)
                try:
                    first, _ = await client.request("POST", "/v1/derive", {})
                    await asyncio.sleep(0.05)  # let the close land
                    second, _ = await client.request("POST", "/v1/derive", {})
                finally:
                    await client.close()
                return first, second, server.connections

        first, second, connections = asyncio.run(scenario())
        assert first == 200
        assert second == 200
        assert connections == 2  # one reconnect, exactly

    def test_async_fresh_connection_failure_is_a_real_error(self):
        """A *fresh* connection dying is not retried as stale."""

        async def scenario():
            async with ScriptedServer([]) as server:  # drops immediately
                client = AsyncServeClient("127.0.0.1", server.port, timeout=5.0)
                try:
                    await client.request("POST", "/v1/derive", {})
                finally:
                    await client.close()

        with pytest.raises(ServeError):
            asyncio.run(scenario())


class TestRetryJourneys:
    def fast_policy(self, **kwargs):
        defaults = dict(max_attempts=3, base_delay=0.001, max_delay=0.005,
                        jitter=0.0)
        defaults.update(kwargs)
        return RetryPolicy(**defaults)

    def test_shed_then_recovered(self):
        async def scenario():
            script = [
                (503, {"Retry-After": "0"}, SHED_BODY, False),
                (200, {}, OK_BODY, False),
            ]
            async with ScriptedServer(script) as server:
                client = AsyncServeClient(
                    "127.0.0.1", server.port, timeout=5.0,
                    retry=self.fast_policy(),
                )
                try:
                    status, envelope = await client.request(
                        "POST", "/v1/derive", {}
                    )
                finally:
                    await client.close()
                return status, envelope, client.last_retry

        status, envelope, state = asyncio.run(scenario())
        assert status == 200
        assert envelope["ok"]
        assert state.attempts == 2
        assert state.retried and not state.exhausted
        assert state.statuses == [503, 200]

    def test_budget_exhaustion_returns_the_last_failure(self):
        async def scenario():
            script = [(503, {"Retry-After": "0"}, SHED_BODY, False)] * 3
            async with ScriptedServer(script) as server:
                client = AsyncServeClient(
                    "127.0.0.1", server.port, timeout=5.0,
                    retry=self.fast_policy(max_attempts=3),
                )
                try:
                    status, _ = await client.request("POST", "/v1/derive", {})
                finally:
                    await client.close()
                return status, client.last_retry, server.served

        status, state, served = asyncio.run(scenario())
        assert status == 503
        assert state.exhausted
        assert state.attempts == 3
        assert served == 3

    def test_sync_client_retries_too(self):
        async def scenario():
            script = [
                (500, {}, SHED_BODY, False),
                (200, {}, OK_BODY, False),
            ]
            async with ScriptedServer(script) as server:
                return await asyncio.to_thread(
                    sync_request, server.port, None,
                    retry=self.fast_policy(),
                )

        status, envelope, state = asyncio.run(scenario())
        assert status == 200
        assert state.attempts == 2
        assert state.statuses == [500, 200]

    def test_non_retryable_status_is_not_retried(self):
        async def scenario():
            script = [(200, {}, OK_BODY, False)]
            async with ScriptedServer(script) as server:
                client = AsyncServeClient(
                    "127.0.0.1", server.port, timeout=5.0,
                    retry=self.fast_policy(),
                )
                try:
                    status, _ = await client.request("POST", "/v1/derive", {})
                finally:
                    await client.close()
                return status, client.last_retry, server.served

        status, state, served = asyncio.run(scenario())
        assert status == 200
        assert state.attempts == 1 and served == 1


class TestBreakerWiring:
    def test_breaker_opens_and_refuses_without_touching_the_server(self):
        async def scenario():
            script = [(500, {}, SHED_BODY, False)] * 2
            async with ScriptedServer(script) as server:
                breaker = CircuitBreaker(failure_threshold=2)
                client = AsyncServeClient(
                    "127.0.0.1", server.port, timeout=5.0, breaker=breaker,
                )
                try:
                    await client.request("POST", "/v1/derive", {})
                    await client.request("POST", "/v1/derive", {})
                    assert breaker.state == "open"
                    with pytest.raises(CircuitOpenError):
                        await client.request("POST", "/v1/derive", {})
                finally:
                    await client.close()
                return server.served

        assert asyncio.run(scenario()) == 2  # third request never sent

    def test_success_keeps_the_breaker_closed(self):
        async def scenario():
            script = [(500, {}, SHED_BODY, False), (200, {}, OK_BODY, False)]
            async with ScriptedServer(script) as server:
                breaker = CircuitBreaker(failure_threshold=2)
                client = AsyncServeClient(
                    "127.0.0.1", server.port, timeout=5.0, breaker=breaker,
                )
                try:
                    await client.request("POST", "/v1/derive", {})
                    await client.request("POST", "/v1/derive", {})
                finally:
                    await client.close()
                return breaker.state

        assert asyncio.run(scenario()) == "closed"

    def test_sync_breaker_wiring(self):
        thread_result = {}

        async def scenario():
            script = [(500, {}, SHED_BODY, False)] * 2
            async with ScriptedServer(script) as server:
                breaker = CircuitBreaker(failure_threshold=2)

                def drive():
                    with ServeClient(
                        "127.0.0.1", server.port, timeout=5.0, breaker=breaker
                    ) as client:
                        client.request("POST", "/v1/derive", {})
                        client.request("POST", "/v1/derive", {})
                        try:
                            client.request("POST", "/v1/derive", {})
                        except CircuitOpenError:
                            thread_result["refused"] = True

                await asyncio.to_thread(drive)
                return server.served

        assert asyncio.run(scenario()) == 2
        assert thread_result.get("refused")
