"""Disabled chaos must do zero work and change no output, byte for byte.

Enforced the same way :mod:`tests.obs.test_noop` enforces zero clock
reads: :meth:`ChaosController.decide` is monkeypatched to raise, then
the whole pipeline — derivation, serve round trips, batch runs, cache
reads, worker tasks — runs with no controller installed.  Any
injection point that consults the controller without the
``get_chaos() is not None`` gate explodes immediately, and every
output is compared against a baseline computed before the patch.
"""

import asyncio

import pytest

from repro.batch.cache import EntityCache
from repro.batch.manifest import corpus_from_texts
from repro.batch.scheduler import run_batch
from repro.batch.workers import run_task
from repro.chaos import ChaosController, get_chaos
from repro.serve.client import AsyncServeClient
from tests.serve.conftest import EXAMPLE_SPEC, running_server

SPECS = {
    "pair": EXAMPLE_SPEC,
    "chain": "SPEC a1; b2; exit >> c3; exit ENDSPEC",
}


@pytest.fixture()
def chaos_forbidden(monkeypatch):
    """No controller installed, and deciding at all is an error."""
    assert get_chaos() is None

    def explode(self, point, **context):
        raise AssertionError(f"chaos consulted while disabled: {point}")

    monkeypatch.setattr(ChaosController, "decide", explode)


def test_worker_task_identical_with_chaos_disabled(chaos_forbidden):
    baseline = run_task("derive", EXAMPLE_SPEC, None)
    again = run_task("derive", EXAMPLE_SPEC, None, None)
    assert baseline["ok"] and again["ok"]
    # timing-free payload must match byte for byte
    assert again["result"]["entities"] == baseline["result"]["entities"]
    assert again["result"]["places"] == baseline["result"]["places"]


def test_serve_roundtrip_untouched_with_chaos_disabled(chaos_forbidden):
    async def scenario():
        async with running_server() as server:
            client = AsyncServeClient("127.0.0.1", server.port)
            try:
                status, envelope = await client.post_op("derive", EXAMPLE_SPEC)
                health, _ = await client.request("GET", "/healthz")
            finally:
                await client.close()
        return status, envelope, health

    status, envelope, health = asyncio.run(scenario())
    assert status == 200 and health == 200
    assert envelope["ok"]
    # the result must equal an un-served derivation of the same spec
    direct = run_task("derive", EXAMPLE_SPEC, None)
    assert envelope["result"]["entities"] == direct["result"]["entities"]
    assert "retry_after" not in envelope


def test_batch_outputs_identical_with_chaos_disabled(chaos_forbidden):
    corpus = corpus_from_texts(SPECS.items())
    baseline = run_batch(corpus, workers=0)
    serial = run_batch(corpus, workers=0)
    assert serial.ok and baseline.ok
    assert serial.entities == baseline.entities


def test_cache_reads_identical_with_chaos_disabled(chaos_forbidden, tmp_path):
    cache = EntityCache(tmp_path / "cache")
    key = cache.key(EXAMPLE_SPEC, None)
    assert cache.get(key) is None  # miss path, entry absent
    cache.put(key, "pair", None, {1: "entity one", 2: "entity two"})
    entry = cache.get(key)  # hit path, entry exists — the gated branch
    assert entry is not None
    assert entry["entities"] == {"1": "entity one", "2": "entity two"}
    assert cache.get(key) == entry


def test_client_without_policy_does_single_attempts(chaos_forbidden):
    """No retry policy: the pre-resilience single-attempt behaviour."""

    async def scenario():
        async with running_server() as server:
            client = AsyncServeClient("127.0.0.1", server.port)
            try:
                await client.post_op("derive", EXAMPLE_SPEC)
            finally:
                await client.close()
            assert client.retry is None
            assert client.breaker is None
            assert client.last_retry is None

    asyncio.run(scenario())
