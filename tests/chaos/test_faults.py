"""FaultSpec / FaultPlan / ChaosController unit tests.

The determinism contract under test: a controller's decisions are a
pure function of (plan, per-point hit sequence).  Same plan, same hit
sequence, same directives — every time.
"""

import pytest

from repro.chaos import (
    BUILTIN_PLANS,
    POINTS,
    ChaosController,
    ChaosError,
    FaultPlan,
    FaultSpec,
    get_chaos,
    get_plan,
    list_plans,
    set_chaos,
    use_chaos,
)


class TestFaultSpecValidation:
    def test_unknown_point_rejected(self):
        with pytest.raises(ChaosError, match="unknown injection point"):
            FaultSpec("worker.nap", "worker_kill")

    def test_kind_must_belong_to_point(self):
        with pytest.raises(ChaosError, match="does not belong"):
            FaultSpec("worker.task", "latency")

    def test_cadence_bounds(self):
        with pytest.raises(ChaosError, match="every"):
            FaultSpec("worker.task", "worker_kill", every=0)
        with pytest.raises(ChaosError, match="after"):
            FaultSpec("worker.task", "worker_kill", after=-1)
        with pytest.raises(ChaosError, match="max_injections"):
            FaultSpec("worker.task", "worker_kill", max_injections=0)

    def test_probability_bounds(self):
        with pytest.raises(ChaosError, match="probability"):
            FaultSpec("worker.task", "worker_kill", probability=0.0)
        with pytest.raises(ChaosError, match="probability"):
            FaultSpec("worker.task", "worker_kill", probability=1.5)
        FaultSpec("worker.task", "worker_kill", probability=1.0)  # allowed

    def test_directive_carries_kind_parameters(self):
        stall = FaultSpec("worker.task", "worker_stall", stall_s=0.7)
        assert stall.directive() == {"kind": "worker_stall", "stall_s": 0.7}
        latency = FaultSpec("server.handler", "latency", latency_ms=12.5)
        assert latency.directive() == {"kind": "latency", "latency_ms": 12.5}
        drop = FaultSpec("server.response", "drop_connection", drop_bytes=8)
        assert drop.directive() == {"kind": "drop_connection", "drop_bytes": 8}
        kill = FaultSpec("worker.task", "worker_kill")
        assert kill.directive() == {"kind": "worker_kill"}


class TestFaultPlan:
    def test_empty_plan_rejected(self):
        with pytest.raises(ChaosError, match="schedules no faults"):
            FaultPlan("empty")

    def test_with_seed_preserves_everything_else(self):
        plan = get_plan("worker-kill", seed=0)
        reseeded = plan.with_seed(99)
        assert reseeded.seed == 99
        assert reseeded.name == plan.name
        assert reseeded.faults == plan.faults
        assert reseeded.server_overrides == plan.server_overrides

    def test_to_dict_from_dict_roundtrip(self):
        for name in BUILTIN_PLANS:
            plan = get_plan(name, seed=7)
            rebuilt = FaultPlan.from_dict(plan.to_dict())
            assert rebuilt == plan

    def test_from_dict_rejects_malformed_documents(self):
        with pytest.raises(ChaosError, match="malformed"):
            FaultPlan.from_dict({"name": "x"})  # no faults key
        with pytest.raises(ChaosError, match="malformed"):
            FaultPlan.from_dict(
                {"name": "x", "faults": [{"point": "worker.task"}]}
            )  # FaultSpec missing kind

    def test_unknown_builtin_name(self):
        with pytest.raises(ChaosError, match="unknown fault plan"):
            get_plan("segfault-everything")

    def test_list_plans_covers_every_builtin(self):
        lines = list_plans()
        assert len(lines) == len(BUILTIN_PLANS)
        for name in BUILTIN_PLANS:
            assert any(line.startswith(name) for line in lines)

    def test_builtins_are_cadence_only(self):
        """Built-in plans never use probability: pure replayability."""
        for plan in BUILTIN_PLANS.values():
            for fault in plan.faults:
                assert fault.probability is None


def cadence_plan(**kwargs):
    defaults = dict(every=3, after=2, max_injections=2)
    defaults.update(kwargs)
    return FaultPlan(
        "test", faults=(FaultSpec("worker.task", "worker_kill", **defaults),)
    )


class TestControllerCadence:
    def decisions(self, controller, point, hits):
        return [controller.decide(point) for _ in range(hits)]

    def test_after_every_max_schedule(self):
        controller = ChaosController(cadence_plan())
        fired = [
            decision is not None
            for decision in self.decisions(controller, "worker.task", 9)
        ]
        # hits 0..8; eligible from hit 2, every 3rd, at most 2 firings
        assert fired == [False, False, True, False, False, True,
                         False, False, False]

    def test_wrong_point_never_fires(self):
        controller = ChaosController(cadence_plan(after=0, every=1))
        assert self.decisions(controller, "server.handler", 5) == [None] * 5

    def test_first_matching_fault_wins(self):
        plan = FaultPlan(
            "both",
            faults=(
                FaultSpec("worker.task", "worker_kill", every=1, after=0),
                FaultSpec("worker.task", "worker_stall", every=1, after=0),
            ),
        )
        controller = ChaosController(plan)
        directive = controller.decide("worker.task")
        assert directive == {"kind": "worker_kill"}
        assert controller.injections()["by_kind"] == {"worker_kill": 1}

    def test_probability_faults_replay_per_seed(self):
        plan = FaultPlan(
            "coin", seed=5,
            faults=(FaultSpec("worker.task", "worker_kill", probability=0.5),),
        )
        runs = []
        for _ in range(2):
            controller = ChaosController(plan)
            runs.append(
                [controller.decide("worker.task") is not None
                 for _ in range(40)]
            )
        assert runs[0] == runs[1]  # same seed, same coin flips
        assert any(runs[0]) and not all(runs[0])  # it IS a coin

    def test_events_log_hit_and_context(self):
        controller = ChaosController(cadence_plan(after=0, every=1))
        controller.decide("worker.task", op="derive", attempt=1)
        (event,) = controller.events
        assert event["point"] == "worker.task"
        assert event["kind"] == "worker_kill"
        assert event["hit"] == 0
        assert event["op"] == "derive"
        assert event["attempt"] == 1

    def test_reserved_event_keys_survive_context_collisions(self):
        """A caller passing kind=/point=/hit= must not clobber the log."""
        controller = ChaosController(cadence_plan(after=0, every=1))
        controller.decide("worker.task", kind="thread", hit=99, index=7)
        (event,) = controller.events
        assert event["kind"] == "worker_kill"
        assert event["point"] == "worker.task"
        assert event["hit"] == 0
        assert event["index"] == 0

    def test_injections_report_shape(self):
        controller = ChaosController(cadence_plan(after=0, every=2))
        for _ in range(4):
            controller.decide("worker.task")
        controller.decide("server.handler")
        report = controller.injections()
        assert report["total"] == 2
        assert report["by_point"] == {"worker.task": 2}
        assert report["by_kind"] == {"worker_kill": 2}
        assert report["hits"] == {"worker.task": 4, "server.handler": 1}
        assert len(report["events"]) == 2


class TestActivationSeam:
    def test_default_is_off(self):
        assert get_chaos() is None

    def test_use_chaos_scopes_and_restores(self):
        controller = ChaosController(cadence_plan())
        with use_chaos(controller) as active:
            assert active is controller
            assert get_chaos() is controller
        assert get_chaos() is None

    def test_set_chaos_returns_previous(self):
        controller = ChaosController(cadence_plan())
        assert set_chaos(controller) is None
        try:
            assert get_chaos() is controller
        finally:
            assert set_chaos(None) is controller
        assert get_chaos() is None


class TestPointsRegistry:
    def test_every_point_names_at_least_one_kind(self):
        for point, kinds in POINTS.items():
            assert kinds, point

    def test_every_point_has_a_call_site_in_the_source(self):
        """A point with no ``decide("<point>")`` caller is dead config
        (the CI selfcheck job runs the same assertion)."""
        import pathlib
        import re

        root = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
        source = "\n".join(
            path.read_text(encoding="utf-8")
            for path in root.rglob("*.py")
            if "chaos" not in path.parts
        )
        dead = [
            point
            for point in sorted(POINTS)
            if not re.search(r'decide\(\s*"' + re.escape(point) + '"', source)
        ]
        assert not dead, f"injection points with no call site: {dead}"

    def test_builtin_plans_cover_every_point(self):
        """Each injection point is exercised by at least one plan."""
        covered = {
            fault.point
            for plan in BUILTIN_PLANS.values()
            for fault in plan.faults
        }
        missing = set(POINTS) - covered
        assert not missing, f"points no builtin plan exercises: {missing}"
