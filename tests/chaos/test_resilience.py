"""Retry policy, retry state and circuit breaker unit tests.

No sleeping here: delays are computed, never slept, and the breaker
runs on a hand-cranked fake clock.
"""

import pytest

from repro.obs.metrics import MetricsRegistry, use_registry
from repro.serve.resilience import (
    DEFAULT_RETRY_STATUSES,
    CircuitBreaker,
    RetryPolicy,
    parse_retry_after,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestRetryPolicyValidation:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 4
        assert policy.retry_statuses == DEFAULT_RETRY_STATUSES

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -0.1},
            {"max_delay": -1.0},
            {"multiplier": 0.5},
            {"jitter": 1.5},
            {"jitter": -0.1},
            {"total_deadline": 0.0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_retryable_statuses(self):
        policy = RetryPolicy()
        assert policy.retryable_status(503)
        assert policy.retryable_status(504)
        assert policy.retryable_status(500)
        assert not policy.retryable_status(200)
        assert not policy.retryable_status(422)
        custom = RetryPolicy(retry_statuses=frozenset({429}))
        assert custom.retryable_status(429)
        assert not custom.retryable_status(503)


def drain(policy, seed_offset=0, failures=None):
    """Walk a state through repeated failures; returns the delays."""
    state = policy.start(seed_offset=seed_offset)
    delays = []
    while True:
        state.record_attempt(failures.pop(0) if failures else 503)
        delay = state.next_delay()
        if delay is None:
            return state, delays
        delays.append(delay)


class TestRetryState:
    def test_max_attempts_one_means_no_retries(self):
        state, delays = drain(RetryPolicy(max_attempts=1))
        assert delays == []
        assert state.attempts == 1
        assert state.exhausted

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=0.1, multiplier=2.0,
            max_delay=0.4, jitter=0.0,
        )
        _, delays = drain(policy)
        assert delays == [0.1, 0.2, 0.4, 0.4, 0.4]

    def test_jitter_only_shrinks_and_is_deterministic(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.1, multiplier=2.0,
            max_delay=1.0, jitter=0.5, seed=3,
        )
        _, first = drain(policy, seed_offset=11)
        _, second = drain(policy, seed_offset=11)
        assert first == second  # same seed + offset: same jitter stream
        ceilings = [0.1, 0.2, 0.4, 0.8]
        for delay, ceiling in zip(first, ceilings):
            assert ceiling / 2 <= delay <= ceiling

    def test_different_offsets_get_different_jitter(self):
        policy = RetryPolicy(max_attempts=4, jitter=0.5, seed=3)
        _, a = drain(policy, seed_offset=1)
        _, b = drain(policy, seed_offset=2)
        assert a != b

    def test_retry_after_raises_the_delay(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0)
        state = policy.start()
        state.record_attempt(503)
        assert state.next_delay(retry_after=0.5) == 0.5

    def test_retry_after_ignored_when_disabled(self):
        policy = RetryPolicy(
            max_attempts=3, base_delay=0.01, jitter=0.0,
            honor_retry_after=False,
        )
        state = policy.start()
        state.record_attempt(503)
        assert state.next_delay(retry_after=0.5) == 0.01

    def test_total_deadline_stops_the_journey(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay=0.1, multiplier=2.0,
            max_delay=10.0, jitter=0.0, total_deadline=0.5,
        )
        state, delays = drain(policy)
        # 0.1 + 0.2 fit the 0.5 budget; the next 0.4 would blow it
        assert delays == [0.1, 0.2]
        assert state.exhausted
        assert state.slept_s == pytest.approx(0.3)

    def test_transport_errors_recorded_as_status_zero(self):
        state = RetryPolicy(max_attempts=2).start()
        state.record_attempt(None)
        state.record_attempt(200)
        assert state.statuses == [0, 200]
        assert state.transport_errors == 1
        assert state.retried

    def test_finish_publishes_retry_metrics(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            policy = RetryPolicy(max_attempts=3, base_delay=0.1, jitter=0.0)
            state = policy.start()
            state.record_attempt(503)
            state.next_delay()
            state.record_attempt(200)
            state.finish(recovered=True)
        assert registry.counter("client.retry.attempts").value() == 2
        assert registry.counter("client.retry.retries").value() == 1
        assert registry.counter("client.retry.recovered").value() == 1
        assert registry.counter("client.retry.exhausted").value() == 0


class TestParseRetryAfter:
    def test_parses_delay_seconds(self):
        assert parse_retry_after("2") == 2.0
        assert parse_retry_after(" 0.25 ") == 0.25

    def test_negative_clamped_to_zero(self):
        assert parse_retry_after("-3") == 0.0

    def test_garbage_and_none_are_none(self):
        assert parse_retry_after(None) is None
        assert parse_retry_after("Wed, 21 Oct 2026") is None


class TestCircuitBreaker:
    def make(self, **kwargs):
        clock = FakeClock()
        defaults = dict(failure_threshold=3, reset_timeout=5.0, clock=clock)
        defaults.update(kwargs)
        return CircuitBreaker(**defaults), clock

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=0)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_max=0)

    def test_consecutive_failures_trip_it(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.opens == 1

    def test_success_resets_the_streak(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_after_reset_timeout(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(4.9)
        assert breaker.state == "open"
        clock.advance(0.2)
        assert breaker.state == "half-open"

    def test_half_open_admits_limited_probes(self):
        breaker, clock = self.make(half_open_max=1)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()      # the probe
        assert not breaker.allow()  # no second concurrent probe

    def test_half_open_success_closes(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_failure_reopens_and_restarts_timeout(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opens == 2
        clock.advance(4.0)
        assert breaker.state == "open"  # timer restarted at reopen
        clock.advance(1.0)
        assert breaker.state == "half-open"
