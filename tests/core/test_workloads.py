"""Workload-generator tests: every family derives and verifies."""

import pytest

from repro import workloads
from repro.core.complexity import analyze
from repro.core.generator import derive_protocol
from repro.runtime import build_system, check_run, random_run


class TestPipeline:
    def test_place_count(self):
        result = derive_protocol(workloads.pipeline(5))
        assert len(result.places) == 5

    def test_rounds_multiply_events(self):
        spec = workloads.pipeline(3, rounds=4)
        result = derive_protocol(spec)
        system = build_system(result.entities)
        run = random_run(system, seed=0, max_steps=4_000)
        assert run.terminated
        assert len(run.trace) == 12

    def test_message_count_formula(self):
        for places in (2, 3, 6):
            report = analyze(derive_protocol(workloads.pipeline(places)))
            assert report.total_messages == places - 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            workloads.pipeline(0)
        with pytest.raises(ValueError):
            workloads.pipeline(3, rounds=0)


class TestFanOutJoin:
    def test_structure(self):
        result = derive_protocol(workloads.fan_out_join(5))
        assert result.places == [1, 2, 3, 4, 5]

    def test_branches_run_in_parallel(self):
        result = derive_protocol(workloads.fan_out_join(4))
        system = build_system(result.entities)
        traces = set()
        for seed in range(12):
            run = random_run(system, seed=seed, max_steps=500)
            assert run.terminated
            traces.add(tuple(str(event) for event in run.trace))
        assert len(traces) > 1  # interleavings differ

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            workloads.fan_out_join(2)


class TestChoiceLadder:
    def test_alternatives_all_reachable(self):
        result = derive_protocol(workloads.choice_ladder(3))
        system = build_system(result.entities)
        first_events = set()
        for seed in range(30):
            run = random_run(system, seed=seed, max_steps=500)
            assert run.terminated and check_run(result.service, run)
            first_events.add(str(run.trace[0]))
        assert len(first_events) == 3

    def test_minimum(self):
        with pytest.raises(ValueError):
            workloads.choice_ladder(1)


class TestRecursionTower:
    def test_balanced_unwinding(self):
        result = derive_protocol(workloads.recursion_tower(3))
        system = build_system(result.entities)
        for seed in range(15):
            run = random_run(system, seed=seed, max_steps=2_000)
            assert run.terminated
            names = [event.name for event in run.trace]
            assert names.count("a") == names.count("u") // 2 >= 1


class TestInterruptStack:
    def test_derives_with_disable(self):
        result = derive_protocol(workloads.interrupt_stack(4))
        assert result.violations == []

    def test_interrupt_event_at_last_place(self):
        result = derive_protocol(workloads.interrupt_stack(3))
        system = build_system(
            result.entities, discipline="selective", require_empty_at_exit=False
        )
        interrupted = sum(
            1
            for seed in range(30)
            if any(
                event.name == "k"
                for event in random_run(system, seed=seed, max_steps=400).trace
            )
        )
        assert 0 < interrupted


class TestProcessChain:
    def test_every_process_invoked(self):
        result = derive_protocol(workloads.process_chain(4))
        system = build_system(result.entities)
        run = random_run(system, seed=1, max_steps=4_000)
        assert run.terminated
        names = {event.name for event in run.trace}
        assert {f"h{index}x" for index in range(4)} <= {
            name[: len(name)] for name in names
        } or all(f"h{index}x" in "".join(sorted(names)) for index in range(4))

    def test_conformance(self):
        result = derive_protocol(workloads.process_chain(3))
        system = build_system(result.entities)
        for seed in range(10):
            run = random_run(system, seed=seed, max_steps=4_000)
            assert check_run(result.service, run)
