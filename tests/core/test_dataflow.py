"""Interaction-parameter data-flow tests (the [Gotz 90] extension)."""


from repro.core.dataflow import analyze_parameters
from repro.core.generator import derive_protocol
from repro.lotos.events import ServicePrimitive
from repro.lotos.parser import parse_behaviour
from repro.lotos.unparse import unparse_behaviour


class TestParameterSyntax:
    def test_single_parameter(self):
        node = parse_behaviour("read1(rec); exit")
        assert node.event == ServicePrimitive("read", 1, ("rec",))

    def test_multiple_parameters(self):
        node = parse_behaviour("xfer2(src, dst); exit")
        assert node.event.params == ("src", "dst")

    def test_round_trip(self):
        text = "read1(rec); push2(rec); exit"
        node = parse_behaviour(text)
        assert parse_behaviour(unparse_behaviour(node)) == node

    def test_parameterless_primitives_unchanged(self):
        assert parse_behaviour("a1; exit").event.params == ()

    def test_parameters_do_not_affect_derivation_structure(self):
        plain = derive_protocol("SPEC read1; push2; exit ENDSPEC")
        parameterized = derive_protocol("SPEC read1(r); push2(r); exit ENDSPEC")
        assert plain.entity_text(2).replace("push2", "x") == parameterized.entity_text(
            2
        ).replace("push2(r)", "x")


class TestPiggybacking:
    def test_sequence_flow(self):
        result = derive_protocol(
            "SPEC read1(rec); push2(rec); write3(rec); exit ENDSPEC"
        )
        report = analyze_parameters(result)
        assert report.satisfied
        first = report.payload_of(1, 1)
        second = report.payload_of(2, 2)
        assert first and "rec" in first.variables
        assert second and "rec" in second.variables

    def test_local_consumption_needs_no_payload(self):
        result = derive_protocol("SPEC read1(rec); copy1(rec); b2; exit ENDSPEC")
        report = analyze_parameters(result)
        assert report.satisfied
        assert all(not payload.variables for payload in report.payloads)

    def test_dead_value_not_carried(self):
        # rec is produced and never consumed elsewhere: no message carries it.
        result = derive_protocol("SPEC read1(rec); b2; c3; exit ENDSPEC")
        report = analyze_parameters(result)
        assert report.satisfied
        assert all(not payload.variables for payload in report.payloads)

    def test_enable_boundary_flow(self):
        result = derive_protocol(
            "SPEC a1(v); exit >> b2(v); exit ENDSPEC"
        )
        report = analyze_parameters(result)
        assert report.satisfied
        (payload,) = [p for p in report.payloads if p.variables]
        assert payload.sender == 1 and 2 in payload.receivers

    def test_transitive_flow_through_relay(self):
        # v travels 1 -> 2 -> 3 although 2 never uses it.
        result = derive_protocol("SPEC a1(v); b2; c3(v); exit ENDSPEC")
        report = analyze_parameters(result)
        assert report.satisfied
        hop12 = report.payload_of(1, 1)
        hop23 = report.payload_of(2, 2)
        assert "v" in hop12.variables and "v" in hop23.variables

    def test_recursive_file_copy(self):
        service = """SPEC S WHERE
          PROC S = (read1(rec); push2(rec); S >> pop2(out); write3(out); exit)
                [] (eof1; make3; exit) END
        ENDSPEC"""
        result = derive_protocol(service)
        report = analyze_parameters(result)
        assert report.satisfied
        carried = {
            variable
            for payload in report.payloads
            for variable in payload.variables
        }
        assert carried == {"rec", "out"}


class TestUnreachable:
    def test_cross_branch_consumption_flagged(self):
        result = derive_protocol(
            "SPEC (a1(v); b2(v); exit) [] (c1; d2(v); exit) ENDSPEC"
        )
        report = analyze_parameters(result)
        assert not report.satisfied
        (unreachable,) = report.unreachable
        assert unreachable.variable == "v"
        assert unreachable.place == 2

    def test_no_message_path_flagged(self):
        # v produced at 1, consumed at 3, but 1 and 3 never synchronize:
        # a1 and c3 run in parallel with no ordering message.
        result = derive_protocol("SPEC a1(v); b1; exit ||| c3(v); d3; exit ENDSPEC")
        report = analyze_parameters(result)
        assert not report.satisfied

    def test_report_rendering(self):
        result = derive_protocol(
            "SPEC (a1(v); b2(v); exit) [] (c1; d2(v); exit) ENDSPEC"
        )
        text = analyze_parameters(result).render()
        assert "UNREACHABLE" in text and "extra message exchange" in text


class TestNoParameters:
    def test_empty_report(self):
        result = derive_protocol("SPEC a1; b2; exit ENDSPEC")
        report = analyze_parameters(result)
        assert report.satisfied
        assert not report.producers and not report.payloads
