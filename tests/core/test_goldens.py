"""Golden-corpus regression tests.

``tests/goldens/`` holds service specifications paired with the exact
derived-entity text the Protocol Generator produced when the corpus was
recorded.  Any change to the derivation pipeline that alters any entity
of any corpus case — message numbering, simplification laws, operator
handling — shows up here as a readable diff.  To extend the corpus, add
``<name>.lotos`` + ``<name>.expected`` (and generator kwargs in
``manifest.json`` if non-default).
"""

import json
import pathlib

import pytest

from repro.core.generator import derive_protocol
from repro.runtime import build_system, check_run, random_run

GOLDEN_DIR = pathlib.Path(__file__).resolve().parents[1] / "goldens"
MANIFEST = json.loads((GOLDEN_DIR / "manifest.json").read_text())
CASES = sorted(MANIFEST)


@pytest.mark.parametrize("name", CASES)
def test_derivation_matches_golden(name):
    service = (GOLDEN_DIR / f"{name}.lotos").read_text()
    expected = (GOLDEN_DIR / f"{name}.expected").read_text()
    result = derive_protocol(service, **MANIFEST[name])
    assert result.describe() == expected


@pytest.mark.parametrize("name", CASES)
def test_golden_protocols_execute(name):
    service = (GOLDEN_DIR / f"{name}.lotos").read_text()
    result = derive_protocol(service, **MANIFEST[name])
    has_disable = "[>" in service
    system = build_system(
        result.entities,
        discipline="selective" if has_disable else "fifo",
        require_empty_at_exit=not has_disable,
    )
    run = random_run(system, seed=0, max_steps=2_000)
    assert not run.deadlocked, str(run)
    if not has_disable:
        assert check_run(result.service, run), str(run)


def test_corpus_is_complete():
    for name in CASES:
        assert (GOLDEN_DIR / f"{name}.lotos").exists()
        assert (GOLDEN_DIR / f"{name}.expected").exists()
    lotos_files = {p.stem for p in GOLDEN_DIR.glob("*.lotos")}
    assert lotos_files == set(CASES)
