"""Mixed-choice (R1 relaxation) tests — the [Kant 92/93] extension.

The arbiter protocol lets a choice start at two different places.  Its
guarantee is deliberately weaker than the theorem's: weak *trace*
equivalence (plus deadlock freedom and per-run conformance), because any
distributed resolution of an external choice must internally commit at
some point — the very reason the paper imposed R1 in the first place.
The last test pins that limitation down.
"""

import pytest

from repro.core.generator import derive_protocol
from repro.errors import RestrictionViolation
from repro.lotos.events import SyncMessage
from repro.lotos.semantics import Semantics
from repro.lotos.traces import weak_trace_equivalent
from repro.runtime import build_system, check_run, random_run

SERVICE = "SPEC (a1; x3; exit) [] (b2; y3; exit) ENDSPEC"


@pytest.fixture(scope="module")
def mixed():
    return derive_protocol(SERVICE, mixed_choice=True)


class TestAdmission:
    def test_rejected_without_the_flag(self):
        with pytest.raises(RestrictionViolation, match="R1"):
            derive_protocol(SERVICE)

    def test_accepted_with_the_flag(self, mixed):
        assert mixed.violations == []
        assert mixed.places == [1, 2, 3]

    def test_multi_place_starters_still_rejected(self):
        with pytest.raises(RestrictionViolation, match="R1"):
            derive_protocol(
                "SPEC ((a1; z3; exit ||| a2; z3; exit)) [] (b1; z3; exit) ENDSPEC",
                mixed_choice=True,
            )

    def test_r2_still_enforced(self):
        with pytest.raises(RestrictionViolation, match="R2"):
            derive_protocol(
                "SPEC (a1; x3; exit) [] (b2; y2; exit) ENDSPEC",
                mixed_choice=True,
            )

    def test_common_starter_uses_the_standard_rule(self):
        # R1-conforming choices must be untouched by the flag.
        text = "SPEC (a1; b2; exit) [] (c1; d2; exit) ENDSPEC"
        standard = derive_protocol(text)
        flagged = derive_protocol(text, mixed_choice=True)
        assert standard.entities == flagged.entities


class TestProtocolShape:
    def test_arbiter_offers_event_and_request(self, mixed):
        text = mixed.entity_text(1)
        assert "r2(req,1)" in text
        assert "s2(grant,1)" in text
        assert "s2(deny,1)" in text

    def test_requester_guards_initial_event_on_grant(self, mixed):
        text = mixed.entity_text(2)
        assert text.index("s1(req,1)") < text.index("r1(grant,1)")
        assert text.index("r1(grant,1)") < text.index("b2")

    def test_third_place_unchanged(self, mixed):
        text = mixed.entity_text(3)
        assert "req" not in text and "grant" not in text and "deny" not in text


class TestExecution:
    def test_all_schedules_conform(self, mixed):
        system = build_system(mixed.entities)
        firsts = set()
        for seed in range(50):
            run = random_run(system, seed=seed, max_steps=600)
            assert run.terminated and not run.deadlocked, str(run)
            assert check_run(mixed.service, run)
            firsts.add(str(run.trace[0]))
        assert firsts == {"a1", "b2"}  # both alternatives reachable

    def test_losing_event_never_fires_after_resolution(self, mixed):
        system = build_system(mixed.entities)
        for seed in range(50):
            run = random_run(system, seed=seed, max_steps=600)
            names = [str(event) for event in run.trace]
            assert not ("a1" in names and "b2" in names)

    def test_nested_under_prefix(self):
        result = derive_protocol(
            "SPEC m1; ((a1; x3; exit) [] (b2; x3; exit)) ENDSPEC",
            mixed_choice=True,
        )
        system = build_system(result.entities)
        for seed in range(30):
            run = random_run(system, seed=seed, max_steps=600)
            assert run.terminated and check_run(result.service, run)

    def test_requester_participating_in_left_branch(self):
        # place 2 starts the right branch AND acts inside the left one.
        result = derive_protocol(
            "SPEC (a1; b2; c3; exit) [] (d2; e1; c3; exit) ENDSPEC",
            mixed_choice=True,
        )
        system = build_system(result.entities)
        for seed in range(40):
            run = random_run(system, seed=seed, max_steps=800)
            assert run.terminated and check_run(result.service, run), str(run)


class TestGuarantees:
    @pytest.mark.parametrize(
        "service",
        [
            SERVICE,
            "SPEC (a1; b2; c3; exit) [] (d2; e1; c3; exit) ENDSPEC",
            "SPEC m1; ((a1; x3; exit) [] (b2; x3; exit)) ENDSPEC",
        ],
    )
    def test_weak_trace_equivalence(self, service):
        result = derive_protocol(service, mixed_choice=True)
        semantics, root = Semantics.of_specification(
            result.prepared, bind_occurrences=False
        )
        system = build_system(result.entities)
        equivalent, witness = weak_trace_equivalent(
            root, semantics, system.initial, system, depth=6
        )
        assert equivalent, witness

    def test_not_weakly_bisimilar_documented_limitation(self, mixed):
        """The arbiter must commit internally at some point, so the
        *branching* structure differs from the service's external
        choice — weak bisimulation cannot hold.  This is precisely why
        the paper keeps R1 and this relaxation is an extension with a
        weaker contract."""
        from repro.verification.checker import verify_derivation

        report = verify_derivation(mixed)
        assert report.method == "weak-bisimulation"
        assert not report.equivalent

    def test_messages_use_req_grant_deny_kinds(self, mixed):
        kinds = set()
        for place in mixed.places:
            for node in mixed.entity(place).walk_behaviours():
                event = getattr(node, "event", None)
                message = getattr(event, "message", None)
                if isinstance(message, SyncMessage):
                    kinds.add(message.kind)
        assert {"req", "grant", "deny"} <= kinds
