"""Message-complexity tests: the Section 4.3 bounds (E8)."""

import pytest

from repro.core.complexity import analyze, analyze_ledger, bound_for
from repro.core.derivation import Deriver
from repro.core.generator import derive_protocol


class TestBounds:
    def test_bound_table(self):
        assert bound_for("seq", 5) == 1
        assert bound_for("enable", 5) == 1
        assert bound_for("choice", 5) == 5
        assert bound_for("rel", 5) == 4
        assert bound_for("interr", 5) == 4
        assert bound_for("proc", 5) == 4

    def test_unknown_rule(self):
        with pytest.raises(ValueError):
            bound_for("mystery", 3)


class TestSequenceCounts:
    def test_one_message_per_cross_place_hop(self):
        result = derive_protocol("SPEC a1; b2; c3; d1; exit ENDSPEC")
        report = analyze(result)
        assert report.total_messages == 3
        assert report.per_rule() == {"seq": 3}
        assert report.violations() == []

    def test_local_hops_are_free(self):
        result = derive_protocol("SPEC a1; b1; c1; exit ENDSPEC")
        report = analyze(result)
        assert report.total_messages == 0

    def test_enable_counts(self):
        result = derive_protocol("SPEC a1; exit >> b2; exit ENDSPEC")
        report = analyze(result)
        assert report.per_rule() == {"enable": 1}


class TestParallelMultiplication:
    def test_fan_out_to_parallel_starts(self):
        # e1 >> (e2 ||| e3): 2 messages instead of 1 (paper Section 4.3).
        result = derive_protocol(
            "SPEC a1; exit >> (b2; exit ||| c3; exit) ENDSPEC"
        )
        report = analyze(result)
        assert report.per_rule()["enable"] == 2

    def test_fan_in_from_parallel_ends(self):
        result = derive_protocol(
            "SPEC (b2; exit ||| c3; exit) >> a1; exit ENDSPEC"
        )
        report = analyze(result)
        assert report.per_rule()["enable"] == 2

    def test_parallel_context_flagged_as_exceeding_bound(self):
        result = derive_protocol(
            "SPEC a1; exit >> (b2; exit ||| c3; exit) ENDSPEC"
        )
        report = analyze(result)
        # The per-construct bound of 1 is legitimately exceeded — the
        # paper: "each parallel expression may be a multiplication factor".
        assert report.violations()


class TestChoiceCounts:
    def test_non_participating_places_cost_messages(self):
        # left involves {1,2}, right involves {1,3}: choosing either
        # side notifies the one excluded place.
        result = derive_protocol(
            "SPEC (a1; b2; c1; exit) [] (d1; e3; f1; exit) ENDSPEC"
        )
        report = analyze(result)
        assert report.per_rule()["choice"] == 2
        assert report.violations() == []

    def test_identical_alternative_places_cost_nothing(self):
        result = derive_protocol(
            "SPEC (a1; b2; exit) [] (c1; d2; exit) ENDSPEC"
        )
        report = analyze(result)
        assert "choice" not in report.per_rule()


class TestDisableCounts:
    def test_rel_and_interr(self):
        result = derive_protocol("SPEC a1; b2; c3; exit [> d3; exit ENDSPEC")
        report = analyze(result)
        n = 3
        per_rule = report.per_rule()
        assert per_rule["rel"] == n - 1  # place 3 broadcasts termination
        assert per_rule["interr"] == n - 1  # d3 broadcast (continuation exits)
        assert report.violations() == []

    def test_total_disable_budget(self):
        result = derive_protocol("SPEC a1; b2; c3; exit [> d3; exit ENDSPEC")
        report = analyze(result)
        per_rule = report.per_rule()
        disable_total = per_rule["rel"] + per_rule["interr"]
        n = 3
        assert disable_total <= 2 * n - 2


class TestProcessCounts:
    def test_invocation_broadcast(self):
        result = derive_protocol(
            "SPEC B >> c3; exit WHERE PROC B = a1; b2; exit END ENDSPEC"
        )
        report = analyze(result)
        n = 3
        assert report.per_rule()["proc"] == n - 1
        assert report.violations() == []

    def test_recursion_counts_static_occurrences(self):
        result = derive_protocol(
            "SPEC A WHERE PROC A = (a1; A >> b2; exit) [] (a1; b2; exit) END ENDSPEC"
        )
        report = analyze(result)
        # two textual invocation sites (root + recursive), n-1 = 1 each
        assert report.per_rule()["proc"] == 2


class TestLedger:
    def test_ledger_alignment_with_entities(self):
        result = derive_protocol("SPEC a1; b2; exit ENDSPEC")
        deriver = Deriver(result.prepared, result.attrs)
        for place in result.places:
            deriver.derive(place)
        sends = [e for e in deriver.ledger if e.role == "send"]
        receives = [e for e in deriver.ledger if e.role == "receive"]
        assert len(sends) == 1 and len(receives) == 1
        assert sends[0].node == receives[0].node

    def test_analyze_ledger_counts_sends_only(self):
        result = derive_protocol("SPEC a1; b2; exit ENDSPEC")
        deriver = Deriver(result.prepared, result.attrs)
        for place in result.places:
            deriver.derive(place)
        report = analyze_ledger(deriver.ledger, 2)
        assert report.total_messages == 1

    def test_naive_derivation_has_empty_ledger(self):
        result = derive_protocol("SPEC a1; b2; exit ENDSPEC", emit_sync=False)
        deriver = Deriver(result.prepared, result.attrs, emit_sync=False)
        for place in result.places:
            deriver.derive(place)
        assert deriver.ledger == []

    def test_table_rendering(self):
        result = derive_protocol("SPEC a1; b2; c3; exit [> d3; exit ENDSPEC")
        table = analyze(result).table()
        assert "places (n)" in table and "rel" in table and "interr" in table
