"""Derivation tests against the paper's printed results (E2-E6).

Node numbers in messages are our preorder numbering, which differs by a
constant shift from the paper's Figure 4 numbering (the paper also
allocates some message identifiers beyond the displayed tree).  The
*structure* — which places exchange which messages around which local
events — is asserted to match the paper's printed derivations exactly.
"""


from repro.core.derivation import Deriver
from repro.core.generator import derive_protocol
from repro.lotos.events import ReceiveAction, SendAction, ServicePrimitive
from repro.lotos.syntax import (
    ActionPrefix,
    Choice,
    Disable,
    Enable,
    ProcessRef,
)
from repro.lotos.unparse import unparse_behaviour


def entity_root(result, place):
    return result.entity(place).behaviour


def entity_process(result, place, name):
    for definition in result.entity(place).definitions:
        if definition.name == name:
            return definition.body.behaviour
    raise AssertionError(f"no process {name} at place {place}")


def events_in(node):
    return [n.event for n in node.walk() if isinstance(n, ActionPrefix)]


def primitives_in(node):
    return [e for e in events_in(node) if isinstance(e, ServicePrimitive)]


def sends_in(node):
    return [e for e in events_in(node) if isinstance(e, SendAction)]


def receives_in(node):
    return [e for e in events_in(node) if isinstance(e, ReceiveAction)]


class TestExample4Sequence:
    """Section 3.1: a1; exit >> b2; exit."""

    def test_place_1(self, example4):
        root = entity_root(example4, 1)
        # a1; exit >> (s2(x); exit)
        assert unparse_behaviour(root) == "a1; exit >> s2(2); exit"

    def test_place_2(self, example4):
        root = entity_root(example4, 2)
        # (r1(x); exit) >> b2; exit
        assert unparse_behaviour(root) == "r1(2); exit >> b2; exit"

    def test_message_identities_pair_up(self, example4):
        (send,) = sends_in(entity_root(example4, 1))
        (receive,) = receives_in(entity_root(example4, 2))
        assert send.message == receive.message
        assert send.dest == 2 and receive.src == 1


class TestExample3FileTransfer:
    """Section 4.2: the complete derived entities for Example 3."""

    def test_every_place_keeps_only_local_primitives(self, example3):
        expected = {1: {"read", "eof"}, 2: {"push", "pop"}, 3: {"write", "make", "interrupt"}}
        for place in (1, 2, 3):
            spec = example3.entity(place)
            names = {
                event.name
                for definition in [spec.root.behaviour] + [
                    d.body.behaviour for d in spec.definitions
                ]
                for event in primitives_in(definition)
            }
            assert names == expected[place]
            places = {
                event.place
                for definition in [spec.root.behaviour] + [
                    d.body.behaviour for d in spec.definitions
                ]
                for event in primitives_in(definition)
            }
            assert places == {place}

    def test_process_structure_is_preserved(self, example3):
        for place in (1, 2, 3):
            spec = example3.entity(place)
            assert [d.name for d in spec.definitions] == ["S"]
            assert isinstance(spec.root.behaviour, Disable)
            assert isinstance(
                entity_process(example3, place, "S"), Choice
            )

    def test_place1_shape(self, example3):
        # ((Proc_Synch >> S) >> Rel) [> interrupt-receive
        root = entity_root(example3, 1)
        assert isinstance(root, Disable)
        assert (
            unparse_behaviour(root)
            == "((s2(2); exit ||| s3(2); exit >> S) >> r3(2); exit) [> r3(3); exit"
        )

    def test_place2_shape(self, example3):
        assert (
            unparse_behaviour(entity_root(example3, 2))
            == "((r1(2); exit >> S) >> r3(2); exit) [> r3(3); exit"
        )

    def test_place3_shape(self, example3):
        # place 3 initiates the interrupt and broadcasts it.
        assert (
            unparse_behaviour(entity_root(example3, 3))
            == "((r1(2); exit >> S) >> s1(2); exit ||| s2(2); exit)"
            " [> interrupt3; (s1(3); exit ||| s2(3); exit)"
        )

    def test_place1_process_body(self, example3):
        body = entity_process(example3, 1, "S")
        assert (
            unparse_behaviour(body)
            == "read1; (s2(7); exit >> r2(8); exit >> s2(9); exit ||| s3(9); exit >> S)"
            " [] (eof1; s3(13); exit >> s2(13); exit)"
        )

    def test_place2_process_body(self, example3):
        body = entity_process(example3, 2, "S")
        assert (
            unparse_behaviour(body)
            == "((r1(7); exit >> push2; (s1(8); exit >> r1(9); exit >> S))"
            " >> r3(7); exit >> pop2; s3(10); exit) [] r1(13); exit"
        )

    def test_place3_process_body(self, example3):
        body = entity_process(example3, 3, "S")
        assert (
            unparse_behaviour(body)
            == "((r1(9); exit >> S) >> s2(7); exit >> r2(10); exit >> write3; exit)"
            " [] (r1(13); exit >> make3; exit)"
        )

    def test_every_send_has_a_matching_receive(self, example3):
        sends = {}
        receives = {}
        for place in (1, 2, 3):
            spec = example3.entity(place)
            bodies = [spec.root.behaviour] + [
                d.body.behaviour for d in spec.definitions
            ]
            for body in bodies:
                for event in sends_in(body):
                    sends.setdefault((place, event.dest, event.message), 0)
                    sends[(place, event.dest, event.message)] += 1
                for event in receives_in(body):
                    receives.setdefault((event.src, place, event.message), 0)
                    receives[(event.src, place, event.message)] += 1
        assert sends == receives


class TestExample5ChoiceWithRecursion:
    """Section 3.2: the empty-alternative problem and its fix."""

    def test_place2_right_alternative_is_a_receive(self, example5):
        body = entity_process(example5, 2, "A")
        assert isinstance(body, Choice)
        # Paper: "PROC A = (..b2... ; A >> c2....) [] (r1(19);exit)".
        right = body.right
        assert receives_in(right) and not primitives_in(right)
        (receive,) = receives_in(right)
        assert receive.src == 1

    def test_place1_sends_alternative_notification(self, example5):
        body = entity_process(example5, 1, "A")
        # Paper: right alternative "(e1; ....; exit) >> (s2(x); exit)".
        right = body.right
        (send,) = [e for e in sends_in(right) if e.dest == 2]
        # and it must go out only after the alternative's local part:
        assert isinstance(right, Enable)

    def test_left_alternative_needs_no_choice_message(self, example5):
        # AP(left) ⊇ AP(right): no one is left out when left is chosen —
        # wait: AP(left)={1,2,3}, AP(right)={1,3}; place 2 is only in
        # left, so choosing *right* requires notifying 2 (tested above),
        # choosing left requires nothing extra.
        attrs = example5.attrs
        choice = entity_process(example5, 1, "A")
        prepared_choice = next(
            node
            for node in example5.prepared.walk_behaviours()
            if isinstance(node, Choice)
        )
        left_ap = attrs.ap(prepared_choice.left)
        right_ap = attrs.ap(prepared_choice.right)
        assert right_ap - left_ap == frozenset()

    def test_naive_rule_would_leave_place2_empty(self):
        from tests.conftest import EXAMPLE5

        naive = derive_protocol(EXAMPLE5, emit_sync=False)
        body = entity_process(naive, 2, "A")
        # Without Alternative messages the right branch of place 2
        # degenerates (no action at all): the paper's motivating bug.
        assert isinstance(body, Choice) or primitives_in(body)


class TestExample6Disable:
    """Section 3.3: (a1; b2; c3; exit) [> (d3; exit)."""

    def test_place1(self, example6):
        root = entity_root(example6, 1)
        # Paper: PROC A = a1; ..... >> (r3(x);exit) [> (r3(y);exit)
        assert unparse_behaviour(root) == "(a1; s2(2); exit >> r3(2); exit) [> r3(6); exit"

    def test_place2(self, example6):
        root = entity_root(example6, 2)
        # Paper: PROC A = ..;b2;.. >> (r3(x);exit) [> (r3(y);exit)
        assert (
            unparse_behaviour(root)
            == "((r1(2); exit >> b2; s3(3); exit) >> r3(2); exit) [> r3(6); exit"
        )

    def test_place3(self, example6):
        root = entity_root(example6, 3)
        # Paper: ...;c3;exit >> (s1(x);exit ||| s2(x);exit)
        #        [> d3; (s1(y);exit ||| s2(y);exit)
        assert (
            unparse_behaviour(root)
            == "((r2(3); exit >> c3; exit) >> s1(2); exit ||| s2(2); exit)"
            " [> d3; (s1(6); exit ||| s2(6); exit)"
        )

    def test_interrupt_broadcast_goes_to_all_other_places(self, example6):
        root3 = entity_root(example6, 3)
        mc = root3.right
        assert isinstance(mc, ActionPrefix)
        assert str(mc.event) == "d3"
        broadcast = sends_in(mc.continuation)
        assert sorted(e.dest for e in broadcast) == [1, 2]

    def test_other_places_arm_a_receive(self, example6):
        for place in (1, 2):
            mc = entity_root(example6, place).right
            (receive,) = receives_in(mc)
            assert receive.src == 3


class TestExample2Recursion:
    """Section 3.4: process synchronization for a^n b^n."""

    def test_place1(self, example2):
        # Paper: PROC A = ai ; sk(x) ; A >> ...exit [] ...exit
        body = entity_process(example2, 1, "A")
        assert (
            unparse_behaviour(body)
            == "a1; (s2(5); exit >> A) [] a1; s2(8); exit"
        )

    def test_place2(self, example2):
        # Paper: PROC A = ri(x) ; A >> ...exit [] ...exit
        body = entity_process(example2, 2, "A")
        assert (
            unparse_behaviour(body)
            == "((r1(5); exit >> A) >> b2; exit) [] (r1(8); exit >> b2; exit)"
        )

    def test_top_level_invocation_synchronized(self, example2):
        assert unparse_behaviour(entity_root(example2, 1)) == "s2(1); exit >> A"
        assert unparse_behaviour(entity_root(example2, 2)) == "r1(1); exit >> A"

    def test_recursive_reference_keeps_site(self, example2):
        for place in (1, 2):
            body = entity_process(example2, place, "A")
            refs = [n for n in body.walk() if isinstance(n, ProcessRef)]
            assert refs and all(ref.site is not None for ref in refs)
            # both places use the same invocation site number
        site1 = [n.site for n in entity_process(example2, 1, "A").walk() if isinstance(n, ProcessRef)]
        site2 = [n.site for n in entity_process(example2, 2, "A").walk() if isinstance(n, ProcessRef)]
        assert site1 == site2


class TestRawDerivation:
    def test_raw_output_contains_empty(self, example4):
        deriver = Deriver(example4.prepared, example4.attrs)
        raw = deriver.derive_raw(1)
        from repro.lotos.syntax import Empty

        assert any(isinstance(n, Empty) for n in raw.root.behaviour.walk())

    def test_simplified_output_has_no_empty(self, example3):
        from repro.lotos.syntax import Empty

        for place in (1, 2, 3):
            for node in example3.entity(place).walk_behaviours():
                assert not isinstance(node, Empty)
