"""The SIGCOMM 1986 fragment ([Boch 86]): ';', '[]', '|||' only.

The supplied paper extends the 1986 algorithm; the subset mode pins the
boundary between the two, showing exactly which constructs needed the
extension.
"""

import pytest

from repro.core.generator import ProtocolGenerator
from repro.errors import RestrictionViolation

SUBSET_OK = [
    "SPEC a1; b2; exit ENDSPEC",
    "SPEC (a1; b2; exit) [] (c1; d2; exit) ENDSPEC",
    "SPEC a1; exit ||| b2; exit ENDSPEC",
    "SPEC a1; (b2; exit [] c2; exit) ||| d3; exit ENDSPEC",
]

NEEDS_EXTENSION = [
    ("SPEC a1; exit >> b2; exit ENDSPEC", ">>"),
    ("SPEC a1; b2; exit [> d2; exit ENDSPEC", "[>"),
    ("SPEC a1; m2; exit |[m2]| m2; c3; exit ENDSPEC", "rendezvous"),
    ("SPEC A WHERE PROC A = a1; b2; exit END ENDSPEC", "process invocation"),
]


class TestSubsetMode:
    @pytest.mark.parametrize("service", SUBSET_OK)
    def test_subset_services_derive(self, service):
        generator = ProtocolGenerator(subset_1986=True)
        result = generator.derive(service)
        assert result.entities

    @pytest.mark.parametrize("service,keyword", NEEDS_EXTENSION)
    def test_extension_constructs_rejected(self, service, keyword):
        generator = ProtocolGenerator(subset_1986=True)
        with pytest.raises(RestrictionViolation, match="1986"):
            generator.derive(service)

    @pytest.mark.parametrize("service,keyword", NEEDS_EXTENSION)
    def test_full_algorithm_accepts_them(self, service, keyword):
        generator = ProtocolGenerator()
        assert generator.derive(service).entities

    @pytest.mark.parametrize("service", SUBSET_OK)
    def test_subset_and_full_agree_on_the_fragment(self, service):
        subset = ProtocolGenerator(subset_1986=True).derive(service)
        full = ProtocolGenerator().derive(service)
        assert subset.entities == full.entities
