"""Protocol Generator pipeline tests."""

import pytest

from repro.core.generator import ProtocolGenerator, derive_protocol
from repro.errors import DerivationError, RestrictionViolation
from repro.lotos.events import ServicePrimitive
from repro.lotos.parser import parse
from repro.lotos.syntax import ActionPrefix, Disable, Parallel
from repro.lotos.unparse import unparse


class TestPipeline:
    def test_accepts_text_and_specification(self):
        text = "SPEC a1; exit >> b2; exit ENDSPEC"
        from_text = derive_protocol(text)
        from_spec = derive_protocol(parse(text))
        assert from_text.entities == from_spec.entities

    def test_places_cover_all(self):
        result = derive_protocol("SPEC a1; b2; c3; exit ENDSPEC")
        assert result.places == [1, 2, 3]

    def test_single_place_service(self):
        result = derive_protocol("SPEC a1; b1; exit ENDSPEC")
        assert result.places == [1]
        # nothing to synchronize: the entity is the service itself
        # (modulo node numbering, which derived text does not carry).
        assert result.entity_text(1) == unparse(parse("SPEC a1; b1; exit ENDSPEC"))

    def test_prepared_tree_is_numbered(self):
        result = derive_protocol("SPEC a1; exit >> b2; exit ENDSPEC")
        assert all(
            node.nid is not None for node in result.prepared.walk_behaviours()
        )

    def test_disable_operands_normalized_in_prepared(self):
        from repro.lotos.expansion import is_action_prefix_form

        result = derive_protocol(
            "SPEC a1; c2; exit [> (d2; exit [] e2; exit) ENDSPEC"
        )
        for node in result.prepared.walk_behaviours():
            if isinstance(node, Disable):
                assert is_action_prefix_form(node.right)

    def test_full_sync_expanded(self):
        result = derive_protocol("SPEC a1; exit || a1; b1; exit ENDSPEC")
        for node in result.prepared.walk_behaviours():
            if isinstance(node, Parallel):
                assert not node.sync_all
                assert ServicePrimitive("a", 1) in node.sync

    def test_full_sync_over_process_rejected(self):
        with pytest.raises(DerivationError):
            derive_protocol(
                "SPEC B || B WHERE PROC B = a1; exit END ENDSPEC"
            )

    def test_entity_text_and_describe(self):
        result = derive_protocol("SPEC a1; exit >> b2; exit ENDSPEC")
        assert "s2(" in result.entity_text(1)
        description = result.describe()
        assert "place 1" in description and "place 2" in description

    def test_unknown_place_raises(self):
        result = derive_protocol("SPEC a1; exit >> b2; exit ENDSPEC")
        with pytest.raises(KeyError):
            result.entity(9)

    def test_derived_entities_parse_back(self):
        result = derive_protocol(
            """SPEC S [> interrupt3; exit WHERE
                 PROC S = (read1; push2; S >> pop2; write3; exit)
                       [] (eof1; make3; exit) END
               ENDSPEC"""
        )
        for place in result.places:
            text = unparse(result.entity(place), compact=False)
            assert parse(text) is not None


class TestModes:
    def test_strict_is_default(self):
        generator = ProtocolGenerator()
        with pytest.raises(RestrictionViolation):
            generator.derive("SPEC a1; b2; exit [] c2; d2; exit ENDSPEC")

    def test_naive_mode_has_no_messages(self):
        from repro.lotos.events import ReceiveAction, SendAction

        result = derive_protocol(
            "SPEC a1; exit >> b2; exit ENDSPEC", emit_sync=False
        )
        for place in result.places:
            for node in result.entity(place).walk_behaviours():
                if isinstance(node, ActionPrefix):
                    assert not isinstance(
                        node.event, (SendAction, ReceiveAction)
                    )

    def test_naive_wrapper(self):
        from repro.core.naive import derive_naive

        result = derive_naive("SPEC a1; exit >> b2; exit ENDSPEC")
        assert result.places == [1, 2]


class TestDeterminism:
    def test_derivation_is_deterministic(self):
        text = """SPEC S [> interrupt3; exit WHERE
            PROC S = (read1; push2; S >> pop2; write3; exit)
                  [] (eof1; make3; exit) END
        ENDSPEC"""
        first = derive_protocol(text)
        second = derive_protocol(text)
        assert first.entities == second.entities
        assert first.attrs.by_node == second.attrs.by_node
