"""Simplifier tests: the Section 4.2 elimination laws plus the two
vacuous-exit laws the paper's printed derivations use implicitly."""

import pytest

from repro.core.simplify import simplify, simplify_spec
from repro.errors import DerivationError
from repro.lotos.lts import build_lts
from repro.lotos.equivalence import observationally_congruent, weak_bisimilar
from repro.lotos.parser import parse, parse_behaviour
from repro.lotos.semantics import Semantics
from repro.lotos.syntax import (
    ActionPrefix,
    Choice,
    Disable,
    Empty,
    Enable,
    Exit,
    Parallel,
)

SEM = Semantics()


def prim(text):
    return parse_behaviour(text)


class TestEmptyElimination:
    def test_empty_enable_left(self):
        assert simplify(Enable(Empty(), prim("a1; exit"))) == prim("a1; exit")

    def test_empty_enable_right(self):
        assert simplify(Enable(prim("a1; exit"), Empty())) == prim("a1; exit")

    def test_empty_interleave(self):
        assert simplify(Parallel(Empty(), prim("a1; exit"))) == prim("a1; exit")
        assert simplify(Parallel(prim("a1; exit"), Empty())) == prim("a1; exit")

    def test_empty_empty_parallel(self):
        assert simplify(Parallel(Empty(), Empty())) == Empty()

    def test_empty_choice_pair(self):
        assert simplify(Choice(Empty(), Empty())) == Empty()

    def test_nested_elimination(self):
        node = Enable(Empty(), Enable(Empty(), Enable(Empty(), prim("a1; exit"))))
        assert simplify(node) == prim("a1; exit")

    def test_half_empty_choice_is_an_error(self):
        with pytest.raises(DerivationError):
            simplify(Choice(Empty(), prim("a1; exit")))

    def test_empty_disable_right(self):
        assert simplify(Disable(prim("a1; exit"), Empty())) == prim("a1; exit")

    def test_empty_disable_pair(self):
        assert simplify(Disable(Empty(), Empty())) == Empty()


class TestVacuousExit:
    def test_exit_enable_left(self):
        assert simplify(Enable(Exit(), prim("a1; exit"))) == prim("a1; exit")

    def test_exit_enable_right(self):
        assert simplify(Enable(prim("a1; exit"), Exit())) == prim("a1; exit")

    def test_exit_enable_right_is_congruent(self):
        # e >> exit = e is a genuine observation congruence.
        before = parse_behaviour("a1; exit >> exit")
        after = simplify(before)
        assert observationally_congruent(
            build_lts(before, SEM), build_lts(after, SEM)
        )

    def test_exit_enable_left_removes_internal_step(self):
        # exit >> e = i;e semantically; the simplifier strips the i (by
        # design — see the module docstring), so only weak equivalence
        # holds here.
        before = parse_behaviour("exit >> a1; exit")
        after = simplify(before)
        assert after == prim("a1; exit")
        assert weak_bisimilar(build_lts(before, SEM), build_lts(after, SEM))

    def test_exit_interleave_unit(self):
        assert simplify(Parallel(prim("a1; exit"), Exit())) == prim("a1; exit")
        assert simplify(Parallel(Exit(), prim("a1; exit"))) == prim("a1; exit")

    def test_exit_unit_is_strongly_safe(self):
        before = parse_behaviour("a1; exit ||| exit")
        assert observationally_congruent(
            build_lts(before, SEM), build_lts(simplify(before), SEM)
        )

    def test_exit_not_removed_under_synchronizing_parallel(self):
        node = parse_behaviour("a1; exit |[a1]| exit")
        assert simplify(node) == node


class TestChoiceIdempotence:
    def test_identical_branches_merge(self):
        node = Choice(prim("a1; exit"), prim("a1; exit"))
        assert simplify(node) == prim("a1; exit")

    def test_distinct_branches_kept(self):
        node = Choice(prim("a1; exit"), prim("b1; exit"))
        assert simplify(node) == node


class TestStructuralRecursion:
    def test_deep_rewrite(self):
        node = ActionPrefix(
            prim("a1; exit").event,
            Enable(Empty(), Parallel(prim("b1; exit"), Exit())),
        )
        assert simplify(node) == parse_behaviour("a1; b1; exit")

    def test_simplify_spec_covers_definitions(self):
        spec = parse("SPEC A WHERE PROC A = a1; exit END ENDSPEC")
        from repro.lotos.syntax import DefBlock, ProcessDefinition, Specification

        dirty = Specification(
            DefBlock(
                Enable(Empty(), spec.root.behaviour),
                (
                    ProcessDefinition(
                        "A", DefBlock(Enable(prim("a1; exit"), Empty()))
                    ),
                ),
            )
        )
        clean = simplify_spec(dirty)
        assert clean.root.behaviour == spec.root.behaviour
        assert clean.definitions[0].body.behaviour == prim("a1; exit")

    def test_simplification_is_idempotent(self):
        node = Enable(Empty(), Parallel(Exit(), Enable(prim("a1; exit"), Exit())))
        once = simplify(node)
        assert simplify(once) == once
