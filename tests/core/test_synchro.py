"""Table 4 synchronization-function tests."""

import pytest

from repro.core import synchro
from repro.core.attributes import evaluate_attributes, number_nodes
from repro.lotos.events import (
    ReceiveAction,
    SendAction,
    ServicePrimitive,
    SyncMessage,
)
from repro.lotos.parser import parse
from repro.lotos.scope import flatten_spec
from repro.lotos.syntax import (
    ActionPrefix,
    Empty,
    Exit,
    Parallel,
    ProcessRef,
)
from repro.lotos.unparse import unparse_behaviour


def prepared(text):
    spec = number_nodes(flatten_spec(parse(text)))
    return spec, evaluate_attributes(spec)


def events_of(fragment):
    return [
        node.event
        for node in fragment.walk()
        if isinstance(node, ActionPrefix)
    ]


class TestSendReceiveBuilders:
    def test_empty_set_yields_empty(self):
        assert isinstance(synchro.send_to([], 5), Empty)
        assert isinstance(synchro.receive_from([], 5), Empty)

    def test_single_send(self):
        fragment = synchro.send_to([2], 5)
        assert fragment == ActionPrefix(
            SendAction(dest=2, message=SyncMessage(5)), Exit()
        )

    def test_multi_send_is_interleaved_and_sorted(self):
        fragment = synchro.send_to([3, 2], 5)
        assert isinstance(fragment, Parallel) and fragment.is_interleaving()
        assert unparse_behaviour(fragment) == "s2(5); exit ||| s3(5); exit"

    def test_receive_rendering(self):
        fragment = synchro.receive_from([1, 3], 9)
        assert unparse_behaviour(fragment) == "r1(9); exit ||| r3(9); exit"

    def test_messages_are_symbolic(self):
        fragment = synchro.send_to([2], 5)
        assert fragment.event.message.occurrence is None


class TestSequentialSynchronization:
    """Synch_Left / Synch_Right for >> (the Example 4 situation)."""

    def setup_method(self):
        self.spec, self.attrs = prepared("SPEC a1; exit >> b2; exit ENDSPEC")
        enable = self.spec.root.behaviour
        self.left, self.right = enable.left, enable.right

    def test_ending_place_sends(self):
        fragment = synchro.synch_left(1, self.left, self.right, self.attrs)
        assert events_of(fragment) == [
            SendAction(dest=2, message=SyncMessage(self.left.nid))
        ]

    def test_non_ending_place_sends_nothing(self):
        assert isinstance(
            synchro.synch_left(2, self.left, self.right, self.attrs), Empty
        )

    def test_starting_place_receives(self):
        fragment = synchro.synch_right(2, self.left, self.right, self.attrs)
        assert events_of(fragment) == [
            ReceiveAction(src=1, message=SyncMessage(self.left.nid))
        ]

    def test_non_starting_place_receives_nothing(self):
        assert isinstance(
            synchro.synch_right(1, self.left, self.right, self.attrs), Empty
        )

    def test_local_pair_is_silent(self):
        # When EP(e1) == SP(e2) == {p} there is no message at all.
        spec, attrs = prepared("SPEC a1; exit >> b1; exit ENDSPEC")
        enable = spec.root.behaviour
        assert isinstance(synchro.synch_left(1, enable.left, enable.right, attrs), Empty)
        assert isinstance(synchro.synch_right(1, enable.left, enable.right, attrs), Empty)


class TestRel:
    """Termination synchronization under a disable (Section 3.3)."""

    def setup_method(self):
        self.spec, self.attrs = prepared(
            "SPEC a1; b2; c3; exit [> d3; exit ENDSPEC"
        )
        self.par = self.spec.root.behaviour.left

    def test_ending_place_broadcasts(self):
        fragment = synchro.rel(3, self.par, self.attrs)
        sends = [e for e in events_of(fragment) if isinstance(e, SendAction)]
        assert sorted(e.dest for e in sends) == [1, 2]

    def test_ending_place_receives_from_other_ending_places(self):
        # EP is the singleton {3}: nothing to collect.
        fragment = synchro.rel(3, self.par, self.attrs)
        receives = [e for e in events_of(fragment) if isinstance(e, ReceiveAction)]
        assert receives == []

    def test_non_ending_place_waits(self):
        fragment = synchro.rel(1, self.par, self.attrs)
        assert events_of(fragment) == [
            ReceiveAction(src=3, message=SyncMessage(self.par.nid))
        ]

    def test_multiple_ending_places(self):
        spec, attrs = prepared(
            "SPEC (a1; exit ||| b2; exit) [> (d1; exit [] d2; exit) ENDSPEC"
        )
        par = spec.root.behaviour.left
        fragment = synchro.rel(1, par, attrs)
        sends = [e for e in events_of(fragment) if isinstance(e, SendAction)]
        receives = [e for e in events_of(fragment) if isinstance(e, ReceiveAction)]
        assert sorted(e.dest for e in sends) == [2]
        assert sorted(e.src for e in receives) == [2]


class TestAlternative:
    """Empty-alternative avoidance (Section 3.2, Example 5 situation)."""

    def setup_method(self):
        # left alternative involves {1,2}; right involves {1,3}.
        self.spec, self.attrs = prepared(
            "SPEC (a1; b2; c1; exit) [] (e1; f3; g1; exit) ENDSPEC"
        )
        choice = self.spec.root.behaviour
        self.left, self.right = choice.left, choice.right

    def test_chooser_notifies_non_participants(self):
        fragment = synchro.alternative(1, self.left, self.right, self.attrs)
        assert events_of(fragment) == [
            SendAction(dest=3, message=SyncMessage(self.left.nid))
        ]

    def test_non_participant_waits_on_chooser(self):
        fragment = synchro.alternative(3, self.left, self.right, self.attrs)
        assert events_of(fragment) == [
            ReceiveAction(src=1, message=SyncMessage(self.left.nid))
        ]

    def test_participant_in_left_is_notified_when_right_is_taken(self):
        fragment = synchro.alternative(2, self.right, self.left, self.attrs)
        assert events_of(fragment) == [
            ReceiveAction(src=1, message=SyncMessage(self.right.nid))
        ]

    def test_participant_in_both_is_silent(self):
        spec, attrs = prepared("SPEC (a1; b2; exit) [] (c1; b2; exit) ENDSPEC")
        choice = spec.root.behaviour
        assert isinstance(
            synchro.alternative(2, choice.left, choice.right, attrs), Empty
        )

    def test_identical_alternatives_need_no_messages(self):
        spec, attrs = prepared("SPEC a1; b2; exit [] c1; d2; exit ENDSPEC")
        choice = spec.root.behaviour
        for place in (1, 2):
            assert isinstance(
                synchro.alternative(place, choice.left, choice.right, attrs), Empty
            )


class TestProcSynch:
    def setup_method(self):
        self.spec, self.attrs = prepared(
            "SPEC A >> c3; exit WHERE PROC A = a1; b2; exit END ENDSPEC"
        )
        self.ref = next(
            node
            for node in self.spec.walk_behaviours()
            if isinstance(node, ProcessRef)
        )

    def test_starting_place_broadcasts(self):
        fragment = synchro.proc_synch(1, self.ref, self.attrs)
        sends = events_of(fragment)
        assert sorted(e.dest for e in sends) == [2, 3]
        assert all(e.message.node == self.ref.nid for e in sends)

    def test_other_places_wait(self):
        for place in (2, 3):
            fragment = synchro.proc_synch(place, self.ref, self.attrs)
            assert events_of(fragment) == [
                ReceiveAction(src=1, message=SyncMessage(self.ref.nid))
            ]


class TestSelectAndProj:
    def test_select_filters_by_place(self):
        events = frozenset(
            {ServicePrimitive("a", 1), ServicePrimitive("b", 2), ServicePrimitive("c", 1)}
        )
        assert synchro.select(1, events) == frozenset(
            {ServicePrimitive("a", 1), ServicePrimitive("c", 1)}
        )
        assert synchro.select(3, events) == frozenset()

    def test_proj(self):
        event = ServicePrimitive("a", 2)
        assert synchro.proj(2, event) is event
        assert synchro.proj(1, event) is None


class TestUnnumberedTreeRejected:
    def test_missing_nid_raises(self):
        spec = flatten_spec(parse("SPEC a1; exit >> b2; exit ENDSPEC"))
        attrs = evaluate_attributes(number_nodes(spec))
        enable = spec.root.behaviour  # unnumbered original
        from repro.errors import ReproError

        with pytest.raises((ValueError, ReproError)):
            synchro.synch_left(1, enable.left, enable.right, attrs)
