"""Attribute evaluation tests: Table 2 rules, Fig. 4, fixed points (E3)."""

import pytest

from repro.core.attributes import (
    Attrs,
    evaluate_attributes,
    number_nodes,
    places_of,
)
from repro.errors import AttributeEvaluationError
from repro.lotos.parser import parse, parse_behaviour
from repro.lotos.scope import flatten_spec
from repro.lotos.syntax import (
    ActionPrefix,
    Disable,
    ProcessRef,
    Specification,
    DefBlock,
)


def attributed(text):
    spec = number_nodes(flatten_spec(parse(text)))
    return spec, evaluate_attributes(spec)


def root_attrs(text):
    spec, table = attributed(text)
    return table.of(spec.root.behaviour)


class TestNumbering:
    def test_preorder_and_uniqueness(self):
        spec = number_nodes(flatten_spec(parse(
            "SPEC a1; b2; exit [] c1; exit ENDSPEC"
        )))
        nids = [node.nid for node in spec.walk_behaviours()]
        assert nids == sorted(nids)
        assert len(set(nids)) == len(nids)
        assert nids[0] == 1

    def test_numbering_covers_definitions(self):
        spec = number_nodes(flatten_spec(parse(
            "SPEC A WHERE PROC A = a1; exit END ENDSPEC"
        )))
        all_nids = [node.nid for node in spec.walk_behaviours()]
        assert None not in all_nids

    def test_reference_site_equals_nid(self):
        spec = number_nodes(flatten_spec(parse("SPEC a1; B WHERE PROC B = b2; exit END ENDSPEC")))
        refs = [n for n in spec.walk_behaviours() if isinstance(n, ProcessRef)]
        assert refs and all(ref.site == ref.nid for ref in refs)


class TestBasicRules:
    def test_rule_17_event_exit(self):
        attrs = root_attrs("SPEC a1; exit ENDSPEC")
        assert attrs == Attrs.single(1)

    def test_rule_16_sequence(self):
        attrs = root_attrs("SPEC a1; b2; exit ENDSPEC")
        assert sorted(attrs.sp) == [1]
        assert sorted(attrs.ep) == [2]
        assert sorted(attrs.ap) == [1, 2]

    def test_choice_union(self):
        attrs = root_attrs("SPEC a1; b2; exit [] c1; d2; exit ENDSPEC")
        assert sorted(attrs.sp) == [1]
        assert sorted(attrs.ep) == [2]
        assert sorted(attrs.ap) == [1, 2]

    def test_parallel_union(self):
        attrs = root_attrs("SPEC a1; exit ||| b2; exit ENDSPEC")
        assert sorted(attrs.sp) == [1, 2]
        assert sorted(attrs.ep) == [1, 2]

    def test_enable(self):
        attrs = root_attrs("SPEC a1; exit >> b2; exit ENDSPEC")
        assert sorted(attrs.sp) == [1]
        assert sorted(attrs.ep) == [2]
        assert sorted(attrs.ap) == [1, 2]

    def test_disable(self):
        attrs = root_attrs("SPEC a1; b3; exit [> d3; exit ENDSPEC")
        assert sorted(attrs.sp) == [1, 3]
        assert sorted(attrs.ep) == [3]
        assert sorted(attrs.ap) == [1, 3]


class TestFixedPoint:
    def test_tail_recursion(self):
        spec, table = attributed(
            "SPEC A WHERE PROC A = a1; A [] b2; exit END ENDSPEC"
        )
        process = table.by_process["A"]
        assert sorted(process.sp) == [1, 2]
        assert sorted(process.ap) == [1, 2]

    def test_mutual_recursion(self):
        spec, table = attributed(
            "SPEC A WHERE PROC A = a1; B END PROC B = b2; A [] c3; exit END ENDSPEC"
        )
        assert sorted(table.by_process["A"].ap) == [1, 2, 3]
        assert sorted(table.by_process["B"].ap) == [1, 2, 3]

    def test_iteration_terminates_quickly(self):
        spec, table = attributed(
            "SPEC A WHERE PROC A = a1; B END PROC B = b2; C END "
            "PROC C = c3; A [] d4; exit END ENDSPEC"
        )
        assert table.iterations < 10

    def test_unused_process_not_in_all(self):
        spec, table = attributed(
            "SPEC a1; exit WHERE PROC Z = z9; exit END ENDSPEC"
        )
        assert sorted(table.all_places) == [1]
        # but syntactic helper still sees it
        assert 9 in places_of(spec)


class TestFig4Example3:
    """The paper's Figure 4: the attributed derivation tree of Example 3."""

    TEXT = """SPEC S [> interrupt3; exit WHERE
        PROC S = (read1; push2; S >> pop2; write3; exit)
              [] (eof1; make3; exit) END
    ENDSPEC"""

    @pytest.fixture(scope="class")
    def setup(self):
        return attributed(self.TEXT)

    def test_process_attributes(self, setup):
        _, table = setup
        process = table.by_process["S"]
        assert sorted(process.sp) == [1]
        assert sorted(process.ep) == [3]
        assert sorted(process.ap) == [1, 2, 3]

    def test_all_places(self, setup):
        _, table = setup
        assert sorted(table.all_places) == [1, 2, 3]

    def _node(self, spec, predicate):
        for node in spec.walk_behaviours():
            if predicate(node):
                return node
        raise AssertionError("node not found")

    def test_root_disable_attrs(self, setup):
        spec, table = setup
        root = spec.root.behaviour
        assert isinstance(root, Disable)
        attrs = table.of(root)
        assert (sorted(attrs.sp), sorted(attrs.ep), sorted(attrs.ap)) == (
            [1, 3],
            [3],
            [1, 2, 3],
        )

    def test_interrupt_prefix_attrs(self, setup):
        spec, table = setup
        node = self._node(
            spec,
            lambda n: isinstance(n, ActionPrefix) and str(n.event) == "interrupt3",
        )
        assert table.of(node) == Attrs.single(3)

    def test_left_branch_attrs(self, setup):
        # read1; push2; S : SP {1}, EP {3}, AP {1,2,3}  (Fig. 4 node 7)
        spec, table = setup
        node = self._node(
            spec,
            lambda n: isinstance(n, ActionPrefix) and str(n.event) == "read1",
        )
        attrs = table.of(node)
        assert (sorted(attrs.sp), sorted(attrs.ep), sorted(attrs.ap)) == (
            [1],
            [3],
            [1, 2, 3],
        )

    def test_pop_branch_attrs(self, setup):
        # pop2; write3; exit : SP {2}, EP {3}, AP {2,3}  (Fig. 4 node 10)
        spec, table = setup
        node = self._node(
            spec,
            lambda n: isinstance(n, ActionPrefix) and str(n.event) == "pop2",
        )
        attrs = table.of(node)
        assert (sorted(attrs.sp), sorted(attrs.ep), sorted(attrs.ap)) == (
            [2],
            [3],
            [2, 3],
        )

    def test_eof_branch_attrs(self, setup):
        # eof1; make3; exit : SP {1}, EP {3}, AP {1,3}  (Fig. 4 node 16)
        spec, table = setup
        node = self._node(
            spec,
            lambda n: isinstance(n, ActionPrefix) and str(n.event) == "eof1",
        )
        attrs = table.of(node)
        assert (sorted(attrs.sp), sorted(attrs.ep), sorted(attrs.ap)) == (
            [1],
            [3],
            [1, 3],
        )


class TestErrors:
    def test_internal_action_is_transparent(self):
        # Illegal in services (the restriction checker flags it), but the
        # attribute pass stays total: 'i' contributes no place.
        attrs = root_attrs("SPEC i; a1; exit ENDSPEC")
        assert attrs == Attrs.single(1)

    def test_send_is_transparent(self):
        attrs = root_attrs("SPEC s2(1); a1; exit ENDSPEC")
        assert attrs == Attrs.single(1)

    def test_undefined_process(self):
        spec = number_nodes(
            Specification(DefBlock(ProcessRef("Ghost")))
        )
        with pytest.raises(AttributeEvaluationError):
            evaluate_attributes(spec)

    def test_unnumbered_node_rejected(self):
        spec = flatten_spec(parse("SPEC a1; exit ENDSPEC"))
        table = evaluate_attributes(number_nodes(spec))
        with pytest.raises(AttributeEvaluationError):
            table.of(parse_behaviour("a1; exit"))
