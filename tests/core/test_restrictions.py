"""Restriction-checker tests: R1, R2, R3, grammar conditions, guardedness."""

import pytest

from repro.core.attributes import evaluate_attributes, number_nodes
from repro.core.generator import derive_protocol
from repro.core.restrictions import check_service, raise_on_violations
from repro.errors import RestrictionViolation
from repro.lotos.parser import parse
from repro.lotos.scope import flatten_spec


def violations_of(text):
    spec = number_nodes(flatten_spec(parse(text)))
    return check_service(spec, evaluate_attributes(spec))


def rules_of(text):
    return sorted({v.rule for v in violations_of(text)})


class TestR1:
    def test_ok_same_single_starting_place(self):
        assert rules_of("SPEC a1; b2; exit [] c1; d2; exit ENDSPEC") == []

    def test_different_starting_places(self):
        assert "R1" in rules_of("SPEC a1; b2; exit [] c2; b2; exit ENDSPEC")

    def test_multiple_starting_places(self):
        # parallel inside an alternative starts at two places
        assert "R1" in rules_of(
            "SPEC (a1; c3; exit ||| b2; c3; exit) [] (d1; c3; exit) ENDSPEC"
        )


class TestR2:
    def test_choice_ending_places_must_match(self):
        assert "R2" in rules_of("SPEC a1; b2; exit [] a1; c3; exit ENDSPEC")

    def test_disable_ending_places_must_match(self):
        assert "R2" in rules_of("SPEC a1; b2; exit [> d2; c3; exit ENDSPEC")

    def test_conforming_disable(self):
        assert rules_of("SPEC a1; b2; exit [> d2; exit ENDSPEC") == []


class TestR3:
    def test_disabling_event_outside_ending_places(self):
        # EP(normal) = {3} but the disabling event starts at 1.
        result = rules_of("SPEC a1; c3; exit [> d1; c3; exit ENDSPEC")
        assert "R3" in result

    def test_disabling_event_at_ending_place_ok(self):
        assert rules_of("SPEC a1; c3; exit [> d3; exit ENDSPEC") == []


class TestGrammar:
    def test_send_in_service_rejected(self):
        assert "GRAMMAR" in rules_of("SPEC s2(1); exit >> b2; exit ENDSPEC")

    def test_stop_rejected(self):
        assert "GRAMMAR" in rules_of("SPEC a1; stop ENDSPEC")

    def test_hide_rejected(self):
        assert "GRAMMAR" in rules_of("SPEC hide a1 in a1; b2; exit ENDSPEC")

    def test_apf_detected_without_preprocessing(self):
        # check_service run directly on an unprepared tree flags the
        # non-prefix-form disable operand.
        assert "APF" in rules_of(
            "SPEC a1; exit [> (b2; exit ||| c3; exit) ENDSPEC"
        )


class TestGuardedness:
    def test_direct_unguarded_recursion(self):
        assert "GUARD" in rules_of("SPEC A WHERE PROC A = A END ENDSPEC")

    def test_unguarded_through_choice(self):
        assert "GUARD" in rules_of(
            "SPEC A WHERE PROC A = A [] a1; exit END ENDSPEC"
        )

    def test_mutual_unguarded(self):
        assert "GUARD" in rules_of(
            "SPEC A WHERE PROC A = B END PROC B = A END ENDSPEC"
        )

    def test_guarded_recursion_ok(self):
        assert rules_of("SPEC A WHERE PROC A = a1; A END ENDSPEC") == []

    def test_guarded_through_enable(self):
        # A is reachable only after a1;exit terminates: guarded.
        assert rules_of(
            "SPEC A WHERE PROC A = a1; exit >> A END ENDSPEC"
        ) == []

    def test_unguarded_through_exit_enable(self):
        assert "GUARD" in rules_of(
            "SPEC A WHERE PROC A = exit >> A END ENDSPEC"
        )


class TestGeneratorIntegration:
    def test_strict_mode_raises(self):
        with pytest.raises(RestrictionViolation) as excinfo:
            derive_protocol("SPEC a1; b2; exit [] c2; b2; exit ENDSPEC")
        assert excinfo.value.rule == "R1"

    def test_lenient_mode_records(self):
        result = derive_protocol(
            "SPEC a1; b2; exit [] c2; b2; exit ENDSPEC", strict=False
        )
        assert result.violations
        assert result.entities  # derived anyway

    def test_raise_on_violations_summarizes(self):
        violations = violations_of("SPEC a1; b2; exit [] a1; c3; exit ENDSPEC")
        with pytest.raises(RestrictionViolation, match="R2"):
            raise_on_violations(violations)

    def test_conforming_spec_passes(self):
        result = derive_protocol("SPEC a1; exit >> b2; exit ENDSPEC")
        assert result.violations == []
