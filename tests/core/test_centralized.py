"""Centralized "trivial solution" baseline tests (E10)."""

import pytest

from repro.core.centralized import (
    derive_centralized,
    static_message_count,
)
from repro.core.generator import derive_protocol
from repro.errors import DerivationError
from repro.runtime import build_system, check_run, random_run

SERVICE = "SPEC a1; b2; c3; a1; b2; exit ENDSPEC"


class TestConstruction:
    def test_default_server_is_smallest_place(self):
        result = derive_centralized(SERVICE)
        assert result.server == 1
        assert set(result.entities) == {1, 2, 3}

    def test_explicit_server(self):
        result = derive_centralized(SERVICE, server=2)
        assert result.server == 2

    def test_invalid_server_rejected(self):
        with pytest.raises(DerivationError):
            derive_centralized(SERVICE, server=9)

    def test_server_keeps_local_events_inline(self):
        from repro.lotos.events import ServicePrimitive
        from repro.lotos.syntax import ActionPrefix

        result = derive_centralized(SERVICE)
        events = [
            node.event
            for node in result.entities[1].root.behaviour.walk()
            if isinstance(node, ActionPrefix)
            and isinstance(node.event, ServicePrimitive)
        ]
        assert all(event.place == 1 for event in events)

    def test_clients_loop_over_their_primitives(self):
        result = derive_centralized(SERVICE)
        client = result.entities[2]
        assert [d.name for d in client.definitions] == ["Client"]

    def test_rendezvous_sync_rejected(self):
        with pytest.raises(DerivationError, match="rendezvous"):
            derive_centralized("SPEC a1; m2; exit |[m2]| m2; c3; exit ENDSPEC")


class TestExecution:
    def test_produces_the_service_trace(self):
        central = derive_centralized(SERVICE)
        system = build_system(central.entities)
        for seed in range(10):
            run = random_run(system, seed=seed, max_steps=1_000)
            verdict = check_run(SERVICE, run)
            assert run.terminated and verdict.ok, f"seed {seed}: {run}"

    def test_two_messages_per_remote_event_plus_halt(self):
        central = derive_centralized(SERVICE)
        system = build_system(central.entities)
        run = random_run(system, seed=0, max_steps=1_000)
        # 4 remote primitives (b2, c3, b2... wait: b2, c3, b2) -> the
        # service has b2, c3, b2: 3 remote occurrences? a1 twice local.
        # messages = 2 * remote + halts
        prepared = derive_protocol(SERVICE).prepared
        assert run.messages_sent == static_message_count(central, prepared)

    def test_costs_more_than_distributed_on_pipelines(self):
        # A pipeline visiting every place repeatedly: the distributed
        # derivation needs 1 message per hop, the centralized one 2 per
        # remote event (plus halt broadcast).  This is the paper's
        # motivating comparison measured.
        text = "SPEC a1; b2; c3; b2; c3; b2; exit ENDSPEC"
        distributed = derive_protocol(text)
        central = derive_centralized(text)
        dist_run = random_run(build_system(distributed.entities), seed=3)
        cent_run = random_run(build_system(central.entities), seed=3)
        assert dist_run.terminated and cent_run.terminated
        assert dist_run.messages_sent < cent_run.messages_sent

    def test_server_load_dominates(self):
        # Every message involves the server in the centralized scheme.
        central = derive_centralized(SERVICE)
        system = build_system(central.entities, hide=False)
        from repro.lotos.events import ReceiveAction, SendAction

        state = system.initial
        server_touches = 0
        total = 0
        import random

        rng = random.Random(1)
        for _ in range(500):
            transitions = system.transitions(state)
            if not transitions:
                break
            label, state = transitions[rng.randrange(len(transitions))]
            if isinstance(label, (SendAction, ReceiveAction)):
                total += 1
                src = label.src if isinstance(label, SendAction) else label.src
                dest = label.dest
                if central.server in (src, dest):
                    server_touches += 1
        assert total > 0
        assert server_touches == total  # all traffic flows through the server
