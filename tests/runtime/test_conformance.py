"""Conformance-checker tests."""

from repro.core.generator import derive_protocol
from repro.lotos.events import ServicePrimitive
from repro.runtime.conformance import check_run, check_trace
from repro.runtime.executor import Run, random_run
from repro.runtime.system import build_system

SERVICE = "SPEC a1; exit >> b2; exit ENDSPEC"


def prim(name, place):
    return ServicePrimitive(name, place)


class TestCheckTrace:
    def test_valid_trace(self):
        assert check_trace(SERVICE, [prim("a", 1), prim("b", 2)])

    def test_valid_trace_with_termination(self):
        assert check_trace(SERVICE, [prim("a", 1), prim("b", 2)], terminated=True)

    def test_empty_trace_is_valid(self):
        assert check_trace(SERVICE, [])

    def test_misordered_trace_rejected(self):
        verdict = check_trace(SERVICE, [prim("b", 2), prim("a", 1)])
        assert not verdict
        assert "refuses" in verdict.reason

    def test_premature_termination_rejected(self):
        verdict = check_trace(SERVICE, [prim("a", 1)], terminated=True)
        assert not verdict

    def test_foreign_event_rejected(self):
        assert not check_trace(SERVICE, [prim("z", 9)])

    def test_accepts_parsed_specification(self):
        from repro.lotos.parser import parse

        assert check_trace(parse(SERVICE), [prim("a", 1)])

    def test_verdict_rendering(self):
        good = check_trace(SERVICE, [prim("a", 1)])
        bad = check_trace(SERVICE, [prim("b", 2)])
        assert "conformant" in str(good)
        assert "VIOLATION" in str(bad)


class TestCheckRun:
    def test_conformant_run(self):
        result = derive_protocol(SERVICE)
        system = build_system(result.entities)
        run = random_run(system, seed=0)
        assert check_run(SERVICE, run)

    def test_deadlock_is_always_a_violation(self):
        run = Run(trace=[prim("a", 1)], deadlocked=True)
        verdict = check_run(SERVICE, run)
        assert not verdict
        assert "deadlock" in verdict.reason

    def test_truncated_run_flagged_when_progress_required(self):
        run = Run(trace=[prim("a", 1)], truncated=True)
        assert not check_run(SERVICE, run, require_progress=True)
        assert check_run(SERVICE, run, require_progress=False)

    def test_naive_projection_caught(self):
        result = derive_protocol(SERVICE, emit_sync=False)
        system = build_system(result.entities)
        violations = 0
        for seed in range(20):
            run = random_run(system, seed=seed)
            if not check_run(SERVICE, run):
                violations += 1
        assert violations > 0
