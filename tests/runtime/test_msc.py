"""Message-sequence-chart rendering tests."""

import pytest

from repro.core.generator import derive_protocol
from repro.runtime.executor import random_run, replay
from repro.runtime.msc import record_schedule
from repro.runtime.system import build_system


@pytest.fixture()
def pipeline_system():
    result = derive_protocol("SPEC a1; b2; c3; exit ENDSPEC")
    return build_system(result.entities, hide=False)


class TestRecording:
    def test_requires_visible_messages(self):
        result = derive_protocol("SPEC a1; b2; exit ENDSPEC")
        hidden = build_system(result.entities, hide=True)
        with pytest.raises(ValueError, match="hide=False"):
            record_schedule(hidden)

    def test_event_kinds(self, pipeline_system):
        chart = record_schedule(pipeline_system, seed=0)
        kinds = [event.kind for event in chart.events]
        assert kinds.count("primitive") == 3
        assert kinds.count("send") == 2
        assert kinds.count("receive") == 2
        assert kinds[-1] == "delta"

    def test_send_precedes_matching_receive(self, pipeline_system):
        chart = record_schedule(pipeline_system, seed=3)
        sends = {}
        for position, event in enumerate(chart.events):
            if event.kind == "send":
                sends[event.label.message] = position
            elif event.kind == "receive":
                assert sends[event.label.message] < position

    def test_deterministic_per_seed(self, pipeline_system):
        first = record_schedule(pipeline_system, seed=7)
        second = record_schedule(pipeline_system, seed=7)
        assert first.render() == second.render()


class TestScheduleReplay:
    """An MSC drawn from a Run's recorded schedule is the run's chart."""

    def test_recorded_schedule_matches_the_seeded_chart(self, pipeline_system):
        run = random_run(pipeline_system, seed=11, max_steps=50)
        seeded = record_schedule(pipeline_system, seed=11, max_steps=50)
        replayed = record_schedule(pipeline_system, schedule=run.schedule)
        assert replayed.render() == seeded.render()

    def test_schedule_replay_matches_executor_replay(self, pipeline_system):
        """The chart and the executor agree on what the schedule does."""
        run = random_run(pipeline_system, seed=4, max_steps=50)
        again = replay(pipeline_system, run.schedule)
        chart = record_schedule(pipeline_system, schedule=run.schedule)
        primitives = [
            event.label for event in chart.events if event.kind == "primitive"
        ]
        assert primitives == list(again.observable) == list(run.observable)
        sends = sum(1 for event in chart.events if event.kind == "send")
        assert sends == run.messages_sent

    def test_schedule_and_chooser_are_mutually_exclusive(
        self, pipeline_system
    ):
        with pytest.raises(ValueError, match="not both"):
            record_schedule(
                pipeline_system, schedule=[0], chooser=lambda s, t: 0
            )

    def test_misfitting_schedule_raises_index_error(self, pipeline_system):
        with pytest.raises(IndexError, match="schedule step"):
            record_schedule(pipeline_system, schedule=[99])

    def test_example3_run_chart_is_reproducible(self):
        from repro import workloads

        result = derive_protocol(workloads.EXAMPLE3_FILE_TRANSFER)
        system = build_system(
            result.entities,
            hide=False,
            discipline="selective",
            require_empty_at_exit=False,
        )
        run = random_run(system, seed=2, max_steps=200)
        chart = record_schedule(system, schedule=run.schedule)
        assert chart.render() == record_schedule(
            system, seed=2, max_steps=200
        ).render()


class TestRendering:
    def test_header_names_all_places(self, pipeline_system):
        text = record_schedule(pipeline_system, seed=0).render()
        header = text.splitlines()[0]
        for place in (1, 2, 3):
            assert str(place) in header

    def test_primitives_appear_on_their_lifeline(self, pipeline_system):
        text = record_schedule(pipeline_system, seed=0).render()
        assert "a1" in text and "b2" in text and "c3" in text

    def test_messages_identified(self, pipeline_system):
        text = record_schedule(pipeline_system, seed=0).render()
        assert "send s^1_2(" in text
        assert "recv r^2_1(" in text

    def test_termination_row(self, pipeline_system):
        text = record_schedule(pipeline_system, seed=0).render()
        assert "terminated" in text

    def test_example3_msc_renders(self):
        from repro import workloads

        result = derive_protocol(workloads.EXAMPLE3_FILE_TRANSFER)
        system = build_system(
            result.entities,
            hide=False,
            discipline="selective",
            require_empty_at_exit=False,
        )
        chart = record_schedule(system, seed=1, max_steps=200)
        assert chart.events
        assert chart.render()
