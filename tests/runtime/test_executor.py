"""Executor tests: seeded schedules, statistics, choosers."""

from repro.core.generator import derive_protocol
from repro.runtime.executor import Run, random_run, run_many
from repro.runtime.system import build_system


class TestRandomRun:
    def test_deterministic_per_seed(self, example3):
        system = build_system(
            example3.entities, discipline="selective", require_empty_at_exit=False
        )
        first = random_run(system, seed=42, max_steps=300)
        second = random_run(system, seed=42, max_steps=300)
        assert first.trace == second.trace
        assert first.steps == second.steps

    def test_terminates_cleanly(self, example4):
        system = build_system(example4.entities)
        run = random_run(system, seed=0)
        assert run.terminated
        assert not run.deadlocked
        assert not run.truncated
        assert [str(e) for e in run.trace] == ["a1", "b2"]

    def test_message_statistics(self, example4):
        system = build_system(example4.entities)
        run = random_run(system, seed=0)
        assert run.messages_sent == 1
        assert run.messages_received == 1

    def test_step_budget(self, example2):
        system = build_system(example2.entities)

        def always_recurse(state, transitions):
            for index, (label, _) in enumerate(transitions):
                if str(label) in ("a1", "i"):
                    return index
            return 0

        run = random_run(system, seed=0, max_steps=30, chooser=always_recurse)
        assert run.truncated
        assert not run.terminated

    def test_chooser_override(self, example3):
        system = build_system(
            example3.entities, discipline="selective", require_empty_at_exit=False
        )

        def interrupt_first(state, transitions):
            for index, (label, _) in enumerate(transitions):
                if str(label) == "interrupt3":
                    return index
            return 0

        run = random_run(system, seed=0, max_steps=300, chooser=interrupt_first)
        assert any(str(e) == "interrupt3" for e in run.trace)

    def test_run_rendering(self, example4):
        system = build_system(example4.entities)
        run = random_run(system, seed=0)
        text = str(run)
        assert "terminated" in text and "a1 . b2" in text

    def test_run_many_batches(self, example4):
        system = build_system(example4.entities)
        runs = run_many(system, runs=5)
        assert len(runs) == 5
        assert all(isinstance(r, Run) and r.terminated for r in runs)


class TestDeadlockDetection:
    def test_naive_projection_can_deadlock_or_misorder(self):
        # Without synchronization, b2 can fire before a1 — and the run
        # still "terminates".  The conformance check flags it; here we
        # just observe the misordering is reachable.
        result = derive_protocol(
            "SPEC a1; exit >> b2; exit ENDSPEC", emit_sync=False
        )
        system = build_system(result.entities)
        traces = set()
        for seed in range(20):
            run = random_run(system, seed=seed)
            traces.add(tuple(str(e) for e in run.trace))
        assert ("b2", "a1") in traces
