"""Schedule recording and deterministic replay tests."""

import pytest

from repro.core.generator import derive_protocol
from repro.runtime import build_system, random_run
from repro.runtime.executor import replay


@pytest.fixture()
def pipeline():
    return derive_protocol("SPEC a1; b2; c3; d1; exit ENDSPEC")


class TestReplay:
    def test_replay_reproduces_trace(self, pipeline):
        original = random_run(build_system(pipeline.entities), seed=17)
        again = replay(build_system(pipeline.entities), original.schedule)
        assert [str(e) for e in again.trace] == [str(e) for e in original.trace]
        assert again.terminated == original.terminated
        assert again.messages_sent == original.messages_sent

    def test_schedule_length_equals_steps(self, pipeline):
        run = random_run(build_system(pipeline.entities), seed=3)
        assert len(run.schedule) == run.steps

    def test_replay_across_many_seeds(self, pipeline):
        for seed in range(10):
            original = random_run(build_system(pipeline.entities), seed=seed)
            again = replay(build_system(pipeline.entities), original.schedule)
            assert again.trace == original.trace

    def test_mismatched_schedule_detected(self, pipeline):
        # A schedule from a different (larger) system eventually picks an
        # index that does not exist here.
        bigger = derive_protocol("SPEC a1; exit ||| b2; exit ||| c3; exit ENDSPEC")
        donor = random_run(build_system(bigger.entities), seed=2)
        victim = build_system(derive_protocol("SPEC a1; b1; exit ENDSPEC").entities)
        try:
            run = replay(victim, donor.schedule)
        except IndexError:
            return
        # If it happened to fit, it must at least be a valid execution.
        assert not run.deadlocked or run.trace is not None

    def test_replay_with_disable(self):
        from repro import workloads

        result = derive_protocol(workloads.EXAMPLE3_FILE_TRANSFER)

        def build():
            return build_system(
                result.entities,
                discipline="selective",
                require_empty_at_exit=False,
            )

        original = random_run(build(), seed=11, max_steps=300)
        again = replay(build(), original.schedule)
        assert again.trace == original.trace


class TestEntityAutomaton:
    def test_shapes(self, pipeline):
        from repro.analysis import entity_automaton

        automaton = entity_automaton(pipeline.entity(2))
        labels = {str(label) for label in automaton.labels()}
        assert "b2" in labels
        assert any(label.startswith("r1(") for label in labels)
        assert any(label.startswith("s3(") for label in labels)
        assert automaton.complete

    def test_recursive_entity_is_finite_without_occurrences(self, pipeline):
        # The entity automaton abstracts from occurrence paths
        # (bind_occurrences=False), so even the a^n b^n entity is a small
        # finite machine — the thing an implementor would actually code.
        from repro import workloads
        from repro.analysis import entity_automaton

        result = derive_protocol(workloads.EXAMPLE2_COUNTING)
        automaton = entity_automaton(result.entity(1), max_states=50)
        assert automaton.complete
        assert automaton.num_states <= 12
