"""Distributed-system composition tests."""

import pytest

from repro.core.generator import derive_protocol
from repro.lotos.events import (
    Delta,
    ReceiveAction,
    SendAction,
)
from repro.runtime.system import build_system


def transitions_by_label(system, state=None):
    state = state if state is not None else system.initial
    result = {}
    for label, target in system.transitions(state):
        result.setdefault(str(label), []).append(target)
    return result


class TestComposition:
    def test_initial_moves_of_sequence(self, example4):
        system = build_system(example4.entities)
        moves = transitions_by_label(system)
        assert set(moves) == {"a1"}  # b2 must wait for the message

    def _walk_first(self, system, max_steps=20):
        """Follow the first enabled transition; return the label path."""
        labels = []
        state = system.initial
        for _ in range(max_steps):
            transitions = system.transitions(state)
            if not transitions:
                break
            label, state = transitions[0]
            labels.append(label)
        return labels, state

    def test_message_flow(self, example4):
        system = build_system(example4.entities, hide=False)
        labels, final = self._walk_first(system)
        rendered = [str(label) for label in labels]
        # a1, then the message transfer, then b2, then termination —
        # with internal (vacuous-exit) steps interspersed.
        observable = [text for text in rendered if text != "i"]
        assert observable[0] == "a1"
        assert any(isinstance(label, SendAction) for label in labels)
        assert any(isinstance(label, ReceiveAction) for label in labels)
        send_at = next(i for i, l in enumerate(labels) if isinstance(l, SendAction))
        receive_at = next(
            i for i, l in enumerate(labels) if isinstance(l, ReceiveAction)
        )
        b2_at = rendered.index("b2")
        assert rendered.index("a1") < send_at < receive_at < b2_at

    def test_global_delta_requires_all_entities(self, example4):
        system = build_system(example4.entities)
        labels, final = self._walk_first(system)
        assert isinstance(labels[-1], Delta)
        assert system.is_terminated(final)
        assert not system.transitions(final)
        # delta never appears before b2:
        rendered = [str(label) for label in labels]
        assert rendered.index("b2") < rendered.index("delta")

    def test_unhidden_messages_visible(self, example4):
        system = build_system(example4.entities, hide=False)
        labels, _ = self._walk_first(system)
        send = next(label for label in labels if isinstance(label, SendAction))
        receive = next(label for label in labels if isinstance(label, ReceiveAction))
        assert send.src == 1 and send.dest == 2
        assert receive.dest == 2 and receive.src == 1
        assert send.message == receive.message

    def test_capacity_one_blocks_second_send(self):
        # place 1 broadcasts two messages to 2 and 3 plus... craft a
        # service where one entity sends twice to the same peer quickly.
        result = derive_protocol("SPEC a1; b2; c1; d2; exit ENDSPEC")
        system = build_system(result.entities, capacity=1)
        # run to completion; capacity 1 must not deadlock this pipeline
        from repro.runtime.executor import random_run

        run = random_run(system, seed=0)
        assert run.terminated and not run.deadlocked

    def test_require_empty_at_exit_blocks_stale_messages(self):
        # Construct a system state artificially by disabling the flag and
        # checking termination is gated.
        result = derive_protocol("SPEC a1; exit >> b2; exit ENDSPEC")
        system = build_system(result.entities, require_empty_at_exit=True)
        # walk: a1 . send . receive . b2 . delta — the delta appears only
        # after the receive drained the channel, which the previous tests
        # already verify; here check the negative: with a pending message
        # delta must not be offered.  (Reach the state after 'send'.)
        state = system.initial
        (state,) = transitions_by_label(system, state)["a1"]
        (state,) = transitions_by_label(system, state)["i"]
        assert "delta" not in transitions_by_label(system, state)

    def test_mismatched_entities_rejected(self):
        from repro.errors import ExecutionError
        from repro.runtime.system import DistributedSystem, SystemState
        from repro.medium.state import make_medium
        from repro.lotos.semantics import Semantics
        from repro.lotos.syntax import Exit

        with pytest.raises(ExecutionError):
            DistributedSystem(
                places=[1, 2],
                semantics=[Semantics()],
                initial=SystemState((Exit(),), make_medium()),
            )


class TestOccurrences:
    def test_occurrence_free_mode_is_finite_for_tail_recursion(self):
        result = derive_protocol(
            "SPEC A WHERE PROC A = a1; b2; A [] c1; exit END ENDSPEC"
        )
        from repro.lotos.lts import build_lts

        system = build_system(result.entities, use_occurrences=False)
        lts = build_lts(system.initial, system, max_states=5_000)
        assert lts.complete

    def test_occurrence_mode_distinguishes_instances(self, example7):
        # With occurrences, the messages of the two B instances differ.
        system = build_system(example7.entities, hide=False)
        seen_occurrences = set()
        frontier = [system.initial]
        visited = set()
        for _ in range(2_000):
            if not frontier:
                break
            state = frontier.pop()
            if state in visited:
                continue
            visited.add(state)
            for label, target in system.transitions(state):
                if isinstance(label, SendAction):
                    seen_occurrences.add(label.message.occurrence)
                frontier.append(target)
        assert len(seen_occurrences) > 1
