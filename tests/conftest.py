"""Shared fixtures: the paper's example services, pre-derived.

Derivation results are session-scoped — they are immutable and several
test modules exercise different aspects of the same examples.
"""

from __future__ import annotations

import pytest

from repro.core.generator import DerivationResult, derive_protocol

#: Example 2 (Section 2): the non-regular (a1)^n (b2)^n service.
EXAMPLE2 = """
SPEC A WHERE
  PROC A = (a1; A >> b2; exit) [] (a1; b2; exit)
END ENDSPEC
"""

#: Example 3 (Section 2): reversed file copy with interrupt.
EXAMPLE3 = """
SPEC S [> interrupt3; exit WHERE
  PROC S = (read1; push2; S >> pop2; write3; exit)
        [] (eof1; make3; exit) END
ENDSPEC
"""

#: Example 4 (Section 3.1): the minimal cross-place sequence.
EXAMPLE4 = "SPEC a1; exit >> b2; exit ENDSPEC"

#: Example 5 (Section 3.2): recursion inside a choice — the situation
#: that motivates the Alternative synchronization.
EXAMPLE5 = """
SPEC A WHERE
  PROC A = (a1; b2; A >> c2; d3; exit) [] (e1; f3; exit)
END ENDSPEC
"""

#: Example 6 (Section 3.3): disabling a three-place sequence.  The
#: paper's sketch writes "(d3; ... exit)"; the elided part must end at
#: place 3 to satisfy R2.
EXAMPLE6 = "SPEC (a1; b2; c3; exit) [> (d3; exit) ENDSPEC"

#: Example 7 (Section 3.5): two instances of the same process.
EXAMPLE7 = """
SPEC B ||| B WHERE
  PROC B = (a1; (b2; exit ||| c3; exit)) >> g4; exit
END ENDSPEC
"""


@pytest.fixture(scope="session")
def example2() -> DerivationResult:
    return derive_protocol(EXAMPLE2)


@pytest.fixture(scope="session")
def example3() -> DerivationResult:
    return derive_protocol(EXAMPLE3)


@pytest.fixture(scope="session")
def example4() -> DerivationResult:
    return derive_protocol(EXAMPLE4)


@pytest.fixture(scope="session")
def example5() -> DerivationResult:
    return derive_protocol(EXAMPLE5)


@pytest.fixture(scope="session")
def example6() -> DerivationResult:
    return derive_protocol(EXAMPLE6)


@pytest.fixture(scope="session")
def example7() -> DerivationResult:
    return derive_protocol(EXAMPLE7)
