"""The Section 5 correctness theorem, checked mechanically (E9).

    S ≈ hide G in ((T1(S) ||| T2(S) ||| ... ||| Tn(S)) |[G]| Medium)

For disable-free, non-recursive services the check is exact (weak
bisimulation + the rooted condition = observation congruence ≈); for
recursive services it is depth-bounded; for disable-containing services
the paper itself only claims the modified semantics of Section 3.3 and we
assert exactly the deviations it documents.
"""

import pytest

from repro.core.generator import derive_protocol
from repro.verification.checker import safety_report, verify_derivation

#: Disable-free services spanning every other operator (the theorem's
#: hypothesis class), all satisfying R1/R2.
EXACT_CASES = [
    "SPEC a1; exit ENDSPEC",
    "SPEC a1; b2; exit ENDSPEC",
    "SPEC a1; b2; c3; d1; exit ENDSPEC",
    "SPEC a1; exit >> b2; exit ENDSPEC",
    "SPEC a1; exit >> b2; exit >> c3; exit ENDSPEC",
    "SPEC (a1; b2; exit) [] (c1; d2; exit) ENDSPEC",
    "SPEC a1; (b2; exit [] c2; exit) ENDSPEC",
    "SPEC (a1; exit ||| b2; exit) >> c3; exit ENDSPEC",
    "SPEC a1; exit ||| b2; exit ||| c3; exit ENDSPEC",
    "SPEC (a1; m2; exit) |[m2]| (m2; c3; exit) ENDSPEC",
    "SPEC a1; exit || a1; b1; exit ENDSPEC",
    "SPEC (a1; b2; B) >> d3; exit WHERE PROC B = e2; exit END ENDSPEC",
    "SPEC (a1; b2; exit) [] (c1; b2; exit) >> d3; exit ENDSPEC",
]


class TestExactTheorem:
    @pytest.mark.parametrize("service", EXACT_CASES)
    def test_observation_congruence(self, service):
        report = verify_derivation(service)
        assert report.method == "weak-bisimulation", str(report)
        assert report.equivalent, str(report)
        assert report.congruent, str(report)

    @pytest.mark.parametrize(
        "capacity,discipline",
        [(None, "fifo"), (1, "fifo"), (None, "selective"), (2, "selective")],
    )
    def test_robust_to_medium_configuration(self, capacity, discipline):
        report = verify_derivation(
            "SPEC (a1; exit ||| b2; exit) >> c3; exit ENDSPEC",
            capacity=capacity,
            discipline=discipline,
        )
        assert report.equivalent and report.congruent, str(report)

    def test_accepts_existing_result(self):
        result = derive_protocol("SPEC a1; b2; exit ENDSPEC")
        report = verify_derivation(result)
        assert report.equivalent

    def test_initial_invocation_weakens_congruence_to_weak_bisimulation(self):
        """Reproduction finding (documented in EXPERIMENTS.md).

        When the service's very first construct is a process invocation,
        the derived system must exchange Proc_Synch messages before any
        observable event — an initial internal step the service does not
        have.  Weak bisimulation holds, but the *rooted* condition (full
        observation congruence, as the theorem is stated) does not.
        """
        report = verify_derivation(
            "SPEC B >> B WHERE PROC B = a1; b2; exit END ENDSPEC"
        )
        assert report.method == "weak-bisimulation"
        assert report.equivalent, str(report)
        assert report.congruent is False


class TestRecursiveBounded:
    def test_example2(self, example2):
        report = verify_derivation(example2, trace_depth=7)
        assert report.method == "bounded-traces"
        assert report.equivalent, str(report)

    def test_tail_recursive_loop(self):
        report = verify_derivation(
            "SPEC A WHERE PROC A = a1; b2; A [] c1; exit END ENDSPEC",
            trace_depth=6,
        )
        assert report.equivalent, str(report)

    def test_mutual_recursion(self):
        report = verify_derivation(
            "SPEC A WHERE PROC A = a1; B [] c1; exit END "
            "PROC B = b2; A END ENDSPEC",
            trace_depth=6,
        )
        assert report.equivalent, str(report)

    def test_occurrence_free_mode(self):
        report = verify_derivation(
            "SPEC A WHERE PROC A = a1; b2; A [] c1; exit END ENDSPEC",
            trace_depth=6,
            use_occurrences=False,
        )
        assert report.equivalent, str(report)


class TestMultipleInstances:
    def test_example7_bounded(self, example7):
        report = verify_derivation(example7, trace_depth=5)
        assert report.equivalent, str(report)


class TestNegativeControls:
    """The checker must catch broken protocols, not just bless good ones."""

    def test_naive_projection_fails(self):
        naive = derive_protocol("SPEC a1; exit >> b2; exit ENDSPEC", emit_sync=False)
        report = verify_derivation(naive)
        assert not report.equivalent
        assert report.counterexample is not None
        assert str(report.counterexample[0]) == "b2"

    def test_naive_choice_fails(self):
        naive = derive_protocol(
            "SPEC (a1; b2; exit) [] (c1; d2; exit) ENDSPEC", emit_sync=False
        )
        report = verify_derivation(naive)
        assert not report.equivalent

    def test_naive_safety_inclusion_fails(self):
        naive = derive_protocol("SPEC a1; exit >> b2; exit ENDSPEC", emit_sync=False)
        report = safety_report(naive, trace_depth=5)
        assert not report.equivalent

    def test_tampered_entity_detected(self):
        # Swap two entities' roles: the system cannot realize the service.
        result = derive_protocol("SPEC a1; exit >> b2; exit ENDSPEC")
        result.entities[1], result.entities[2] = (
            result.entities[2],
            result.entities[1],
        )
        report = verify_derivation(result)
        assert not report.equivalent


class TestDisableSemantics:
    """Services with [> get the paper's weakened guarantees (Section 3.3)."""

    def test_example6_report_notes_disable(self, example6):
        report = verify_derivation(example6, trace_depth=5)
        assert report.has_disable

    def test_example6_safety_counterexample_is_the_documented_shortcoming(
        self, example6
    ):
        report = safety_report(example6, trace_depth=5)
        if not report.equivalent:
            # The offending trace must involve the disabling event d3
            # overtaken or overtaking normal events — the Section 3.3
            # shortcoming — not an arbitrary ordering violation.
            rendered = [str(label) for label in report.counterexample]
            assert "d3" in rendered

    def test_disable_free_prefix_behaviour_is_exact(self, example6):
        # Schedules that never take d3 must be strictly conformant.
        from repro.runtime import build_system, random_run
        from repro.runtime.conformance import check_trace

        system = build_system(
            example6.entities, discipline="selective", require_empty_at_exit=False
        )

        def avoid_interrupt(state, transitions):
            for index, (label, _) in enumerate(transitions):
                if str(label) != "d3":
                    return index
            return 0

        run = random_run(system, seed=5, max_steps=200, chooser=avoid_interrupt)
        assert run.terminated
        assert check_trace(example6.service, run.trace, terminated=True)
