"""Term-level Section 5.2 composition tests.

The literal LOTOS term ``hide G in ((T1 ||| ... ||| Tn) |[G]| Medium)``
with capacity-1 Channel processes must agree with (a) the service and
(b) the queue-based runtime composition — two independent
implementations cross-checking each other.
"""

import pytest

from repro.core.generator import derive_protocol
from repro.errors import VerificationError
from repro.lotos.equivalence import observationally_congruent, weak_bisimilar
from repro.lotos.lts import build_lts
from repro.lotos.semantics import Semantics
from repro.lotos.events import ReceiveAction, SendAction
from repro.runtime.system import build_system
from repro.verification.composition import (
    annotate_entity,
    compose_term,
    message_alphabet,
)

FINITE_SERVICES = [
    "SPEC a1; b2; exit ENDSPEC",
    "SPEC a1; exit >> b2; exit ENDSPEC",
    "SPEC (a1; b2; exit) [] (c1; d2; exit) ENDSPEC",
    "SPEC (a1; exit ||| b2; exit) >> c3; exit ENDSPEC",
    "SPEC (a1; b2; B) >> d3; exit WHERE PROC B = e2; exit END ENDSPEC",
]


class TestAnnotate:
    def test_sends_get_source(self):
        result = derive_protocol("SPEC a1; b2; exit ENDSPEC")
        annotated = annotate_entity(result.entity(1).behaviour, 1)
        sends = [
            node.event
            for node in annotated.walk()
            if hasattr(node, "event") and isinstance(node.event, SendAction)
        ]
        assert sends and all(event.src == 1 for event in sends)

    def test_receives_get_destination(self):
        result = derive_protocol("SPEC a1; b2; exit ENDSPEC")
        annotated = annotate_entity(result.entity(2).behaviour, 2)
        receives = [
            node.event
            for node in annotated.walk()
            if hasattr(node, "event") and isinstance(node.event, ReceiveAction)
        ]
        assert receives and all(event.dest == 2 for event in receives)


class TestMessageAlphabet:
    def test_alphabet_of_sequence(self):
        result = derive_protocol("SPEC a1; b2; c3; exit ENDSPEC")
        _, alphabet = message_alphabet(result.entities)
        pairs = {(src, dest) for src, dest, _ in alphabet}
        assert pairs == {(1, 2), (2, 3)}

    def test_process_invocations_are_inlined(self):
        result = derive_protocol(
            "SPEC (a1; b2; B) >> d3; exit WHERE PROC B = e2; exit END ENDSPEC"
        )
        closed, alphabet = message_alphabet(result.entities)
        from repro.lotos.syntax import ProcessRef

        for term in closed.values():
            assert not any(isinstance(n, ProcessRef) for n in term.walk())

    def test_recursive_entities_rejected(self, example2):
        with pytest.raises(VerificationError, match="recursive"):
            message_alphabet(example2.entities)


class TestTermComposition:
    @pytest.mark.parametrize("service", FINITE_SERVICES)
    def test_term_equals_service(self, service):
        result = derive_protocol(service)
        term, environment, gates = compose_term(result.entities)
        term_lts = build_lts(
            term, Semantics(environment, bind_occurrences=False), max_states=60_000
        )
        service_semantics, service_root = Semantics.of_specification(
            result.prepared, bind_occurrences=False
        )
        service_lts = build_lts(service_root, service_semantics)
        assert weak_bisimilar(service_lts, term_lts)
        assert observationally_congruent(service_lts, term_lts)

    @pytest.mark.parametrize("service", FINITE_SERVICES[:3])
    def test_term_equals_runtime_composition(self, service):
        """The two composition implementations agree (capacity 1)."""
        result = derive_protocol(service)
        term, environment, gates = compose_term(result.entities)
        term_lts = build_lts(
            term, Semantics(environment, bind_occurrences=False), max_states=60_000
        )
        system = build_system(result.entities, capacity=1, discipline="fifo")
        system_lts = build_lts(system.initial, system, max_states=60_000)
        assert weak_bisimilar(term_lts, system_lts)

    def test_gate_set_is_closed(self):
        result = derive_protocol("SPEC a1; b2; c3; exit ENDSPEC")
        _, _, gates = compose_term(result.entities)
        sends = {g for g in gates if isinstance(g, SendAction)}
        receives = {g for g in gates if isinstance(g, ReceiveAction)}
        assert len(sends) == len(receives) == 2
