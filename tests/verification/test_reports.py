"""Verification-report API tests: rendering, truthiness, safety path."""


from repro.core.generator import derive_protocol
from repro.verification.checker import (
    VerificationReport,
    safety_report,
    verify_derivation,
)


class TestReportApi:
    def test_bool_follows_equivalent(self):
        assert bool(
            VerificationReport(method="weak-bisimulation", equivalent=True)
        )
        assert not bool(
            VerificationReport(method="bounded-traces", equivalent=False)
        )

    def test_str_mentions_verdict_and_method(self):
        report = VerificationReport(
            method="weak-bisimulation",
            equivalent=True,
            congruent=True,
            service_states=5,
            system_states=9,
        )
        text = str(report)
        assert "EQUIVALENT" in text
        assert "weak-bisimulation" in text
        assert "service=5" in text

    def test_counterexample_rendered(self):
        from repro.lotos.events import ServicePrimitive

        report = VerificationReport(
            method="bounded-traces",
            equivalent=False,
            counterexample=(ServicePrimitive("b", 2),),
        )
        assert "counterexample: b2" in str(report)

    def test_notes_rendered(self):
        report = VerificationReport(
            method="bounded-traces", equivalent=True, notes=["a note"]
        )
        assert "a note" in str(report)


class TestSafetyPath:
    def test_conforming_protocol_is_safe(self):
        report = safety_report("SPEC a1; b2; c3; exit ENDSPEC", trace_depth=5)
        assert report.equivalent
        assert report.method == "bounded-trace-inclusion"

    def test_safety_accepts_derivation_result(self):
        result = derive_protocol("SPEC a1; b2; exit ENDSPEC")
        assert safety_report(result, trace_depth=4).equivalent

    def test_has_disable_flag(self):
        report = verify_derivation(
            "SPEC a1; b2; exit [> d2; exit ENDSPEC", trace_depth=4
        )
        assert report.has_disable

    def test_disable_free_flag(self):
        report = verify_derivation("SPEC a1; b2; exit ENDSPEC")
        assert not report.has_disable


class TestCheckerOptions:
    def test_exact_state_limit_forces_bounded(self):
        report = verify_derivation(
            "SPEC (a1; exit ||| b2; exit) >> c3; exit ENDSPEC",
            exact_state_limit=3,
            trace_depth=5,
        )
        assert report.method == "bounded-traces"
        assert report.equivalent

    def test_trace_depth_recorded(self):
        report = verify_derivation(
            "SPEC A WHERE PROC A = a1; b2; A [] c1; exit END ENDSPEC",
            trace_depth=5,
        )
        assert report.trace_depth == 5

    def test_capacity_one_matches_proof_assumption(self):
        report = verify_derivation(
            "SPEC a1; b2; c3; exit ENDSPEC", capacity=1
        )
        assert report.equivalent and report.congruent
