"""The Section 5.3 proof, replayed mechanically on concrete instances.

The paper proves its theorem by induction on the service syntax tree;
this module checks every step of the published calculation on concrete
services, using the LTS machinery as the "congruence laws engine":

* 5.3.2 — the base case: for elementary ``S = a_i; exit`` the projection
  yields the event at place i and ``exit`` elsewhere, with no messages,
  and the composition is congruent to S;
* 5.3.3 — the induction step for ``>>``: the composed system of
  ``S1 >> S2`` is congruent to the *proof's middle term*

      composed(S1) >> ( s_j(m); r_i(m); exit ) >> composed(S2)

  — i.e. the medium really does factor along the enable structure, which
  is the load-bearing manipulation of the published proof.
"""

import pytest

from repro.core.generator import derive_protocol
from repro.lotos.equivalence import observationally_congruent, weak_bisimilar
from repro.lotos.events import ReceiveAction, SendAction
from repro.lotos.lts import build_lts
from repro.lotos.parser import parse
from repro.lotos.semantics import Semantics
from repro.lotos.syntax import (
    ActionPrefix,
    Behaviour,
    Enable,
    Exit,
    Hide,
)
from repro.runtime.system import build_system
from repro.verification.composition import compose_term


def service_lts(text):
    spec = parse(text)
    semantics, root = Semantics.of_specification(spec, bind_occurrences=False)
    return build_lts(root, semantics)


def composed_lts(text):
    result = derive_protocol(text)
    term, environment, _gates = compose_term(result.entities)
    return build_lts(
        term, Semantics(environment, bind_occurrences=False), max_states=60_000
    ), result


class TestBaseCase:
    """5.3.2: S = a_i; exit."""

    @pytest.mark.parametrize("place", [1, 2, 3])
    def test_projection_shape(self, place):
        # A three-place context forces derivation for all of {1,2,3}:
        # embed the elementary expression in an interleaving so each
        # place exists, then inspect the elementary fragment alone.
        result = derive_protocol(f"SPEC a{place}; exit ENDSPEC")
        # Only one place participates; T_p for p = i is the event itself.
        assert result.places == [place]
        entity = result.entity(place).behaviour
        assert isinstance(entity, ActionPrefix)
        assert str(entity.event) == f"a{place}"
        assert isinstance(entity.continuation, Exit)

    def test_no_messages_generated(self):
        from repro.core.complexity import analyze

        result = derive_protocol("SPEC a2; exit ENDSPEC")
        assert analyze(result).total_messages == 0

    def test_composition_congruent_to_service(self):
        lts, _ = composed_lts("SPEC a1; exit ENDSPEC")
        assert observationally_congruent(service_lts("SPEC a1; exit ENDSPEC"), lts)


class TestEnableInductionStep:
    """5.3.3: S = S1 >> S2 with EP(S1) = {i}, SP(S2) = {j}."""

    S1 = "a1; b1; exit"
    S2 = "c2; exit"
    SERVICE = f"SPEC ({S1}) >> ({S2}) ENDSPEC"

    def test_composed_congruent_to_service(self):
        lts, _ = composed_lts(self.SERVICE)
        assert observationally_congruent(service_lts(self.SERVICE), lts)

    def test_middle_term_of_the_proof(self):
        """The decomposition the proof derives by expansion (T1, H8, H5):

            hide G in ((T1(S) ||| T2(S)) |[G]| Medium)
              ≈ composed(S1) >> (s_j(m); r_i(m); exit) >> composed(S2)

        where composed(Sk) abbreviates the fully composed-and-hidden
        subsystem for Sk alone.
        """
        # left side: the composed system for the full service
        full_lts, full_result = composed_lts(self.SERVICE)

        # right side: build the proof's middle term.  composed(S1) and
        # composed(S2) come from deriving each part separately;
        # the bridging message (s_j(m); r_i(m); exit) is hidden like G.
        part1 = derive_protocol(f"SPEC {self.S1} ENDSPEC")
        part2 = derive_protocol(f"SPEC {self.S2} ENDSPEC")

        def hidden_composition(result) -> Behaviour:
            if len(result.places) == 1:
                # single-place part: the entity is the behaviour itself.
                (only,) = result.places
                root, env = _closed_term(result, only)
                return root
            term, environment, _ = compose_term(result.entities)
            assert not environment  # non-recursive, channels inlined below
            return term

        from repro.lotos.scope import bind_occurrence, flatten

        def _closed_term(result, place):
            root, env = flatten(result.entity(place))
            return bind_occurrence(root, ()), env

        sub1 = hidden_composition(part1)
        sub2 = hidden_composition(part2)

        from repro.lotos.events import SyncMessage

        bridge_message = SyncMessage(0, ())
        bridge = Hide(
            ActionPrefix(
                SendAction(dest=2, message=bridge_message, src=1),
                ActionPrefix(
                    ReceiveAction(src=1, message=bridge_message, dest=2), Exit()
                ),
            ),
            hide_messages=True,
        )
        middle = Enable(sub1, Enable(bridge, sub2))

        middle_lts = build_lts(middle, Semantics(), max_states=60_000)
        assert weak_bisimilar(full_lts, middle_lts)
        assert observationally_congruent(full_lts, middle_lts)

    def test_medium_factors_along_enable(self):
        """No message of S1's region remains once S2's region starts.

        Operationally: in every reachable composed state where a service
        primitive of S2 has occurred, the channels carry no message
        generated by S1's syntax region — the separation the proof's
        Medium = Med1 ||| Med2 split relies on.
        """
        result = derive_protocol(self.SERVICE)
        system = build_system(result.entities, hide=False)
        lts = build_lts(system.initial, system, max_states=20_000)
        # S1's region: the a1/b1 prefixes; identify its message nodes as
        # those numbered before the enable's right operand.
        enable = result.prepared.root.behaviour
        boundary = enable.right.nid
        paths = {lts.initial: frozenset()}
        frontier = [lts.initial]
        while frontier:
            state = frontier.pop()
            for label, target in lts.edges[state]:
                seen = paths[state]
                if str(label) == "c2":
                    seen = seen | {"s2-started"}
                if target not in paths:
                    paths[target] = seen
                    frontier.append(target)
                    if "s2-started" in seen:
                        term = lts.state_terms[target]
                        for _src, _dest, message in term.medium.iter_messages():
                            assert message.node >= boundary - 2, (
                                "an S1-region message survived into S2"
                            )
