"""The corpus model: manifest-driven and manifest-less directories."""

import json
import pathlib

import pytest

from repro.batch.manifest import corpus_from_texts, load_corpus

GOLDEN_DIR = pathlib.Path(__file__).resolve().parents[1] / "goldens"


class TestLoadCorpus:
    def test_goldens_corpus_follows_its_manifest(self):
        manifest = json.loads((GOLDEN_DIR / "manifest.json").read_text())
        corpus = load_corpus(GOLDEN_DIR)
        assert [case.name for case in corpus] == sorted(manifest)
        by_name = {case.name: case for case in corpus}
        assert by_name["mixed_choice_veto"].options["mixed_choice"] is True
        assert by_name["example2_counting"].options["mixed_choice"] is False

    def test_directory_without_manifest_globs_lotos_files(self, tmp_path):
        (tmp_path / "b.lotos").write_text("SPEC b1; exit ENDSPEC")
        (tmp_path / "a.lotos").write_text("SPEC a1; exit ENDSPEC")
        (tmp_path / "notes.txt").write_text("not a spec")
        corpus = load_corpus(tmp_path)
        assert [case.name for case in corpus] == ["a", "b"]
        assert corpus[0].text == "SPEC a1; exit ENDSPEC"

    def test_manifest_naming_a_missing_spec_is_an_error(self, tmp_path):
        (tmp_path / "manifest.json").write_text('{"ghost": {}}')
        with pytest.raises(FileNotFoundError, match="ghost"):
            load_corpus(tmp_path)

    def test_empty_directory_is_an_error(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no specifications"):
            load_corpus(tmp_path)

    def test_missing_directory_is_an_error(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_corpus(tmp_path / "nowhere")

    def test_explicit_manifest_overrides_the_default(self, tmp_path):
        (tmp_path / "a.lotos").write_text("SPEC a1; exit ENDSPEC")
        (tmp_path / "b.lotos").write_text("SPEC b1; exit ENDSPEC")
        sliced = tmp_path / "slice.json"
        sliced.write_text('{"a": {"mixed_choice": true}}')
        corpus = load_corpus(tmp_path, manifest=sliced)
        assert [case.name for case in corpus] == ["a"]
        assert corpus[0].options["mixed_choice"] is True

    def test_names_are_spec_relative_not_absolute(self, tmp_path):
        (tmp_path / "deep.lotos").write_text("SPEC a1; exit ENDSPEC")
        corpus = load_corpus(tmp_path)
        assert corpus[0].name == "deep"
        assert "/" not in corpus[0].name


class TestCorpusFromTexts:
    def test_builds_cases_with_shared_options(self):
        corpus = corpus_from_texts(
            [("one", "SPEC a1; exit ENDSPEC")], options={"strict": False}
        )
        assert corpus[0].options["strict"] is False
        assert corpus[0].options["emit_sync"] is True

    def test_duplicate_names_are_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            corpus_from_texts(
                [("dup", "SPEC a1; exit ENDSPEC"), ("dup", "SPEC b1; exit ENDSPEC")]
            )

    def test_empty_corpus_is_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            corpus_from_texts([])

    def test_unknown_option_is_rejected(self):
        with pytest.raises(ValueError, match="unknown derivation option"):
            corpus_from_texts(
                [("one", "SPEC a1; exit ENDSPEC")], options={"nope": 1}
            )
