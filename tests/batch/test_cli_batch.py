"""CLI surface of ``repro batch``."""

import json
import pathlib

import pytest

from repro.cli import repro_main
from repro.obs.schema import validate_batch

GOLDEN_DIR = str(pathlib.Path(__file__).resolve().parents[1] / "goldens")


@pytest.fixture()
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


class TestBatchCommand:
    def test_emits_a_valid_summary_on_stdout(self, cache_dir, capsys):
        assert (
            repro_main(["batch", GOLDEN_DIR, "--cache-dir", cache_dir]) == 0
        )
        captured = capsys.readouterr()
        summary = json.loads(captured.out)
        assert validate_batch(summary) == []
        assert summary["totals"]["ok"] == summary["totals"]["specs"]
        # the digest rides on stderr
        assert "batch:" in captured.err

    def test_second_run_is_all_cache_hits(self, cache_dir, capsys):
        repro_main(["batch", GOLDEN_DIR, "--cache-dir", cache_dir, "--quiet"])
        capsys.readouterr()
        assert (
            repro_main(
                ["batch", GOLDEN_DIR, "--cache-dir", cache_dir, "--quiet"]
            )
            == 0
        )
        summary = json.loads(capsys.readouterr().out)
        assert summary["totals"]["derivations"] == 0
        assert summary["totals"]["cache_hits"] == summary["totals"]["specs"]

    def test_no_cache_bypasses_the_store(self, cache_dir, capsys):
        args = [
            "batch", GOLDEN_DIR, "--cache-dir", cache_dir, "--no-cache",
            "--quiet",
        ]
        assert repro_main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert repro_main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert first["cache"] is None
        assert second["totals"]["cache_hits"] == 0
        assert second["totals"]["derivations"] == second["totals"]["specs"]

    def test_quiet_suppresses_the_digest(self, cache_dir, capsys):
        assert (
            repro_main(
                ["batch", GOLDEN_DIR, "--cache-dir", cache_dir, "--quiet"]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert captured.err == ""
        json.loads(captured.out)

    def test_failing_spec_sets_exit_code_without_aborting(
        self, tmp_path, capsys
    ):
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        (corpus / "good.lotos").write_text("SPEC a1; exit >> b2; exit ENDSPEC")
        (corpus / "bad.lotos").write_text("SPEC utterly broken (")
        assert (
            repro_main(
                ["batch", str(corpus), "--no-cache", "--quiet"]
            )
            == 1
        )
        summary = json.loads(capsys.readouterr().out)
        by_name = {row["name"]: row for row in summary["specs"]}
        assert by_name["good"]["status"] == "ok"
        assert by_name["bad"]["status"] == "failed"

    def test_missing_corpus_is_a_usage_error(self, tmp_path, capsys):
        assert (
            repro_main(["batch", str(tmp_path / "nowhere"), "--quiet"]) == 2
        )
        assert "error:" in capsys.readouterr().err

    def test_out_writes_entity_files(self, cache_dir, tmp_path, capsys):
        out_dir = tmp_path / "derived"
        assert (
            repro_main(
                [
                    "batch", GOLDEN_DIR, "--cache-dir", cache_dir,
                    "--out", str(out_dir), "--quiet",
                ]
            )
            == 0
        )
        capsys.readouterr()
        written = sorted(p.name for p in out_dir.glob("*.entities.txt"))
        assert "example4_sequence.entities.txt" in written
        text = (out_dir / "example4_sequence.entities.txt").read_text()
        assert "Protocol entity for place 1" in text

    def test_workers_flag_round_trips_into_the_summary(
        self, cache_dir, capsys
    ):
        assert (
            repro_main(
                [
                    "batch", GOLDEN_DIR, "--cache-dir", cache_dir,
                    "--workers", "2", "--quiet",
                ]
            )
            == 0
        )
        summary = json.loads(capsys.readouterr().out)
        assert summary["workers"] == 2
        assert summary["totals"]["ok"] == summary["totals"]["specs"]

    def test_indent_zero_is_compact(self, cache_dir, capsys):
        assert (
            repro_main(
                [
                    "batch", GOLDEN_DIR, "--cache-dir", cache_dir,
                    "--quiet", "--indent", "0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert out.count("\n") == 1
