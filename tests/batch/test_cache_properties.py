"""Property tests for the content address (hypothesis).

The key must be stable under everything the canonicalizer forgives and
sensitive to everything it keeps.
"""

from hypothesis import given, strategies as st

from repro.batch.cache import cache_key, canonicalize_spec_text

#: Texts shaped like specifications: printable lines with optional mess.
line = st.text(
    alphabet=st.characters(
        whitelist_categories=("Lu", "Ll", "Nd", "Zs"),
        whitelist_characters=";()[]>|",
    ),
    max_size=40,
)
documents = st.lists(line, min_size=1, max_size=12).map("\n".join)


@given(documents)
def test_canonicalization_is_idempotent(text):
    once = canonicalize_spec_text(text)
    assert canonicalize_spec_text(once) == once


@given(documents, st.sampled_from(["\n", "\r\n", "  \n", "\t\n", " "]))
def test_trailing_noise_never_changes_the_key(text, noise):
    assert cache_key(text + noise) == cache_key(text)


@given(documents)
def test_crlf_and_lf_share_a_key(text):
    assert cache_key(text.replace("\n", "\r\n")) == cache_key(text)


@given(documents, st.booleans(), st.booleans())
def test_options_partition_the_key_space(text, mixed_choice, emit_sync):
    options = {"mixed_choice": mixed_choice, "emit_sync": emit_sync}
    key = cache_key(text, options)
    flipped = cache_key(text, {**options, "mixed_choice": not mixed_choice})
    assert key != flipped
