"""Scheduler behaviour: identity across execution modes, containment,
timeouts, and graceful degradation.

The load-bearing assertion, here and in the acceptance criteria: the
derived entity texts are **byte-identical** whether a spec is derived
serially, on a worker pool, place-by-place, or served from the cache.
"""

import pathlib
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.batch import (
    EntityCache,
    corpus_from_texts,
    load_corpus,
    run_batch,
)
from repro.core.generator import ProtocolGenerator
from repro.obs.schema import validate_batch, validate_report

GOLDEN_DIR = pathlib.Path(__file__).resolve().parents[1] / "goldens"


@pytest.fixture(scope="module")
def goldens():
    return load_corpus(GOLDEN_DIR)


@pytest.fixture(scope="module")
def fresh_entities(goldens):
    """Ground truth: every golden derived directly, no batch machinery."""
    truth = {}
    for case in goldens:
        result = ProtocolGenerator(**dict(case.options)).derive(case.text)
        truth[case.name] = {
            place: result.entity_text(place) for place in result.places
        }
    return truth


class TestSerialRuns:
    def test_summary_validates_and_matches_fresh_derivation(
        self, goldens, fresh_entities
    ):
        outcome = run_batch(goldens, workers=0)
        assert validate_batch(outcome.summary) == []
        assert outcome.ok
        assert outcome.entities == fresh_entities

    def test_cache_round_trip_is_byte_identical_across_goldens(
        self, goldens, fresh_entities, tmp_path
    ):
        cache = EntityCache(tmp_path / "cache")
        cold = run_batch(goldens, workers=0, cache=cache)
        warm = run_batch(goldens, workers=0, cache=cache)
        assert cold.entities == fresh_entities
        assert warm.entities == fresh_entities

    def test_warm_run_does_zero_derivations(self, goldens, tmp_path):
        cache = EntityCache(tmp_path / "cache")
        run_batch(goldens, workers=0, cache=cache)
        warm = run_batch(goldens, workers=0, cache=cache)
        totals = warm.summary["totals"]
        assert totals["derivations"] == 0
        assert totals["tasks"] == 0
        assert totals["cache_hits"] == len(goldens)
        # the counters back the row-level verdicts
        hits = [
            metric
            for metric in warm.summary["metrics"]["metrics"]
            if metric["name"] == "batch.cache.hits"
        ]
        assert hits and hits[0]["series"][0]["value"] == len(goldens)

    def test_cached_stats_documents_are_valid_profiles(
        self, goldens, tmp_path
    ):
        cache = EntityCache(tmp_path / "cache")
        run_batch(goldens, workers=0, cache=cache)
        for case in goldens:
            entry = cache.get(cache.key(case.text, case.options))
            assert entry is not None
            assert validate_report(entry["stats"]) == []
            assert entry["stats"]["source"] == case.name


class TestPoolRuns:
    def test_parallel_output_is_byte_identical_to_serial(
        self, goldens, fresh_entities
    ):
        outcome = run_batch(goldens, workers=2)
        assert outcome.ok, [
            row["error"]
            for row in outcome.summary["specs"]
            if row["status"] != "ok"
        ]
        assert outcome.entities == fresh_entities

    def test_per_place_fanout_is_byte_identical(
        self, goldens, fresh_entities
    ):
        # split_bytes=1 forces every spec down the one-task-per-place
        # path (plan task + one T_p task per place).
        outcome = run_batch(goldens, workers=2, split_bytes=1)
        assert outcome.ok, [
            row["error"]
            for row in outcome.summary["specs"]
            if row["status"] != "ok"
        ]
        assert outcome.entities == fresh_entities
        total_places = sum(
            len(places) for places in fresh_entities.values()
        )
        assert outcome.summary["totals"]["tasks"] == (
            len(goldens) + total_places
        )

    def test_parallel_run_populates_the_cache_for_serial_readers(
        self, goldens, tmp_path
    ):
        cache = EntityCache(tmp_path / "cache")
        run_batch(goldens, workers=2, cache=cache)
        warm = run_batch(goldens, workers=0, cache=cache)
        assert warm.summary["totals"]["derivations"] == 0


class TestFailureContainment:
    CORPUS = [
        ("good_one", "SPEC a1; exit >> b2; exit ENDSPEC"),
        ("broken", "SPEC a1; this is not LOTOS ENDSPEC"),
        ("good_two", "SPEC x1; y2; exit ENDSPEC"),
    ]

    @pytest.mark.parametrize("workers", [0, 2])
    def test_one_failing_spec_does_not_abort_the_corpus(self, workers):
        outcome = run_batch(corpus_from_texts(self.CORPUS), workers=workers)
        assert not outcome.ok
        by_name = {row["name"]: row for row in outcome.summary["specs"]}
        assert by_name["good_one"]["status"] == "ok"
        assert by_name["good_two"]["status"] == "ok"
        failed = by_name["broken"]
        assert failed["status"] == "failed"
        assert failed["error"]["type"]
        assert "broken" not in outcome.entities
        assert validate_batch(outcome.summary) == []

    def test_failed_rows_carry_a_traceback(self):
        outcome = run_batch(corpus_from_texts(self.CORPUS), workers=0)
        failed = [
            row
            for row in outcome.summary["specs"]
            if row["status"] == "failed"
        ]
        assert failed and "Traceback" in failed[0]["error"]["traceback"]

    def test_strict_violations_fail_the_member_not_the_run(self):
        # R1 violation (mixed choice) under strict mode: recorded, not fatal.
        outcome = run_batch(
            corpus_from_texts(
                [("r1", "SPEC (a1; b2; exit) [] (c2; d1; exit) ENDSPEC")]
            ),
            workers=0,
        )
        row = outcome.summary["specs"][0]
        assert row["status"] == "failed"
        assert "R1" in row["error"]["message"]


class _StuckPool:
    """A pool whose futures never complete — exercises the timeout path."""

    def __init__(self, workers):
        pass

    def submit(self, fn, *args, **kwargs):
        return Future()

    def shutdown(self, wait=True, cancel_futures=False):
        pass


class _DeadPool:
    """A pool that is broken from the first submit."""

    def __init__(self, workers):
        pass

    def submit(self, fn, *args, **kwargs):
        raise BrokenProcessPool("the pool died")

    def shutdown(self, wait=True, cancel_futures=False):
        pass


class TestDegradation:
    def test_timeout_turns_stuck_tasks_into_failure_rows(self):
        corpus = corpus_from_texts(
            [("slow", "SPEC a1; exit >> b2; exit ENDSPEC")]
        )
        outcome = run_batch(
            corpus, workers=1, timeout=0.05, executor_factory=_StuckPool
        )
        row = outcome.summary["specs"][0]
        assert row["status"] == "failed"
        assert row["error"]["type"] == "TimeoutError"
        assert validate_batch(outcome.summary) == []

    def test_broken_pool_degrades_to_serial_and_still_derives(
        self, goldens, fresh_entities
    ):
        outcome = run_batch(goldens, workers=2, executor_factory=_DeadPool)
        assert outcome.summary["degraded"] is True
        assert outcome.ok
        assert outcome.entities == fresh_entities

    def test_negative_workers_are_rejected(self, goldens):
        with pytest.raises(ValueError, match="workers"):
            run_batch(goldens, workers=-1)


class TestSummaryShape:
    def test_rows_keep_corpus_order(self, goldens):
        outcome = run_batch(goldens, workers=0)
        assert [row["name"] for row in outcome.summary["specs"]] == [
            case.name for case in goldens
        ]

    def test_cache_off_rows_say_off(self, goldens):
        outcome = run_batch(goldens[:2], workers=0)
        assert {row["cache"] for row in outcome.summary["specs"]} == {"off"}
        assert outcome.summary["cache"] is None
