"""Cache correctness: content addressing, option sensitivity, eviction.

The two properties the batch subsystem lives or dies by:

* the key is a pure function of (canonical spec text, canonical
  options, algorithm version) — cosmetic whitespace cannot change it,
  while *any* option flip or version bump must;
* what comes out of the cache is byte-identical to a fresh derivation.
"""

import json

import pytest

from repro.batch.cache import (
    EntityCache,
    cache_key,
    canonicalize_spec_text,
)
from repro.core.generator import OPTION_DEFAULTS
from repro.obs.metrics import MetricsRegistry, use_registry

SERVICE = "SPEC a1; exit >> b2; exit ENDSPEC"


class TestCanonicalization:
    def test_line_endings_and_trailing_whitespace_normalize(self):
        messy = "SPEC a1; exit >> b2; exit ENDSPEC   \r\n\r\n"
        assert canonicalize_spec_text(messy) == (
            "SPEC a1; exit >> b2; exit ENDSPEC\n"
        )

    def test_indentation_is_preserved(self):
        text = "SPEC\n  a1; exit\nENDSPEC"
        assert canonicalize_spec_text(text) == "SPEC\n  a1; exit\nENDSPEC\n"

    def test_cosmetic_edits_share_a_key(self):
        assert cache_key(SERVICE) == cache_key(SERVICE + "  \n\n")
        assert cache_key(SERVICE) == cache_key(
            SERVICE.replace("\n", "\r\n") + "\r\n"
        )

    def test_semantic_edits_change_the_key(self):
        assert cache_key(SERVICE) != cache_key(
            SERVICE.replace("a1", "a2")
        )


class TestKeyOptionSensitivity:
    def test_every_option_flip_changes_the_key(self):
        # The full option surface, not a hand-picked subset: a new
        # ProtocolGenerator flag that misses OPTION_DEFAULTS will fail
        # normalize_options, and one that joins it is covered here
        # automatically.
        base = cache_key(SERVICE, {})
        for name, default in OPTION_DEFAULTS.items():
            flipped = cache_key(SERVICE, {name: not default})
            assert flipped != base, f"flipping {name} must change the key"

    def test_defaulted_and_spelled_out_options_share_a_key(self):
        assert cache_key(SERVICE) == cache_key(SERVICE, dict(OPTION_DEFAULTS))
        assert cache_key(SERVICE, {"mixed_choice": False}) == cache_key(SERVICE)

    def test_unknown_options_are_rejected(self):
        with pytest.raises(ValueError, match="unknown derivation option"):
            cache_key(SERVICE, {"turbo": True})

    def test_algorithm_version_participates(self, monkeypatch):
        import repro.batch.cache as cache_module

        before = cache_key(SERVICE)
        monkeypatch.setattr(cache_module, "ALGORITHM_VERSION", "999-test")
        assert cache_key(SERVICE) != before


class TestEntityCacheStore:
    def test_round_trip(self, tmp_path):
        cache = EntityCache(tmp_path / "cache")
        key = cache.key(SERVICE)
        assert cache.get(key) is None
        cache.put(key, "seq", {}, {"1": "text one", "2": "text two"})
        entry = cache.get(key)
        assert entry["entities"] == {"1": "text one", "2": "text two"}
        assert entry["places"] == [1, 2]
        assert entry["name"] == "seq"

    def test_hit_and_miss_counters(self, tmp_path):
        cache = EntityCache(tmp_path / "cache")
        key = cache.key(SERVICE)
        registry = MetricsRegistry()
        with use_registry(registry):
            cache.get(key)
            cache.put(key, "seq", {}, {"1": "t"})
            cache.get(key)
            cache.get(key)
        assert registry.counter("batch.cache.misses").value() == 1
        assert registry.counter("batch.cache.hits").value() == 2

    def test_corrupt_entry_reads_as_miss_and_heals(self, tmp_path):
        cache = EntityCache(tmp_path / "cache")
        key = cache.key(SERVICE)
        path = cache.put(key, "seq", {}, {"1": "t"})
        path.write_text("{ truncated", encoding="utf-8")
        assert cache.get(key) is None
        assert not path.exists()

    def test_entry_under_wrong_address_reads_as_miss(self, tmp_path):
        cache = EntityCache(tmp_path / "cache")
        key = cache.key(SERVICE)
        other = cache.key(SERVICE.replace("a1", "z9"))
        path = cache.put(key, "seq", {}, {"1": "t"})
        target = cache._path(other)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(path.read_text())  # body still says `key`
        assert cache.get(other) is None

    def test_eviction_respects_max_entries(self, tmp_path):
        cache = EntityCache(tmp_path / "cache", max_entries=2)
        registry = MetricsRegistry()
        keys = []
        with use_registry(registry):
            for index in range(4):
                text = SERVICE.replace("a1", f"a{index + 1}")
                key = cache.key(text)
                keys.append(key)
                cache.put(key, f"s{index}", {}, {"1": "t"})
        assert len(cache) == 2
        assert registry.counter("batch.cache.evictions").value() == 2
        # the most recent write always survives
        assert cache.get(keys[-1]) is not None

    def test_entry_file_is_valid_json_document(self, tmp_path):
        cache = EntityCache(tmp_path / "cache")
        key = cache.key(SERVICE)
        path = cache.put(key, "seq", {"mixed_choice": True}, {"1": "t"})
        entry = json.loads(path.read_text())
        assert entry["schema"] == "repro.batch.entry/v1"
        assert entry["options"]["mixed_choice"] is True
        assert entry["options"]["strict"] is True  # defaults spelled out
