"""Every way to launch the CLI reaches the same dispatcher.

Regression tests for the ``python src/repro/cli.py`` entry point,
which used to run the bare ``derive`` parser instead of the subcommand
dispatcher (so ``... cli.py lint file`` would try to *derive* a file
named ``lint``).
"""

import os
import subprocess
import sys

import repro.cli

SPEC = "SPEC a1; exit >> b2; exit ENDSPEC\n"


def run_entry(argv, cwd):
    env = dict(os.environ)
    src_dir = os.path.dirname(os.path.dirname(repro.cli.__file__))
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, *argv],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def test_python_dash_m_repro_dispatches_subcommands(tmp_path):
    spec = tmp_path / "example.lotos"
    spec.write_text(SPEC)
    proc = run_entry(["-m", "repro", "lint", str(spec)], cwd=tmp_path)
    assert proc.returncode == 0, proc.stderr
    assert "0 error(s)" in proc.stdout


def test_running_cli_py_directly_dispatches_subcommands(tmp_path):
    spec = tmp_path / "example.lotos"
    spec.write_text(SPEC)
    proc = run_entry([repro.cli.__file__, "lint", str(spec)], cwd=tmp_path)
    assert proc.returncode == 0, proc.stderr
    assert "0 error(s)" in proc.stdout


def test_both_entry_points_agree_on_derive(tmp_path):
    spec = tmp_path / "example.lotos"
    spec.write_text(SPEC)
    module = run_entry(["-m", "repro", "derive", str(spec)], cwd=tmp_path)
    script = run_entry([repro.cli.__file__, "derive", str(spec)], cwd=tmp_path)
    assert module.returncode == script.returncode == 0
    assert module.stdout == script.stdout


def test_no_arguments_prints_usage_and_fails(tmp_path):
    proc = run_entry(["-m", "repro"], cwd=tmp_path)
    assert proc.returncode != 0
    assert "usage" in (proc.stdout + proc.stderr).lower()
