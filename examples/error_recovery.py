#!/usr/bin/env python3
"""Running a derived protocol over an *unreliable* medium (Section 6).

The derivation algorithm assumes the medium "does not lose, duplicate or
insert messages".  The paper's conclusions sketch the unreliable case as
future work: derive against a reliable medium first, then recover from
errors systematically.  This example shows all three acts:

1. the derived protocol over the perfect FIFO medium (works);
2. the same protocol over raw lossy channels (wedges — every
   synchronization receive is a potential deadlock);
3. the same protocol over the stop-and-wait ARQ recovery sublayer
   running on those lossy channels (works again, at a measurable cost).

Run:  python examples/error_recovery.py
"""

from repro import derive_protocol
from repro.medium.lossy import ArqMedium, LossyMedium
from repro.runtime import build_system, check_run, random_run

SERVICE = """
SPEC req1; fetch2; data3; deliver1; ackn2; exit ENDSPEC
"""


def main() -> None:
    result = derive_protocol(SERVICE)
    print(f"Places: {result.places}")
    print(result.describe())

    # Act 1 — the reliable medium the algorithm assumes.
    reliable = build_system(result.entities)
    run = random_run(reliable, seed=0)
    print(f"perfect medium   : {run}  (conformant: {bool(check_run(SERVICE, run))})")

    # Act 2 — raw loss: the derived protocol has no recovery of its own.
    deadlocks = 0
    trials = 30
    for seed in range(trials):
        lossy = build_system(result.entities, medium=LossyMedium(loss_budget=2))
        if random_run(lossy, seed=seed, max_steps=500).deadlocked:
            deadlocks += 1
    print(f"raw lossy medium : {deadlocks}/{trials} schedules deadlock")

    # Act 3 — the ARQ sublayer restores the reliable-FIFO contract.
    completed = 0
    total_steps = 0
    for seed in range(trials):
        recovered = build_system(result.entities, medium=ArqMedium(loss_budget=3))
        run = random_run(recovered, seed=seed, max_steps=10_000)
        assert not run.deadlocked
        assert check_run(SERVICE, run)
        if run.terminated:
            completed += 1
            total_steps += run.steps
    baseline = random_run(build_system(result.entities), seed=0).steps
    print(
        f"ARQ over loss    : {completed}/{trials} schedules complete, "
        f"mean {total_steps / max(completed, 1):.0f} steps "
        f"(perfect medium: {baseline} steps)"
    )


if __name__ == "__main__":
    main()
