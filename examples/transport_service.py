#!/usr/bin/env python3
"""A transport-style connection service (the paper's PG case study class).

The paper validated its Prolog Protocol Generator on a Transport Service
specification [Kant 93].  That specification is not reprinted in the
paper, so this example builds a service of the same shape — the classic
OSI connection lifecycle — exercising every operator the algorithm
supports:

* connection establishment with acceptance/rejection (``[]``),
* a data phase with per-message acknowledgement windows (recursion
  through ``>>``, the (data)^n (ack)^n pattern),
* orderly release (``>>``) and user abort (``[>``).

Place 1 is the calling user, place 2 the called user.

Run:  python examples/transport_service.py
"""

from repro import derive_protocol
from repro.core.centralized import derive_centralized
from repro.core.complexity import analyze
from repro.runtime import build_system, random_run
from repro.runtime.conformance import check_trace
from repro.verification.checker import safety_report

SERVICE = """
SPEC Session [> abort1; exit WHERE
  PROC Session =
      ( conreq1; conind2;
          ( (accept2; confirm1; Transfer >> disreq2; disind1; exit)
            [] (reject2; refused1; exit) ) )
      [] ( quit1; exit )
  END
  PROC Transfer =
      ( datareq1; dataind2; Transfer >> ack2; ackind1; exit )
      [] ( datareq1; dataind2; ack2; ackind1; exit )
  END
ENDSPEC
"""


def main() -> None:
    result = derive_protocol(SERVICE)
    print(f"Places: {result.places}")
    print(result.describe())

    print("Message complexity (static, Section 4.3):")
    print(analyze(result).table())

    # --- executions --------------------------------------------------
    system = build_system(
        result.entities, discipline="selective", require_empty_at_exit=False
    )
    print("\nSample sessions:")
    shown = 0
    for seed in range(60):
        run = random_run(system, seed=seed, max_steps=1_500)
        if not run.terminated:
            continue
        names = [str(event) for event in run.trace]
        if shown < 6:
            print(f"  seed {seed:>2} [{run.messages_sent} msgs]: {' . '.join(names) or '<abort before anything>'}")
            shown += 1
    # A complete abort-free session with a bounded data phase:
    import random

    def make_steer(max_data: int, rng_seed: int):
        rng = random.Random(rng_seed)
        sent = [0]

        def steer(state, transitions):
            candidates = []
            for index, (label, _) in enumerate(transitions):
                name = str(label)
                if name == "abort1":
                    continue
                if name == "datareq1" and sent[0] >= max_data:
                    continue
                candidates.append(index)
            choice = rng.choice(candidates) if candidates else 0
            if str(transitions[choice][0]) == "datareq1":
                sent[0] += 1
            return choice

        return steer

    run = random_run(system, seed=11, max_steps=2_000, chooser=make_steer(3, 11))
    verdict = check_trace(result.service, run.trace, terminated=run.terminated)
    print(f"\nabort-free session: {run}")
    print(f"strict conformance: {bool(verdict)}")

    # --- safety (the service uses [>, so bounded inclusion applies) --
    report = safety_report(result, trace_depth=5)
    print(f"\nsafety (bounded inclusion): {report}")
    print(
        "  ^ the counterexample is the documented Section 3.3 shortcoming: "
        "a normal event can still occur while the abort broadcast is in "
        "flight (message delay); abort-free behaviour is exact."
    )

    # --- against the centralized baseline (Section 3) ----------------
    # The server-PE baseline needs 2 messages per remote primitive plus a
    # halt broadcast; the derived protocol piggybacks ordering on the
    # service structure.  Aggregate over many schedules for a fair view.
    abort_free = SERVICE.replace("Session [> abort1; exit", "Session")
    distributed = derive_protocol(abort_free)
    central = derive_centralized(abort_free, server=1)
    totals = {}
    for name, entities in (("distributed", distributed.entities),
                           ("centralized", central.entities)):
        sys_ = build_system(entities)
        events = messages = 0
        for seed in range(40):
            run = random_run(sys_, seed=seed, max_steps=3_000)
            events += len(run.trace)
            messages += run.messages_sent
        totals[name] = (events, messages)
    print("\naggregate over 40 schedules (abort-free service):")
    for name, (events, messages) in totals.items():
        ratio = messages / events if events else float("nan")
        print(f"  {name:>12}: {events} service events, {messages} messages "
              f"({ratio:.2f} msgs/event)")


if __name__ == "__main__":
    main()
