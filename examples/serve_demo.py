#!/usr/bin/env python3
"""The derivation server end to end, in one process.

Spins up :class:`repro.serve.DerivationServer` on a background thread
(thread workers, ephemeral port, private cache), then drives it the
way operators do: the blocking :class:`ServeClient` for single
requests, a ``repro loadgen``-style closed-loop burst, and the
``/metrics`` document to prove the cache claim — a repeated spec costs
zero derivations.

Run:  python examples/serve_demo.py
Docs: docs/serving.md (wire schemas, overload semantics, ops flags)
"""

import asyncio
import tempfile
import threading

from repro.serve import DerivationServer, ServeClient, ServeConfig
from repro.serve.loadgen import render_digest, run_loadgen

SERVICE = """
SPEC
  connect1; accept2; data1; data1; release2; exit
ENDSPEC
"""

def start_server(config):
    """Run a server on its own thread + event loop; return the controls."""
    started = threading.Event()
    controls = {}

    def runner():
        async def main():
            server = DerivationServer(config)
            await server.start()
            controls["server"] = server
            controls["loop"] = asyncio.get_running_loop()
            controls["stop"] = asyncio.Event()
            started.set()
            await controls["stop"].wait()
            await server.shutdown()

        asyncio.run(main())

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    started.wait()
    controls["thread"] = thread
    return controls


def stop_server(controls):
    controls["loop"].call_soon_threadsafe(controls["stop"].set)
    controls["thread"].join(timeout=30)


def main() -> None:
    with tempfile.TemporaryDirectory() as cache_dir:
        controls = start_server(
            ServeConfig(
                port=0,                   # pick a free port
                workers=2,
                worker_kind="thread",     # no fork cost for a demo
                cache_dir=cache_dir,
                access_log=False,
            )
        )
        server = controls["server"]
        host, port = server.address
        print(f"server listening on http://{host}:{port}")

        with ServeClient(host=host, port=port) as client:
            # --------------------------------------------------------
            # 1. Liveness, then one derivation — and its free repeat.
            # --------------------------------------------------------
            health = client.healthz()
            assert health["status"] == "ok"
            print(f"healthz: {health}")

            first = client.derive(SERVICE)
            assert first["ok"] and first["cache"] == "miss"
            places = first["result"]["places"]
            print(f"derived entities for places {places} (cache miss)")
            for place in places:
                entity = first["result"]["entities"][str(place)]
                print(f"  T{place}: {entity.splitlines()[0]} ...")

            second = client.derive(SERVICE)
            assert second["ok"] and second["cache"] == "hit"
            assert second["result"]["entities"] == first["result"]["entities"]
            print("repeated request: served from cache, zero derivations")

            # --------------------------------------------------------
            # 2. Failure containment: a broken spec is a 422 envelope,
            #    not a dead server.
            # --------------------------------------------------------
            broken_service = "SPEC connect1; ENDSPEC"  # no continuation
            broken = client.derive(broken_service)
            assert not broken["ok"] and broken["status"] == 422
            print(
                f"broken spec answered {broken['status']} "
                f"{broken['error']['type']}: {broken['error']['message']}"
            )
            assert client.healthz()["status"] == "ok"  # still alive

            # --------------------------------------------------------
            # 3. A closed-loop burst, like `repro loadgen`.
            # --------------------------------------------------------
            report = asyncio.run(
                run_loadgen(
                    host, port, SERVICE, connections=4, requests=24
                )
            )
            assert report["failed"] == 0 and report["shed"] == 0
            assert report["cache"]["hit"] == report["requests"]
            print(render_digest(report))

            # --------------------------------------------------------
            # 4. /metrics corroborates: one derivation ever.
            # --------------------------------------------------------
            metrics = {
                metric["name"]: metric
                for metric in client.metrics()["metrics"]
            }
            derivations = sum(
                series["value"]
                for series in metrics["serve.derivations"]["series"]
            )
            hits = sum(
                series["value"]
                for series in metrics["serve.cache.hits"]["series"]
            )
            assert derivations == 1
            print(
                f"metrics: serve.derivations={derivations:g} "
                f"serve.cache.hits={hits:g}"
            )

        stop_server(controls)
        print(f"drained: {server.digest()}")


if __name__ == "__main__":
    main()
