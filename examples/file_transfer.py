#!/usr/bin/env python3
"""The paper's running example: reversed file copy through a stack.

Three users (paper Section 2, Figure 2):

* place 1 reads records from a file (``read1``) until ``eof1``;
* place 2 keeps a stack (``push2`` / ``pop2``);
* place 3 creates a file (``make3``) and writes records (``write3``) —
  and may abort everything at any time with ``interrupt3``.

The service (Example 3) carries every record from 1 into the stack at 2,
then pops them into the file at 3 — reversing the order — and the whole
thing is disabled by ``interrupt3``:

    SPEC S [> interrupt3; exit WHERE
      PROC S = (read1; push2; S >> pop2; write3; exit)
            [] (eof1; make3; exit) END
    ENDSPEC

This script reproduces the paper's Section 4 walk-through end to end:
the Fig. 4 attributes, the three derived protocol entities, executed
schedules, and the disable semantics discussion of Section 3.3.

Run:  python examples/file_transfer.py
"""

from repro import derive_protocol
from repro.core.complexity import analyze
from repro.runtime import build_system, random_run
from repro.runtime.conformance import check_trace

SERVICE = """
SPEC S [> interrupt3; exit WHERE
  PROC S = (read1; push2; S >> pop2; write3; exit)
        [] (eof1; make3; exit) END
ENDSPEC
"""


def main() -> None:
    result = derive_protocol(SERVICE)

    # --- Figure 4: the attribute evaluation -------------------------
    attrs = result.attrs
    print(f"ALL = {sorted(attrs.all_places)}")
    process_attrs = attrs.by_process["S"]
    print(
        f"SP(S) = {sorted(process_attrs.sp)}, "
        f"EP(S) = {sorted(process_attrs.ep)}, "
        f"AP(S) = {sorted(process_attrs.ap)}"
    )
    assert sorted(process_attrs.sp) == [1]
    assert sorted(process_attrs.ep) == [3]
    assert sorted(process_attrs.ap) == [1, 2, 3]

    # --- Section 4.2: the three derived protocol entities -----------
    print()
    print(result.describe())

    # --- Section 4.3: message complexity -----------------------------
    print(analyze(result).table())

    # --- Executions ---------------------------------------------------
    # The disable operator has the paper's *modified* distributed
    # semantics, so stale interrupt messages can linger; run with the
    # selective medium and without the drained-channel termination gate.
    system = build_system(
        result.entities, discipline="selective", require_empty_at_exit=False
    )
    print("\nSchedules (note interleavings around interrupt3):")
    interesting = 0
    for seed in range(40):
        run = random_run(system, seed=seed, max_steps=600)
        trace = tuple(run.trace)
        if len(trace) >= 4 or interesting < 4:
            print(f"  seed {seed:>2}: {run}")
            interesting += 1
        if interesting >= 10:
            break

    # A complete five-record transfer: steer the schedule away from
    # interrupt3, and towards eof1 once five records were read.
    import random

    rng = random.Random(7)
    reads_done = [0]

    def steer(state, transitions):
        candidates = []
        for index, (label, _) in enumerate(transitions):
            name = str(label)
            if name == "interrupt3":
                continue
            if name == "read1" and reads_done[0] >= 5:
                continue
            if name == "eof1" and reads_done[0] < 5:
                continue
            candidates.append(index)
        choice = rng.choice(candidates) if candidates else 0
        if str(transitions[choice][0]) == "read1":
            reads_done[0] += 1
        return choice

    run = random_run(system, seed=7, max_steps=600, chooser=steer)
    print(f"\nInterrupt-free schedule: {run}")
    reads = sum(1 for event in run.trace if event.name == "read")
    writes = sum(1 for event in run.trace if event.name == "write")
    print(f"records read: {reads}, records written: {writes}")
    # Without the interrupt the trace is a service trace in the strict
    # LOTOS sense:
    verdict = check_trace(result.service, run.trace, terminated=run.terminated)
    print(f"strict conformance: {bool(verdict)}")


if __name__ == "__main__":
    main()
