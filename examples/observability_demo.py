#!/usr/bin/env python3
"""Observability over the derivation pipeline: spans, metrics, profiling.

Every stage of the repo — the Protocol Generator, LTS construction,
the Section 5 theorem checker, the distributed executor — is
instrumented through ``repro.obs``, at zero cost while disabled.  This
example turns observability on around the file-transfer service
(paper Example 3), prints the span tree and metrics the work produced,
and then builds the consolidated ``repro profile`` report.

Run:  python examples/observability_demo.py
Docs: docs/observability.md (span/metric catalogue, JSON schemas)
"""

import json

from repro import workloads
from repro.core.generator import derive_protocol
from repro.obs import observe, profile_spec, render_report, validate_report
from repro.runtime import build_system, random_run


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Scoped observation: a live tracer + registry for this block.
    # ------------------------------------------------------------------
    with observe() as obs:
        result = derive_protocol(workloads.EXAMPLE3_FILE_TRANSFER)
        system = build_system(
            result.entities,
            discipline="selective",
            require_empty_at_exit=False,  # Example 3 uses [>
        )
        random_run(system, seed=0, max_steps=500)

    print("-- span tree " + "-" * 42)
    print(obs.tracer.render())

    print()
    print("-- metrics " + "-" * 44)
    print(obs.metrics.render())

    # Programmatic access: where did the time go, how big was the work?
    derive_span = obs.tracer.roots[0]
    assert derive_span.name == "derive"
    entity_spans = [c for c in derive_span.children if c.name == "derive.entity"]
    assert len(entity_spans) == len(result.places)
    assert obs.metrics.counter("derive.sync_fragments").value() > 0

    # ------------------------------------------------------------------
    # 2. Outside the block, instrumentation is free again (the no-op
    #    singletons) and outputs are untouched — same entities either way.
    # ------------------------------------------------------------------
    plain = derive_protocol(workloads.EXAMPLE3_FILE_TRANSFER)
    assert plain.entity_text(1) == result.entity_text(1)

    # ------------------------------------------------------------------
    # 3. The consolidated report behind ``repro profile``.
    # ------------------------------------------------------------------
    report = profile_spec(
        workloads.EXAMPLE3_FILE_TRANSFER,
        source="example3 (file transfer)",
        runs=3,
        seed=0,
    )
    assert validate_report(report) == []

    print()
    print("-- profile digest " + "-" * 37)
    print(render_report(report))

    print()
    print("-- report keys " + "-" * 40)
    print(json.dumps(sorted(report), indent=2))


if __name__ == "__main__":
    main()
