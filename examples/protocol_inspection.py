#!/usr/bin/env python3
"""Inspecting a derived protocol: MSC, reachability analysis, DOT.

The paper contrasts synthesis with *analysis* ("deadlocks, unspecified
receptions and non-executable interactions", Section 1).  This example
derives the file-transfer protocol and then audits it with the analysis
tool-chest — and does the same for a deliberately broken hand-written
protocol to show what the reports look like when something is wrong.

Run:  python examples/protocol_inspection.py
"""

from repro import derive_protocol, workloads
from repro.analysis import analyze_protocol
from repro.lotos.dot import syntax_tree_to_dot
from repro.lotos.parser import parse
from repro.runtime import build_system
from repro.runtime.msc import record_schedule


def main() -> None:
    result = derive_protocol(workloads.EXAMPLE3_FILE_TRANSFER)

    # --- 1. watch one schedule as a message sequence chart -----------
    system = build_system(
        result.entities,
        hide=False,
        discipline="selective",
        require_empty_at_exit=False,
    )

    reads = [0]

    def prefer_data(state, transitions):
        # steer two tidy read/push rounds followed by eof to keep the
        # chart small
        order = ["push2", "eof1", "make3", "pop2", "write3"]
        if reads[0] < 2:
            for index, (label, _) in enumerate(transitions):
                if str(label) == "read1":
                    reads[0] += 1
                    return index
        for wanted in order:
            for index, (label, _) in enumerate(transitions):
                if str(label) == wanted:
                    return index
        for index, (label, _) in enumerate(transitions):
            if str(label) not in ("interrupt3", "read1"):
                return index
        return 0

    chart = record_schedule(system, seed=2, max_steps=120, chooser=prefer_data)
    print("One schedule of the derived file-transfer protocol:\n")
    print(chart.render())

    # --- 2. reachability analysis ------------------------------------
    print("\nReachability analysis of the derived protocol:")
    report = analyze_protocol(
        result.entities,
        discipline="selective",
        max_states=6_000,
        use_occurrences=False,
    )
    print(report.render())
    print(
        "(the stale messages are the documented Section 3.3 residue of "
        "the distributed disable; there are no deadlocks)"
    )

    # --- 3. the same audit on a broken hand-written protocol ----------
    print("\nThe same audit on a hand-written protocol with a cross wait:")
    broken = {
        1: parse("SPEC a1; r2(9); s2(7); exit ENDSPEC"),
        2: parse("SPEC b2; r1(7); s1(9); exit ENDSPEC"),
    }
    bad_report = analyze_protocol(broken)
    print(bad_report.render())
    assert bad_report.deadlocks

    # --- 4. Figure 4 as DOT -------------------------------------------
    dot = syntax_tree_to_dot(result.prepared, result.attrs)
    print(
        f"\nAttributed derivation tree: {len(dot.splitlines())} lines of DOT "
        "(render with `lotos-pg service.lotos --dot tree | dot -Tsvg`)"
    )


if __name__ == "__main__":
    main()
