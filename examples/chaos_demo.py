#!/usr/bin/env python3
"""Deterministic chaos against the derivation server, in one process.

Runs the built-in ``worker-kill`` fault plan the way ``repro chaos``
does — an in-process server with the fault schedule active, a
retrying closed-loop burst, a ``/healthz`` probe — and shows the
resilience layer earning its keep: every injected worker crash is
absorbed by a retry, zero requests are lost, and the same seed
replays the same schedule.  Then the two client-side pieces on their
own: a :class:`RetryPolicy`'s deterministic backoff schedule and a
:class:`CircuitBreaker` walking closed -> open -> half-open -> closed
on a hand-cranked clock.

Run:  python examples/chaos_demo.py
Docs: docs/robustness.md (fault plans, tuning, zero-overhead contract)
"""

import asyncio

from repro.chaos import get_plan
from repro.chaos.runner import default_retry, render_digest, run_chaos
from repro.serve.resilience import CircuitBreaker, RetryPolicy


def chaos_burst() -> None:
    plan = get_plan("worker-kill", seed=1)
    print(f"plan {plan.name!r} seed {plan.seed}:")
    for fault in plan.faults:
        print(
            f"  {fault.kind} @ {fault.point} "
            f"(every {fault.every} hits after {fault.after}, "
            f"max {fault.max_injections})"
        )
    report = asyncio.run(
        run_chaos(
            plan,
            connections=2,
            requests=16,
            retry=default_retry(plan),
        )
    )
    print(render_digest(report))
    loadgen = report["loadgen"]
    assert report["verdict"]["ok"], report["verdict"]
    assert loadgen["ok"] == loadgen["requests"]
    assert report["injections"]["by_kind"].get("worker_kill", 0) > 0
    for event in report["injections"]["events"]:
        print(
            f"  injected {event['kind']} at hit {event['hit']} "
            f"of {event['point']}"
        )


def backoff_schedule() -> None:
    policy = RetryPolicy(
        max_attempts=5, base_delay=0.05, multiplier=2.0,
        max_delay=0.4, jitter=0.5, seed=7,
    )
    print("\nretry backoff (seed 7, jitter deterministic):")
    state = policy.start(seed_offset=1)
    delays = []
    while True:
        state.record_attempt(503)
        delay = state.next_delay()
        if delay is None:
            break
        delays.append(delay)
        print(f"  attempt {state.attempts} failed -> sleep {delay:.3f}s")
    print(f"  attempt {state.attempts} failed -> exhausted")
    replay = policy.start(seed_offset=1)
    replay.record_attempt(503)
    assert replay.next_delay() == delays[0]
    print(f"  same seed+offset replays the same first delay: {delays[0]:.3f}s")


def breaker_walk() -> None:
    clock = {"now": 0.0}
    breaker = CircuitBreaker(
        failure_threshold=3, reset_timeout=5.0, clock=lambda: clock["now"]
    )
    print("\ncircuit breaker on a hand-cranked clock:")
    for n in range(3):
        breaker.record_failure()
        print(f"  failure {n + 1}: state={breaker.state}")
    assert not breaker.allow()
    clock["now"] += 5.0
    print(f"  +5.0s: state={breaker.state}")
    assert breaker.allow()  # the half-open probe
    breaker.record_success()
    print(f"  probe succeeded: state={breaker.state}")
    assert breaker.state == "closed"


def main() -> None:
    chaos_burst()
    backoff_schedule()
    breaker_walk()
    print("\nchaos demo: all assertions passed")


if __name__ == "__main__":
    main()
