#!/usr/bin/env python3
"""The static-analysis front end: ``repro lint`` as a library.

The Protocol Generator has always refused inadmissible specifications
(restrictions R1-R3, the Table 1 grammar).  The lint framework extends
that front end with source-located diagnostics for specifications that
are *legal* but defective — dead process definitions, rendezvous that
can never fire, constructs whose derivation broadcasts needless
synchronization messages.  This example lints one defect-riddled
specification, walks the diagnostics programmatically, and shows the
machine-readable JSON document CI systems consume.

Run:  python examples/lint_demo.py
Docs: docs/lint.md (rule catalogue, JSON schema, exit codes)
"""

import json

from repro.analysis.lint import RULES, lint_text


def main() -> None:
    # Three deliberate defects: an unused helper process, a '|[...]|'
    # event the left operand never offers, and an interrupt spanning a
    # strict subset of the places (derivation broadcasts anyway).
    defective = """SPEC ((a1; b2; exit) [> (c2; exit)) >> Finish
      WHERE
        PROC Finish = (d3; exit) |[e3]| (e3; exit) END
        PROC Unused = f1; exit END
    ENDSPEC
    """

    result = lint_text(defective, source="defective.lotos")
    print("-- text report " + "-" * 40)
    print(result.render_text())

    print()
    print("-- programmatic access " + "-" * 32)
    assert not result.errors and len(result.warnings) == 2
    for diagnostic in result:
        where = f"{diagnostic.span}" if diagnostic.span else "(whole spec)"
        print(f"{diagnostic.rule} {diagnostic.name:<18} at {where}")
    fired = {diagnostic.rule for diagnostic in result}
    assert {"L001", "L004", "L010"} <= fired

    print()
    print("-- JSON document (--format json) " + "-" * 22)
    document = json.loads(result.render_json())  # stable schema, version 1
    assert document["version"] == 1
    assert document["summary"]["warnings"] == 2
    print(json.dumps(document["summary"]))
    print(json.dumps(document["diagnostics"][0], indent=2))

    # The admissibility checks flow through the same diagnostic model:
    # a two-starter choice is an R1 error (plus the L009 advice)...
    mixed = "SPEC a1; c3; exit [] b2; c3; exit ENDSPEC"
    refused = lint_text(mixed, source="mixed.lotos")
    assert not refused.ok
    assert {d.rule for d in refused} == {"R1", "L009"}
    # ... unless linted as a --mixed-choice derivation input, where the
    # arbiter protocol resolves exactly this shape.
    forgiven = lint_text(mixed, source="mixed.lotos", mixed_choice=True)
    assert forgiven.ok and not len(forgiven)

    print()
    print(f"{len(RULES)} registered rules; R1 forgiven under mixed_choice:",
          forgiven.ok)


if __name__ == "__main__":
    main()
