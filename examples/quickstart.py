#!/usr/bin/env python3
"""Quickstart: derive a two-party protocol from a one-line service.

The service says: first the user at place 1 does ``a``, then the user at
place 2 does ``b``.  The derived protocol must make entity 1 tell entity
2 when it may proceed — one synchronization message, exactly the paper's
Example 4 (Section 3.1).

Run:  python examples/quickstart.py
"""

from repro import derive_protocol, verify_derivation
from repro.runtime import build_system, check_run, random_run

SERVICE = """
SPEC
  a1; exit >> b2; exit
ENDSPEC
"""


def main() -> None:
    print("Service specification:")
    print(SERVICE)

    # 1. Derive one protocol entity per service access point.
    result = derive_protocol(SERVICE)
    print(f"Places (SAPs): {result.places}")
    print(result.describe())

    # 2. Execute the entities against the FIFO medium and watch the
    #    observable behaviour at the service access points.
    system = build_system(result.entities)
    for seed in range(3):
        run = random_run(system, seed=seed)
        verdict = check_run(result.service, run)
        print(f"schedule {seed}: {run}  -> conformant: {bool(verdict)}")

    # 3. Check the paper's correctness theorem:
    #    S  ≈  hide G in ((T1 ||| T2) |[G]| Medium)
    report = verify_derivation(result)
    print(f"\nTheorem check: {report}")
    assert report.equivalent and report.congruent


if __name__ == "__main__":
    main()
