#!/usr/bin/env python3
"""Non-regular behaviour: the (a)^n (b)^n counting service (Example 2).

    SPEC A WHERE
      PROC A = (a1; A >> b2; exit) [] (a1; b2; exit)
    END ENDSPEC

Every recursive descent into ``A`` stacks one pending ``b2`` behind the
``>>``; the language of the service is { a1^n b2^n | n > 0 }, which no
finite-state machine can express — this is the paper's showcase for why
unrestricted recursion matters (earlier work [Boch 86, Khen 89] could
not describe it).

The derived protocol realizes the counting *distributedly*: entity 2
mirrors the recursion stack of entity 1 purely through the order of the
synchronization messages it receives.

Run:  python examples/counting_protocol.py
"""

from collections import Counter

from repro import derive_protocol, verify_derivation
from repro.runtime import build_system, check_run, random_run

SERVICE = """
SPEC A WHERE
  PROC A = (a1; A >> b2; exit) [] (a1; b2; exit)
END ENDSPEC
"""


def main() -> None:
    result = derive_protocol(SERVICE)
    print(result.describe())

    system = build_system(result.entities)
    histogram: Counter = Counter()
    for seed in range(80):
        run = random_run(system, seed=seed, max_steps=800)
        verdict = check_run(result.service, run)
        assert verdict.ok, f"seed {seed}: {verdict}"
        a_count = sum(1 for event in run.trace if event.name == "a")
        b_count = sum(1 for event in run.trace if event.name == "b")
        assert run.terminated and a_count == b_count and a_count >= 1, run
        # The a's strictly precede the b's:
        names = [event.name for event in run.trace]
        assert names == ["a"] * a_count + ["b"] * b_count
        histogram[a_count] += 1
    print("observed n over 80 random schedules (trace = a^n b^n):")
    for n in sorted(histogram):
        print(f"  n = {n:>2}: {histogram[n]:>3} runs {'#' * histogram[n]}")

    # Depth-bounded equivalence check (the state space is infinite, so
    # the exact weak-bisimulation method cannot apply).
    report = verify_derivation(result, trace_depth=7)
    print(f"\nTheorem check: {report}")
    assert report.equivalent


if __name__ == "__main__":
    main()
