#!/usr/bin/env python3
"""A two-phase-commit-style service, twice: plain and with mixed choice.

A coordinator (place 1) collects readiness from two participants
(places 2 and 3), then either commits or aborts — a classic distributed
control pattern expressed as a *service*, with the protocol that
realizes it derived rather than designed:

    SPEC begin1; ready2; ready3;
         ( (commit1; apply2; apply3; done1; exit)
        [] (abort1;  undo2;  undo3;  done1; exit) )
    ENDSPEC

The second variant lets participant 2 *veto* instead of the coordinator
aborting — a choice whose alternatives start at different places, which
the paper's restriction R1 forbids and the arbiter extension
(`mixed_choice=True`) handles.

Run:  python examples/two_phase_commit.py
"""

from repro import derive_protocol, verify_derivation
from repro.core.complexity import analyze
from repro.runtime import build_system, check_run, random_run

PLAIN = """
SPEC begin1; ready2; ready3;
     ( (commit1; apply2; apply3; done1; exit)
    [] (abort1;  undo2;  undo3;  done1; exit) )
ENDSPEC
"""

WITH_VETO = """
SPEC begin1; ready3;
     ( (commit1; apply2; apply3; done1; exit)
    [] (veto2;   undo3;  undo2;  done1; exit) )
ENDSPEC
"""


def main() -> None:
    # --- plain 2PC: fully inside the paper's restrictions -------------
    result = derive_protocol(PLAIN)
    print("Plain two-phase commit — derived entities:")
    print(result.describe())
    print(analyze(result).table())

    system = build_system(result.entities)
    outcomes = {"commit1": 0, "abort1": 0}
    for seed in range(40):
        run = random_run(system, seed=seed, max_steps=800)
        assert run.terminated and check_run(result.service, run)
        for event in run.trace:
            name = str(event)
            if name in outcomes:
                outcomes[name] += 1
    print(f"outcomes over 40 schedules: {outcomes}")

    report = verify_derivation(result)
    print(f"theorem check: {report}\n")
    assert report.equivalent and report.congruent

    # --- participant veto: needs the R1 relaxation --------------------
    try:
        derive_protocol(WITH_VETO)
    except Exception as exc:
        print(f"veto variant without the extension: {exc}")
    veto = derive_protocol(WITH_VETO, mixed_choice=True)
    print("\nVeto variant (mixed choice) — coordinator entity:")
    print(veto.entity_text(1))

    system = build_system(veto.entities)
    outcomes = {"commit1": 0, "veto2": 0}
    for seed in range(40):
        run = random_run(system, seed=seed, max_steps=800)
        assert run.terminated and check_run(veto.service, run), str(run)
        for event in run.trace:
            name = str(event)
            if name in outcomes:
                outcomes[name] += 1
    print(f"outcomes over 40 schedules: {outcomes}")
    assert outcomes["commit1"] and outcomes["veto2"]


if __name__ == "__main__":
    main()
