"""Verification of the correctness theorem (paper Section 5).

    S  ≈  hide G in ( (T1(S) ||| T2(S) ||| ... ||| Tn(S)) |[G]| Medium )

Two independent implementations of the right-hand side are provided:

* the *operational* composition of :mod:`repro.runtime.system`
  (entities + medium queues as one transition system), and
* the *term-level* composition of :mod:`repro.verification.composition`,
  which builds the literal LOTOS expression of Section 5.2 — capacity-1
  ``Channel_jk`` processes, explicit gate set ``G``, ``hide`` — and runs
  it through the ordinary LOTOS semantics.

:mod:`repro.verification.checker` compares either against the service:
exact observation congruence for finite-state systems, bounded weak-trace
equivalence otherwise.
"""

from repro.verification.checker import (
    VerificationReport,
    safety_report,
    verify_derivation,
)
from repro.verification.composition import compose_term, message_alphabet

__all__ = [
    "VerificationReport",
    "safety_report",
    "verify_derivation",
    "compose_term",
    "message_alphabet",
]
