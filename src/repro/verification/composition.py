"""The literal Section 5.2 composition as one LOTOS term.

The paper proves its theorem against an explicit medium specification::

    Channel_jk = []_{m in M} ( s_jk(m) ; r_kj(m) ; Channel_jk )
    Medium     = |||_{j,k}  Channel_jk

with ``G = { s_ij(m), r_ji(m) | i != j, m in M }`` and at most one
message in transit per channel.  :func:`compose_term` builds::

    hide G in ( (T1 ||| ... ||| Tn) |[G]| Medium )

as an ordinary behaviour expression over the long-form send/receive
events, so the standard LOTOS semantics executes it — a second,
independent realization of the distributed system that the tests compare
against the queue-based runtime composition.

Message alphabets are finite only for non-recursive entity
specifications (occurrence paths grow without bound under recursion);
:func:`message_alphabet` therefore expands process references with cycle
detection and reports recursion as unsupported for this composition.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.errors import VerificationError
from repro.lotos.events import (
    Event,
    ReceiveAction,
    SendAction,
)
from repro.lotos.scope import bind_occurrence, flatten
from repro.lotos.syntax import (
    ActionPrefix,
    Behaviour,
    Hide,
    Parallel,
    ProcessRef,
    Specification,
)

#: (sender, receiver, message) triples.
Alphabet = FrozenSet[Tuple[int, int, object]]


def annotate_entity(root: Behaviour, place: int) -> Behaviour:
    """Convert an entity's short-form interactions to long form.

    Inside entity ``p``, ``s_j(m)`` means "p sends to j" and ``r_i(m)``
    means "p receives from i"; composition needs the sender/receiver
    explicit on every event.
    """
    if isinstance(root, ActionPrefix):
        event = root.event
        if isinstance(event, SendAction) and event.src is None:
            event = event.with_src(place)
        elif isinstance(event, ReceiveAction) and event.dest is None:
            event = event.with_dest(place)
        return ActionPrefix(
            event, annotate_entity(root.continuation, place), nid=root.nid
        )
    children = root.children()
    if not children:
        return root
    return root.with_children(
        tuple(annotate_entity(child, place) for child in children)
    )


def _expand_entity(spec: Specification, place: int) -> Behaviour:
    """Inline every process reference (non-recursive specs only).

    Occurrence paths are bound during inlining exactly as the runtime
    binds them at instantiation, so the resulting closed term carries the
    same concrete message identities.
    """
    root, definitions = flatten(spec)

    def expand(node: Behaviour, stack: Tuple[str, ...]) -> Behaviour:
        if isinstance(node, ProcessRef):
            if node.name in stack:
                raise VerificationError(
                    f"entity for place {place} is recursive (process "
                    f"{node.name!r}); the term-level composition needs a "
                    "finite message alphabet — use the runtime composition "
                    "or bounded trace comparison instead"
                )
            body = definitions.get(node.name)
            if body is None:
                raise VerificationError(f"undefined process {node.name!r}")
            occurrence = (
                node.occurrence
                if node.occurrence is not None
                else node.child_occurrence(())
            )
            return expand(
                bind_occurrence(body, occurrence), stack + (node.name,)
            )
        children = node.children()
        if not children:
            return node
        return node.with_children(
            tuple(expand(child, stack) for child in children)
        )

    return expand(bind_occurrence(root, ()), ())


def message_alphabet(
    entities: Dict[int, Specification]
) -> Tuple[Dict[int, Behaviour], Alphabet]:
    """Closed (inlined, annotated) entity terms and their message triples."""
    closed: Dict[int, Behaviour] = {}
    triples: Set[Tuple[int, int, object]] = set()
    for place, spec in entities.items():
        term = annotate_entity(_expand_entity(spec, place), place)
        closed[place] = term
        for node in term.walk():
            if isinstance(node, ActionPrefix):
                event = node.event
                if isinstance(event, SendAction):
                    triples.add((event.src, event.dest, event.message))
                elif isinstance(event, ReceiveAction):
                    # (sender, receiver, message): the receive names its
                    # sender in ``src`` and was annotated with the
                    # receiving place in ``dest``.
                    triples.add((event.src, event.dest, event.message))
    return closed, frozenset(triples)


def _channel_body(src: int, dest: int, messages: List[object]) -> Behaviour:
    """``[]_m ( s_ij(m); r_ji(m); Channel_ij ) [] exit`` (capacity one).

    The ``[] exit`` alternative is a deliberate deviation from the
    literal Section 5.2 channel: the paper's channels never terminate,
    so the *composed term* could never perform ``delta`` even though the
    service does (the proof sidesteps this by splitting the medium along
    the ``>>`` structure).  Letting an *idle* channel terminate makes
    global termination possible exactly when every entity has terminated
    and no message is in flight — the same policy as the runtime
    composition's ``require_empty_at_exit``.
    """
    from repro.lotos.syntax import Choice, Exit

    name = f"Channel{src}X{dest}"
    alternatives: List[Behaviour] = [
        ActionPrefix(
            SendAction(dest=dest, message=message, src=src),
            ActionPrefix(
                ReceiveAction(src=src, message=message, dest=dest),
                ProcessRef(name, site=0),
            ),
        )
        for message in messages
    ]
    body: Behaviour = Exit()
    for alternative in reversed(alternatives):
        body = Choice(alternative, body)
    return body


def compose_term(
    entities: Dict[int, Specification],
) -> Tuple[Behaviour, Dict[str, Behaviour], FrozenSet[Event]]:
    """Build ``hide G in ((T1 ||| ... ||| Tn) |[G]| Medium)``.

    Returns ``(term, process_environment, G)``; run the term with
    ``Semantics(process_environment, bind_occurrences=False)`` — all
    occurrences are already concrete after inlining.
    """
    from repro.obs.metrics import get_registry
    from repro.obs.spans import get_tracer

    with get_tracer().span("compose.term", entities=len(entities)) as span:
        closed, triples = message_alphabet(entities)
        if not closed:
            raise VerificationError("no entities to compose")
        span.set(alphabet=len(triples))
        registry = get_registry()
        registry.gauge(
            "compose.alphabet_size",
            help="(sender, receiver, message) triples in G",
        ).set(len(triples))
        registry.gauge(
            "compose.channels", help="ordered place pairs with traffic"
        ).set(len({(src, dest) for src, dest, _ in triples}))

    gate_set: Set[Event] = set()
    per_channel: Dict[Tuple[int, int], List[object]] = {}
    for src, dest, message in sorted(
        triples, key=lambda t: (t[0], t[1], t[2].sort_key())
    ):
        gate_set.add(SendAction(dest=dest, message=message, src=src))
        gate_set.add(ReceiveAction(src=src, message=message, dest=dest))
        per_channel.setdefault((src, dest), []).append(message)

    environment: Dict[str, Behaviour] = {}
    channel_terms: List[Behaviour] = []
    for (src, dest), messages in sorted(per_channel.items()):
        name = f"Channel{src}X{dest}"
        environment[name] = _channel_body(src, dest, messages)
        channel_terms.append(ProcessRef(name, site=0))

    entity_terms = [closed[place] for place in sorted(closed)]
    entities_par = _interleave_all(entity_terms)
    gates = frozenset(gate_set)
    if channel_terms:
        medium = _interleave_all(channel_terms)
        composed: Behaviour = Parallel(entities_par, medium, sync=gates)
    else:
        composed = entities_par
    return Hide(composed, gates=gates), environment, gates


def _interleave_all(terms: List[Behaviour]) -> Behaviour:
    result = terms[-1]
    for term in reversed(terms[:-1]):
        result = Parallel(term, result)
    return result
