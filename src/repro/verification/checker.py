"""The theorem checker: service vs. composed protocol system.

For finite-state systems the check is exact: weak bisimulation and the
rooted (observation congruence) condition between the service LTS and
the composed-system LTS.  Recursive services generally yield infinite
composed state spaces (occurrence paths grow); there the checker falls
back to bounded weak-trace equivalence, reporting the bound it used.

The theorem holds under the paper's stated assumption that the service
contains no disable operator; for services *with* ``[>`` the checker can
still run, but only the weaker guarantees of Section 3.3 apply — use
``expect_exact=False`` and interpret trace *inclusion* results instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from repro.core.generator import DerivationResult, derive_protocol
from repro.errors import StateSpaceLimitExceeded
from repro.lotos.events import Label
from repro.lotos.lts import LTS, build_lts
from repro.lotos.equivalence import observationally_congruent, weak_bisimilar
from repro.lotos.semantics import Semantics
from repro.obs.metrics import get_registry
from repro.obs.spans import get_tracer
from repro.lotos.syntax import Disable, Specification
from repro.lotos.traces import (
    format_trace,
    weak_trace_equivalent,
    weak_trace_included,
)
from repro.runtime.system import build_system

ServiceInput = Union[str, Specification, DerivationResult]

DEFAULT_MAX_STATES = 40_000
DEFAULT_TRACE_DEPTH = 8

#: Largest composed-system LTS on which the exact (weak bisimulation)
#: method is attempted; saturation is quadratic in the state count, so
#: beyond this the checker answers with bounded traces instead.  Raise it
#: explicitly for a stronger (slower) verdict.
DEFAULT_EXACT_STATE_LIMIT = 5_000


@dataclass
class VerificationReport:
    """Result of one theorem check.

    ``method`` is ``"weak-bisimulation"`` (exact, finite case) or
    ``"bounded-traces"``; ``equivalent`` is the primary verdict;
    ``congruent`` additionally reports the rooted condition when the
    exact method ran.  ``counterexample`` is a distinguishing trace when
    the verdict is negative.
    """

    method: str
    equivalent: bool
    congruent: Optional[bool] = None
    counterexample: Optional[Tuple[Label, ...]] = None
    service_states: Optional[int] = None
    system_states: Optional[int] = None
    trace_depth: Optional[int] = None
    has_disable: bool = False
    notes: list = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.equivalent

    def __str__(self) -> str:
        verdict = "EQUIVALENT" if self.equivalent else "NOT EQUIVALENT"
        parts = [f"{verdict} ({self.method})"]
        if self.congruent is not None:
            parts.append(f"observation congruent: {self.congruent}")
        if self.counterexample is not None:
            parts.append(f"counterexample: {format_trace(self.counterexample)}")
        if self.service_states is not None:
            parts.append(
                f"states: service={self.service_states}, system={self.system_states}"
            )
        if self.trace_depth is not None:
            parts.append(f"trace depth: {self.trace_depth}")
        for note in self.notes:
            parts.append(note)
        return "; ".join(parts)


def _service_has_disable(spec: Specification) -> bool:
    return any(isinstance(node, Disable) for node in spec.walk_behaviours())


def _is_recursive(spec: Specification) -> bool:
    """Whether any process of ``spec`` can (transitively) invoke itself."""
    from repro.lotos.syntax import ProcessRef

    calls = {}
    for definition in spec.definitions:
        calls[definition.name] = {
            node.name
            for node in definition.body.behaviour.walk()
            if isinstance(node, ProcessRef)
        }
    for start in calls:
        seen, frontier = set(), set(calls[start])
        while frontier:
            name = frontier.pop()
            if name == start:
                return True
            if name not in seen:
                seen.add(name)
                frontier |= calls.get(name, set())
    return False


def verify_derivation(
    service: ServiceInput,
    max_states: int = DEFAULT_MAX_STATES,
    trace_depth: int = DEFAULT_TRACE_DEPTH,
    capacity: Optional[int] = None,
    discipline: str = "fifo",
    use_occurrences: bool = True,
    exact_state_limit: int = DEFAULT_EXACT_STATE_LIMIT,
) -> VerificationReport:
    """Check ``S ≈ hide G in ((T1 ||| ... ||| Tn) |[G]| Medium)``.

    Accepts the service text, a parsed specification, or an existing
    :class:`DerivationResult` (so callers can verify exactly what they
    derived).  Strategy:

    1. attempt full LTS construction of both sides within ``max_states``;
    2. if both are finite, decide weak bisimulation and observation
       congruence exactly;
    3. otherwise compare weak traces up to ``trace_depth``.
    """
    tracer = get_tracer()
    result = service if isinstance(service, DerivationResult) else derive_protocol(service)
    has_disable = _service_has_disable(result.prepared)

    service_semantics, service_root = Semantics.of_specification(
        result.prepared, bind_occurrences=False
    )
    system = build_system(
        result.entities,
        capacity=capacity,
        discipline=discipline,
        hide=True,
        use_occurrences=use_occurrences,
        require_empty_at_exit=not has_disable,
    )

    # There is no point materializing more states than the exact method
    # is willing to saturate: if either side exceeds the exact limit the
    # verdict comes from bounded traces anyway, and unbounded (recursive)
    # services would otherwise burn the whole budget on ever-deeper terms.
    # Deterministic internal chains compress away without affecting weak
    # bisimilarity (repro.lotos.reduction), so the raw build budget can
    # exceed the saturation limit: a system a few times larger than the
    # exact gate may still fit after compression.
    budget = min(max_states, exact_state_limit * 3)
    recursive = _is_recursive(result.prepared)
    if recursive:
        # Recursive services are infinite-state by construction here (the
        # service stacks >> contexts; the entities grow occurrence
        # paths): attempting the exact method would only burn the budget
        # on ever-deeper terms before falling back anyway.
        service_lts = system_lts = None
    else:
        with tracer.span("verify.service_lts"):
            service_lts = _try_build(service_root, service_semantics, budget)
        with tracer.span("verify.system_lts"):
            system_lts = _try_build(system.initial, system, budget)
            if system_lts is not None:
                from repro.lotos.reduction import compress_tau_chains

                system_lts = compress_tau_chains(system_lts)
        if (
            service_lts is not None
            and system_lts is not None
            and max(service_lts.num_states, system_lts.num_states)
            > exact_state_limit
        ):
            service_lts = system_lts = None  # still too large to saturate

    registry = get_registry()
    if service_lts is not None and system_lts is not None:
        with tracer.span(
            "verify.compare",
            method="weak-bisimulation",
            service_states=service_lts.num_states,
            system_states=system_lts.num_states,
        ):
            equivalent = weak_bisimilar(service_lts, system_lts)
            congruent = (
                observationally_congruent(service_lts, system_lts)
                if equivalent
                else False
            )
        registry.gauge(
            "verify.service_states", help="service LTS size at the check"
        ).set(service_lts.num_states)
        registry.gauge(
            "verify.system_states",
            help="composed-system LTS size (tau-compressed)",
        ).set(system_lts.num_states)
        registry.counter(
            "verify.checks", help="theorem checks by method"
        ).inc(method="weak-bisimulation")
        report = VerificationReport(
            method="weak-bisimulation",
            equivalent=equivalent,
            congruent=congruent,
            service_states=service_lts.num_states,
            system_states=system_lts.num_states,
            has_disable=has_disable,
        )
        if not equivalent:
            _, witness = weak_trace_equivalent(
                service_root, service_semantics, system.initial, system, trace_depth
            )
            report.counterexample = witness
        if has_disable:
            report.notes.append(
                "service uses [>: the theorem's exactness assumption does "
                "not hold (paper Section 5 excludes the disable operator)"
            )
        return report

    with tracer.span(
        "verify.compare", method="bounded-traces", depth=trace_depth
    ):
        equivalent, witness = weak_trace_equivalent(
            service_root, service_semantics, system.initial, system, trace_depth
        )
    registry.counter("verify.checks", help="theorem checks by method").inc(
        method="bounded-traces"
    )
    report = VerificationReport(
        method="bounded-traces",
        equivalent=equivalent,
        counterexample=witness,
        trace_depth=trace_depth,
        has_disable=has_disable,
        notes=[
            "recursive service: the state space is unbounded"
            if recursive
            else "state space exceeded budget",
            "verdict is depth-bounded",
        ],
    )
    return report


def safety_report(
    service: ServiceInput,
    trace_depth: int = DEFAULT_TRACE_DEPTH,
    capacity: Optional[int] = None,
    discipline: str = "selective",
    use_occurrences: bool = True,
) -> VerificationReport:
    """One-sided check: every system trace is a service trace.

    This is the meaningful property for services *with* the disable
    operator, modulo the two documented shortcomings of the distributed
    disable implementation (Section 3.3) — and the exact property for the
    naive-projection baseline comparisons.
    """
    result = service if isinstance(service, DerivationResult) else derive_protocol(service)
    has_disable = _service_has_disable(result.prepared)
    service_semantics, service_root = Semantics.of_specification(
        result.prepared, bind_occurrences=False
    )
    system = build_system(
        result.entities,
        capacity=capacity,
        discipline=discipline,
        hide=True,
        use_occurrences=use_occurrences,
        require_empty_at_exit=False,
    )
    included, witness = weak_trace_included(
        system.initial, system, service_root, service_semantics, trace_depth
    )
    return VerificationReport(
        method="bounded-trace-inclusion",
        equivalent=included,
        counterexample=witness,
        trace_depth=trace_depth,
        has_disable=has_disable,
    )


def _try_build(root, semantics, max_states: int) -> Optional[LTS]:
    try:
        return build_lts(root, semantics, max_states=max_states, on_limit="raise")
    except StateSpaceLimitExceeded:
        return None
    except RecursionError:
        # Deeply left-growing terms (e.g. the enable stack of a^n b^n)
        # can exceed the interpreter's comparison depth before the state
        # budget is hit; treat exactly like a budget overflow.
        return None
