"""The consolidated profiling harness behind ``repro profile``.

:func:`profile_spec` runs the full life of one service specification —
derivation, Section 5 verification, and N seeded executor runs — under a
fresh tracer and metrics registry, and folds everything into one JSON
report (schema ``repro.obs.profile/v1``).  The report is the artifact
the repo's ``BENCH_*.json`` perf trajectory and CI's profile-smoke job
are built from: pipeline-stage spans, LTS state counts, per-channel
queue high-water marks and message-delay distributions, all in one
machine-readable document.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.schema import PROFILE_SCHEMA
from repro.obs.spans import Tracer, use_tracer


def channel_name(key) -> str:
    """Render a ``(src, dest)`` channel key as the stable ``"src->dest"``."""
    src, dest = key
    return f"{src}->{dest}"


def spec_display_name(path: str, root: Optional[str] = None) -> str:
    """A machine-independent display name for a specification path.

    Reports, cache entries and CI artifacts must not embed absolute
    (often temp-directory) paths — they differ per machine and per run,
    which breaks report diffing and key reproducibility.  Relative to
    ``root`` when given; otherwise an absolute path collapses to its
    basename and a user-typed relative path is kept as typed.
    """
    import os

    if path == "-":
        return "<stdin>"
    if root is not None:
        try:
            return os.path.relpath(path, root)
        except ValueError:  # different drive (Windows): fall through
            pass
    if os.path.isabs(path):
        return os.path.basename(path)
    return path


def profile_spec(
    text: str,
    source: str = "<string>",
    runs: int = 3,
    seed: int = 0,
    max_steps: int = 5_000,
    verify: bool = True,
    mixed_choice: bool = False,
    discipline: str = "fifo",
    trace_depth: int = 6,
) -> Dict[str, Any]:
    """Derive + verify + execute ``runs`` seeded schedules; one report.

    Services with ``[>`` are executed with the selective discipline and
    without the empty-at-exit gate, matching how the rest of the repo
    runs disable-carrying examples.
    """
    from repro.core.generator import derive_protocol
    from repro.lotos.syntax import Disable
    from repro.runtime import build_system, check_run, random_run

    tracer = Tracer()
    registry = MetricsRegistry()
    with use_tracer(tracer), use_registry(registry):
        with tracer.span("profile", source=source):
            result = derive_protocol(text, mixed_choice=mixed_choice)
            has_disable = any(
                isinstance(node, Disable)
                for node in result.prepared.walk_behaviours()
            )

            verification: Optional[Dict[str, Any]] = None
            if verify:
                from repro.verification import safety_report, verify_derivation

                # Disable-carrying services fall outside the Section 5
                # theorem; the meaningful property there is one-sided
                # trace inclusion (Section 3.3), so profile that instead.
                with tracer.span("profile.verify"):
                    report = (
                        safety_report(result, trace_depth=trace_depth)
                        if has_disable
                        else verify_derivation(result, trace_depth=trace_depth)
                    )
                verification = {
                    "method": report.method,
                    "equivalent": bool(report.equivalent),
                    "congruent": report.congruent,
                    "service_states": report.service_states,
                    "system_states": report.system_states,
                    "trace_depth": report.trace_depth,
                }
            if has_disable:
                discipline = "selective"
            with tracer.span("profile.execute", runs=runs):
                system = build_system(
                    result.entities,
                    discipline=discipline,
                    require_empty_at_exit=not has_disable,
                )
                run_rows: List[Dict[str, Any]] = []
                hwm: Dict[str, int] = {}
                delays: List[int] = []
                conformant = True
                for offset in range(runs):
                    run = random_run(
                        system, seed=seed + offset, max_steps=max_steps
                    )
                    verdict = check_run(result.service, run)
                    conformant = conformant and verdict.ok
                    row_hwm = {
                        channel_name(key): depth
                        for key, depth in sorted(run.queue_high_water.items())
                    }
                    for channel, depth in row_hwm.items():
                        if depth > hwm.get(channel, 0):
                            hwm[channel] = depth
                    delays.extend(run.delivery_delays)
                    run_rows.append(
                        {
                            "seed": seed + offset,
                            "steps": run.steps,
                            "trace_length": len(run.trace),
                            "messages_sent": run.messages_sent,
                            "messages_received": run.messages_received,
                            "status": _status(run),
                            "conformant": verdict.ok,
                            "queue_high_water": row_hwm,
                        }
                    )

    ledger_total = int(
        registry.counter("derive.sync_fragments").value()
    )
    report_doc: Dict[str, Any] = {
        "schema": PROFILE_SCHEMA,
        "source": source,
        "places": [int(place) for place in result.places],
        "derivation": {
            "places": len(result.places),
            "sync_fragments": ledger_total,
            "violations": len(result.violations),
            "has_disable": has_disable,
        },
        "verification": verification,
        "runs": run_rows,
        "medium": {
            "discipline": discipline,
            "queue_high_water": hwm,
            "delays": _summarize_delays(delays),
        },
        "conformant": conformant,
        "trace": tracer.to_dict(),
        "metrics": registry.snapshot(),
    }
    return report_doc


def _status(run) -> str:
    if run.terminated:
        return "terminated"
    if run.deadlocked:
        return "deadlocked"
    if run.truncated:
        return "truncated"
    return "running"


def _summarize_delays(delays: List[int]) -> Dict[str, Any]:
    if not delays:
        return {"count": 0, "min": None, "max": None, "mean": None}
    return {
        "count": len(delays),
        "min": min(delays),
        "max": max(delays),
        "mean": round(sum(delays) / len(delays), 3),
    }


def render_report(report: Dict[str, Any]) -> str:
    """Short human-readable digest of a profile report."""
    lines = [f"profile of {report['source']} (places {report['places']})"]
    derivation = report["derivation"]
    lines.append(
        f"  derivation: {derivation['places']} entities, "
        f"{derivation['sync_fragments']} sync fragments, "
        f"{derivation['violations']} violations"
    )
    verification = report.get("verification")
    if verification:
        lines.append(
            f"  verification: {verification['method']} -> "
            f"{'EQUIVALENT' if verification['equivalent'] else 'NOT EQUIVALENT'}"
            + (
                f" (service={verification['service_states']}, "
                f"system={verification['system_states']} states)"
                if verification.get("service_states") is not None
                else ""
            )
        )
    for row in report["runs"]:
        lines.append(
            f"  run seed={row['seed']}: {row['status']} after {row['steps']} "
            f"steps, {row['messages_sent']} messages, "
            f"conformant={row['conformant']}"
        )
    hwm = report["medium"]["queue_high_water"]
    if hwm:
        rendered = ", ".join(f"{ch}:{d}" for ch, d in sorted(hwm.items()))
        lines.append(f"  queue high-water: {rendered}")
    delays = report["medium"]["delays"]
    if delays["count"]:
        lines.append(
            f"  delivery delay (steps): min={delays['min']} "
            f"mean={delays['mean']} max={delays['max']} n={delays['count']}"
        )
    return "\n".join(lines)


def render_report_json(report: Dict[str, Any], indent: Optional[int] = 2) -> str:
    return json.dumps(report, indent=indent, sort_keys=True)
