"""Dependency-free structural validation of the ``repro.obs`` documents.

Seven JSON documents are validated here: the span tree
(``repro.obs.trace/v1``), the metrics snapshot
(``repro.obs.metrics/v1``), the consolidated profile report
(``repro.obs.profile/v1``), the corpus batch summary
(``repro.obs.batch/v1``, produced by :mod:`repro.batch`), the
derivation-server wire envelopes (``repro.serve.request/v1`` /
``repro.serve.response/v1``, spoken by :mod:`repro.serve`), the
load-generator report (``repro.obs.loadgen/v2`` — v2 added the retry
outcome classification: recovered / exhausted / retry counts) and the
chaos-run report (``repro.obs.chaos/v1``, produced by ``repro
chaos``).  CI's smoke and gate jobs validate against these shapes
before trusting a report, and tests pin them so the schemas only
change deliberately.

The validator is a tiny structural checker (no jsonschema dependency):
each check returns a list of human-readable problem strings, empty when
the document conforms.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.obs.metrics import METRICS_SCHEMA
from repro.obs.spans import TRACE_SCHEMA

PROFILE_SCHEMA = "repro.obs.profile/v1"
BENCH_SCHEMA = "repro.obs.bench/v1"
BATCH_SCHEMA = "repro.obs.batch/v1"
SERVE_REQUEST_SCHEMA = "repro.serve.request/v1"
SERVE_RESPONSE_SCHEMA = "repro.serve.response/v1"
LOADGEN_SCHEMA = "repro.obs.loadgen/v2"

#: Operations the derivation server can run (``POST /v1/<op>``).
SERVE_OPS = ("derive", "lint", "profile")


def _require(
    document: Dict[str, Any],
    path: str,
    fields: Dict[str, Any],
    problems: List[str],
) -> None:
    for name, expected in fields.items():
        if name not in document:
            problems.append(f"{path}: missing required field {name!r}")
        elif not isinstance(document[name], expected):
            wanted = (
                "/".join(e.__name__ for e in expected)
                if isinstance(expected, tuple)
                else expected.__name__
            )
            problems.append(
                f"{path}.{name}: expected {wanted}, "
                f"got {type(document[name]).__name__}"
            )


def validate_trace(document: Any, path: str = "trace") -> List[str]:
    problems: List[str] = []
    if not isinstance(document, dict):
        return [f"{path}: not an object"]
    _require(document, path, {"schema": str, "enabled": bool, "spans": list}, problems)
    if document.get("schema") not in (None, TRACE_SCHEMA):
        problems.append(f"{path}.schema: unknown schema {document['schema']!r}")
    for index, span in enumerate(document.get("spans", [])):
        problems.extend(_validate_span(span, f"{path}.spans[{index}]"))
    return problems


def _validate_span(span: Any, path: str) -> List[str]:
    problems: List[str] = []
    if not isinstance(span, dict):
        return [f"{path}: not an object"]
    _require(
        span,
        path,
        {"name": str, "start_s": (int, float), "duration_s": (int, float),
         "attrs": dict, "children": list},
        problems,
    )
    for index, child in enumerate(span.get("children", [])):
        problems.extend(_validate_span(child, f"{path}.children[{index}]"))
    return problems


def validate_metrics(document: Any, path: str = "metrics") -> List[str]:
    problems: List[str] = []
    if not isinstance(document, dict):
        return [f"{path}: not an object"]
    _require(document, path, {"schema": str, "metrics": list}, problems)
    if document.get("schema") not in (None, METRICS_SCHEMA):
        problems.append(f"{path}.schema: unknown schema {document['schema']!r}")
    for index, metric in enumerate(document.get("metrics", [])):
        mpath = f"{path}.metrics[{index}]"
        if not isinstance(metric, dict):
            problems.append(f"{mpath}: not an object")
            continue
        _require(metric, mpath, {"name": str, "type": str, "series": list}, problems)
        if metric.get("type") not in ("counter", "gauge", "histogram"):
            problems.append(f"{mpath}.type: unknown type {metric.get('type')!r}")
        for sindex, series in enumerate(metric.get("series", [])):
            spath = f"{mpath}.series[{sindex}]"
            if not isinstance(series, dict):
                problems.append(f"{spath}: not an object")
                continue
            if "labels" not in series or not isinstance(series["labels"], dict):
                problems.append(f"{spath}.labels: missing or not an object")
            if metric.get("type") == "histogram":
                _require(
                    series, spath,
                    {"count": int, "sum": (int, float), "buckets": list},
                    problems,
                )
            elif "value" not in series:
                problems.append(f"{spath}: missing required field 'value'")
    return problems


def validate_report(document: Any) -> List[str]:
    """Validate a consolidated ``repro profile`` report (profile/v1)."""
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["report: not an object"]
    _require(
        document,
        "report",
        {
            "schema": str,
            "source": str,
            "places": list,
            "derivation": dict,
            "runs": list,
            "medium": dict,
            "trace": dict,
            "metrics": dict,
        },
        problems,
    )
    if document.get("schema") != PROFILE_SCHEMA:
        problems.append(f"report.schema: expected {PROFILE_SCHEMA!r}")
    derivation = document.get("derivation", {})
    if isinstance(derivation, dict):
        _require(
            derivation,
            "report.derivation",
            {"places": int, "sync_fragments": int, "violations": int},
            problems,
        )
    verification = document.get("verification")
    if verification is not None and isinstance(verification, dict):
        _require(
            verification,
            "report.verification",
            {"method": str, "equivalent": bool},
            problems,
        )
    for index, run in enumerate(document.get("runs", [])):
        rpath = f"report.runs[{index}]"
        if not isinstance(run, dict):
            problems.append(f"{rpath}: not an object")
            continue
        _require(
            run,
            rpath,
            {
                "seed": int,
                "steps": int,
                "messages_sent": int,
                "status": str,
                "queue_high_water": dict,
            },
            problems,
        )
    medium = document.get("medium", {})
    if isinstance(medium, dict):
        _require(
            medium, "report.medium", {"queue_high_water": dict}, problems
        )
    problems.extend(validate_trace(document.get("trace", {}), "report.trace"))
    problems.extend(validate_metrics(document.get("metrics", {}), "report.metrics"))
    return problems


def validate_bench(document: Any) -> List[str]:
    """Validate a ``--bench-json`` dump (bench/v1)."""
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["bench: not an object"]
    _require(
        document, "bench", {"schema": str, "benchmarks": list, "metrics": dict},
        problems,
    )
    if document.get("schema") != BENCH_SCHEMA:
        problems.append(f"bench.schema: expected {BENCH_SCHEMA!r}")
    for index, entry in enumerate(document.get("benchmarks", [])):
        bpath = f"bench.benchmarks[{index}]"
        if not isinstance(entry, dict):
            problems.append(f"{bpath}: not an object")
            continue
        _require(
            entry, bpath,
            {"nodeid": str, "wall_time_s": (int, float), "outcome": str},
            problems,
        )
    problems.extend(validate_metrics(document.get("metrics", {}), "bench.metrics"))
    return problems


def validate_batch(document: Any) -> List[str]:
    """Validate a ``repro batch`` corpus summary (batch/v1)."""
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["batch: not an object"]
    _require(
        document,
        "batch",
        {
            "schema": str,
            "workers": int,
            "degraded": bool,
            "specs": list,
            "totals": dict,
            "metrics": dict,
        },
        problems,
    )
    if document.get("schema") != BATCH_SCHEMA:
        problems.append(f"batch.schema: expected {BATCH_SCHEMA!r}")
    for index, row in enumerate(document.get("specs", [])):
        rpath = f"batch.specs[{index}]"
        if not isinstance(row, dict):
            problems.append(f"{rpath}: not an object")
            continue
        _require(
            row,
            rpath,
            {
                "name": str,
                "status": str,
                "cache": str,
                "places": list,
                "tasks": int,
                "duration_s": (int, float),
            },
            problems,
        )
        if row.get("status") not in ("ok", "failed"):
            problems.append(f"{rpath}.status: unknown {row.get('status')!r}")
        if row.get("cache") not in ("hit", "miss", "off"):
            problems.append(f"{rpath}.cache: unknown {row.get('cache')!r}")
        if row.get("status") == "failed":
            error = row.get("error")
            if not isinstance(error, dict) or "type" not in error:
                problems.append(f"{rpath}.error: failed row needs an error")
    totals = document.get("totals", {})
    if isinstance(totals, dict):
        _require(
            totals,
            "batch.totals",
            {
                "specs": int,
                "ok": int,
                "failed": int,
                "cache_hits": int,
                "cache_misses": int,
                "derivations": int,
                "tasks": int,
                "duration_s": (int, float),
            },
            problems,
        )
    cache = document.get("cache")
    if cache is not None:
        if not isinstance(cache, dict):
            problems.append("batch.cache: not an object or null")
        else:
            _require(
                cache,
                "batch.cache",
                {"dir": str, "hits": int, "misses": int,
                 "evictions": int, "entries": int},
                problems,
            )
    problems.extend(validate_metrics(document.get("metrics", {}), "batch.metrics"))
    return problems


def validate_serve_request(document: Any) -> List[str]:
    """Validate one ``POST /v1/<op>`` body (serve.request/v1).

    The operation itself is carried by the URL, not the body; the body
    is the spec text plus its options, so one shape serves all three
    endpoints.
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["request: not an object"]
    _require(document, "request", {"schema": str, "spec": str}, problems)
    if document.get("schema") != SERVE_REQUEST_SCHEMA:
        problems.append(f"request.schema: expected {SERVE_REQUEST_SCHEMA!r}")
    options = document.get("options")
    if options is not None and not isinstance(options, dict):
        problems.append("request.options: not an object or null")
    unknown = sorted(set(document) - {"schema", "spec", "options"})
    if unknown:
        problems.append(f"request: unknown field(s) {unknown}")
    return problems


def validate_serve_response(document: Any) -> List[str]:
    """Validate one derivation-server response envelope (serve.response/v1)."""
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["response: not an object"]
    _require(
        document,
        "response",
        {
            "schema": str,
            "op": str,
            "ok": bool,
            "status": int,
            "cache": str,
            "duration_s": (int, float),
            "request_id": str,
        },
        problems,
    )
    if document.get("schema") != SERVE_RESPONSE_SCHEMA:
        problems.append(f"response.schema: expected {SERVE_RESPONSE_SCHEMA!r}")
    if document.get("cache") not in ("hit", "miss", "off"):
        problems.append(f"response.cache: unknown {document.get('cache')!r}")
    if document.get("ok"):
        if not isinstance(document.get("result"), dict):
            problems.append("response.result: ok response needs a result object")
    else:
        error = document.get("error")
        if not isinstance(error, dict) or "type" not in error:
            problems.append("response.error: failed response needs an error")
    return problems


def validate_loadgen(document: Any) -> List[str]:
    """Validate a ``repro loadgen`` report (loadgen/v2)."""
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["loadgen: not an object"]
    _require(
        document,
        "loadgen",
        {
            "schema": str,
            "op": str,
            "target": str,
            "connections": int,
            "requests": int,
            "completed": int,
            "ok": int,
            "shed": int,
            "failed": int,
            "recovered": int,
            "exhausted": int,
            "retries": int,
            "statuses": dict,
            "cache": dict,
            "duration_s": (int, float),
            "throughput_rps": (int, float),
            "latency_ms": dict,
        },
        problems,
    )
    if document.get("schema") != LOADGEN_SCHEMA:
        problems.append(f"loadgen.schema: expected {LOADGEN_SCHEMA!r}")
    if document.get("op") not in SERVE_OPS:
        problems.append(f"loadgen.op: unknown {document.get('op')!r}")
    latency = document.get("latency_ms", {})
    if isinstance(latency, dict):
        _require(
            latency,
            "loadgen.latency_ms",
            {
                "mean": (int, float),
                "p50": (int, float),
                "p95": (int, float),
                "p99": (int, float),
                "max": (int, float),
            },
            problems,
        )
    cache = document.get("cache", {})
    if isinstance(cache, dict):
        _require(
            cache,
            "loadgen.cache",
            {"hit": int, "miss": int, "off": int},
            problems,
        )
    return problems


def validate_chaos(document: Any) -> List[str]:
    """Validate a ``repro chaos`` run report (chaos/v1)."""
    from repro.chaos.faults import CHAOS_SCHEMA

    problems: List[str] = []
    if not isinstance(document, dict):
        return ["chaos: not an object"]
    _require(
        document,
        "chaos",
        {
            "schema": str,
            "plan": dict,
            "injections": dict,
            "loadgen": dict,
            "health": dict,
            "server": dict,
            "verdict": dict,
        },
        problems,
    )
    if document.get("schema") != CHAOS_SCHEMA:
        problems.append(f"chaos.schema: expected {CHAOS_SCHEMA!r}")
    plan = document.get("plan", {})
    if isinstance(plan, dict):
        _require(
            plan, "chaos.plan",
            {"name": str, "seed": int, "faults": list}, problems,
        )
    injections = document.get("injections", {})
    if isinstance(injections, dict):
        _require(
            injections,
            "chaos.injections",
            {"total": int, "by_point": dict, "by_kind": dict,
             "hits": dict, "events": list},
            problems,
        )
    problems.extend(
        f"chaos.{problem}"
        for problem in validate_loadgen(document.get("loadgen", {}))
    )
    health = document.get("health", {})
    if isinstance(health, dict):
        _require(
            health, "chaos.health",
            {"probes": int, "failures": int}, problems,
        )
    server = document.get("server", {})
    if isinstance(server, dict):
        _require(server, "chaos.server", {"respawns": int}, problems)
        if "metrics" in server:
            problems.extend(
                validate_metrics(server["metrics"], "chaos.server.metrics")
            )
    verdict = document.get("verdict", {})
    if isinstance(verdict, dict):
        _require(
            verdict,
            "chaos.verdict",
            {"lost_requests": int, "server_alive": bool, "ok": bool},
            problems,
        )
    return problems
