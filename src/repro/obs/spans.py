"""Nested wall-clock spans over the derivation/verification/runtime paths.

A *span* is one timed region of work; spans nest, forming the trace tree
of an operation (``derive`` > ``derive.prepare`` > ``prepare.flatten``
...).  Two tracer implementations share one interface:

:class:`Tracer`
    records spans with ``time.perf_counter`` timestamps and free-form
    attributes, and exports them as a text tree (:meth:`Tracer.render`)
    or a stable JSON document (:meth:`Tracer.to_dict`, schema
    ``repro.obs.trace/v1``);

:class:`NullTracer`
    the process-wide default.  Its :meth:`~NullTracer.span` hands back a
    shared singleton context manager that does **nothing** — no clock
    read, no string formatting, no allocation — so instrumented code
    paths cost one method call when observability is off (the overhead
    guard in ``benchmarks/bench_analysis.py`` and
    ``tests/obs/test_noop.py`` keep this honest).

Instrumentation sites therefore always go through the *active* tracer::

    from repro.obs import get_tracer

    with get_tracer().span("lts.build") as span:
        ...
        span.set(states=lts.num_states)

and enabling observability is a scoped swap::

    from repro.obs import Tracer, use_tracer

    tracer = Tracer()
    with use_tracer(tracer):
        derive_protocol(text)
    print(tracer.render())
"""

from __future__ import annotations

import functools
import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter as _perf_counter
from typing import Any, Dict, Iterator, List, Optional

#: Version tag of the JSON export; bump only on breaking shape changes.
TRACE_SCHEMA = "repro.obs.trace/v1"


@dataclass
class Span:
    """One timed region: name, perf_counter interval, attributes, children."""

    name: str
    start: float
    end: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Seconds, measured to the still-running moment if unfinished."""
        return (self.end if self.end is not None else _perf_counter()) - self.start

    def set(self, **attrs: Any) -> None:
        """Attach result attributes (state counts, verdicts, sizes)."""
        self.attrs.update(attrs)

    def to_dict(self, origin: float) -> Dict[str, Any]:
        return {
            "name": self.name,
            "start_s": round(self.start - origin, 9),
            "duration_s": round(self.duration, 9),
            "attrs": _jsonable(self.attrs),
            "children": [child.to_dict(origin) for child in self.children],
        }

    # Context-manager protocol: entered/exited by the owning tracer.
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


class _NullSpan:
    """The do-nothing span; one shared instance serves every call site."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass

    def set(self, **attrs: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracing: every span is the shared no-op singleton."""

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def to_dict(self) -> Dict[str, Any]:
        return {"schema": TRACE_SCHEMA, "enabled": False, "spans": []}

    def render(self) -> str:
        return "(tracing disabled)"


NULL_TRACER = NullTracer()


class Tracer:
    """Recording tracer: a stack of open spans over a forest of roots."""

    enabled = True

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self._origin = _perf_counter()

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> "_OpenSpan":
        return _OpenSpan(self, name, attrs)

    def _push(self, name: str, attrs: Dict[str, Any]) -> Span:
        span = Span(name=name, start=_perf_counter(), attrs=dict(attrs))
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def _pop(self, span: Span) -> None:
        span.end = _perf_counter()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # pragma: no cover - misnested exit
            while self._stack and self._stack[-1] is not span:
                self._stack.pop()
            self._stack.pop()

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Stable JSON document (schema ``repro.obs.trace/v1``)."""
        return {
            "schema": TRACE_SCHEMA,
            "enabled": True,
            "spans": [root.to_dict(self._origin) for root in self.roots],
        }

    def render_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """Human-oriented text tree with durations and attributes."""
        lines: List[str] = []
        for root in self.roots:
            _render_span(root, "", lines)
        return "\n".join(lines) if lines else "(no spans recorded)"

    def total_seconds(self) -> float:
        return sum(root.duration for root in self.roots)


class _OpenSpan:
    """Context manager binding one ``with tracer.span(...)`` region."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: Tracer, name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._tracer._push(self._name, self._attrs)
        return self._span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        assert self._span is not None
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self._span)


def _render_span(span: Span, prefix: str, lines: List[str]) -> None:
    attrs = ""
    if span.attrs:
        rendered = ", ".join(
            f"{key}={span.attrs[key]}" for key in sorted(span.attrs)
        )
        attrs = f"  [{rendered}]"
    lines.append(f"{prefix}{span.name}  {span.duration * 1000:.3f} ms{attrs}")
    for child in span.children:
        _render_span(child, prefix + "  ", lines)


def _jsonable(attrs: Dict[str, Any]) -> Dict[str, Any]:
    """Coerce attribute values into JSON-safe primitives."""
    out: Dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        elif isinstance(value, (list, tuple, set, frozenset)):
            out[key] = sorted(str(item) for item in value)
        else:
            out[key] = str(value)
    return out


# ----------------------------------------------------------------------
# The process-wide active tracer.
# ----------------------------------------------------------------------
_active_tracer: "Tracer | NullTracer" = NULL_TRACER


def get_tracer() -> "Tracer | NullTracer":
    """The active tracer (the no-op :data:`NULL_TRACER` by default)."""
    return _active_tracer


def set_tracer(tracer: "Tracer | NullTracer") -> "Tracer | NullTracer":
    """Install ``tracer`` process-wide; returns the previous one."""
    global _active_tracer
    previous = _active_tracer
    _active_tracer = tracer
    return previous


@contextmanager
def use_tracer(tracer: "Tracer | NullTracer") -> Iterator["Tracer | NullTracer"]:
    """Scoped :func:`set_tracer`: restores the previous tracer on exit."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def traced(name: Optional[str] = None):
    """Decorator form: run the function body inside one span.

    The span name defaults to the function's qualified name; the active
    tracer is looked up per call, so decorated functions stay no-op-cheap
    while observability is disabled.
    """

    def decorate(function):
        span_name = name or function.__qualname__

        @functools.wraps(function)
        def wrapper(*args: Any, **kwargs: Any):
            with _active_tracer.span(span_name):
                return function(*args, **kwargs)

        return wrapper

    return decorate
