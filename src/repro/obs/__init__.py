"""repro.obs — structured tracing, metrics and profiling.

Three pillars, all standard-library only:

* **spans** (:mod:`repro.obs.spans`) — nested wall-clock spans with a
  context-manager/decorator API, text-tree and JSON exporters, and a
  process-wide no-op default so instrumentation is free when disabled;
* **metrics** (:mod:`repro.obs.metrics`) — counters, gauges and
  fixed-bucket histograms with labeled series and a JSON snapshot;
* **profiling** (:mod:`repro.obs.profile`) — the consolidated
  derive + verify + execute report behind ``repro profile``.

Typical use::

    from repro import derive_protocol
    from repro.obs import observe

    with observe() as obs:
        derive_protocol("SPEC a1; exit >> b2; exit ENDSPEC")
    print(obs.tracer.render())     # the span tree
    print(obs.metrics.render())    # the metrics snapshot

The JSON document shapes are validated by :mod:`repro.obs.schema`; see
``docs/observability.md`` for the span/metric catalogue.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRICS_SCHEMA,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.profile import (
    profile_spec,
    render_report,
    render_report_json,
    spec_display_name,
)
from repro.obs.schema import (
    BENCH_SCHEMA,
    LOADGEN_SCHEMA,
    PROFILE_SCHEMA,
    SERVE_OPS,
    SERVE_REQUEST_SCHEMA,
    SERVE_RESPONSE_SCHEMA,
    validate_bench,
    validate_loadgen,
    validate_metrics,
    validate_report,
    validate_serve_request,
    validate_serve_response,
    validate_trace,
)
from repro.obs.spans import (
    NULL_TRACER,
    TRACE_SCHEMA,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    traced,
    use_tracer,
)


@dataclass
class Observation:
    """A live tracer + registry pair installed by :func:`observe`."""

    tracer: Tracer
    metrics: MetricsRegistry


@contextmanager
def observe() -> Iterator[Observation]:
    """Enable tracing and metrics for the dynamic extent of the block."""
    observation = Observation(Tracer(), MetricsRegistry())
    with use_tracer(observation.tracer), use_registry(observation.metrics):
        yield observation


__all__ = [
    "Observation",
    "observe",
    # spans
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TRACE_SCHEMA",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "traced",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "METRICS_SCHEMA",
    "DEFAULT_BUCKETS",
    "get_registry",
    "set_registry",
    "use_registry",
    # profiling + schemas
    "profile_spec",
    "render_report",
    "render_report_json",
    "spec_display_name",
    "PROFILE_SCHEMA",
    "BENCH_SCHEMA",
    "LOADGEN_SCHEMA",
    "SERVE_OPS",
    "SERVE_REQUEST_SCHEMA",
    "SERVE_RESPONSE_SCHEMA",
    "validate_report",
    "validate_trace",
    "validate_metrics",
    "validate_bench",
    "validate_loadgen",
    "validate_serve_request",
    "validate_serve_response",
]
