"""Counters, gauges and fixed-bucket histograms with labeled series.

A :class:`MetricsRegistry` owns named instruments; each instrument keeps
one series per label combination (``medium.queue_depth{channel=1->2}``).
Everything is standard-library only and synchronous — the hot paths
record into plain dict slots, and expensive summarization happens only
in :meth:`MetricsRegistry.snapshot`.

Like the tracer (:mod:`repro.obs.spans`), the process-wide default is a
no-op: :data:`NULL_REGISTRY` hands out shared instruments whose record
methods do nothing, so instrumented code costs a method call and nothing
else while observability is disabled.  Hot loops (LTS expansion, the
executor's step loop) additionally follow the convention of tallying in
local variables and publishing **once** at the end of the operation, so
even enabled-mode overhead stays out of the inner loop.

The snapshot document (schema ``repro.obs.metrics/v1``)::

    {
      "schema": "repro.obs.metrics/v1",
      "metrics": [
        {"name": "lts.states_expanded", "type": "counter",
         "series": [{"labels": {}, "value": 212}]},
        {"name": "medium.queue_depth", "type": "gauge",
         "series": [{"labels": {"channel": "1->2"}, "value": 2}, ...]},
        {"name": "medium.delay_steps", "type": "histogram",
         "series": [{"labels": {}, "count": 9, "sum": 31,
                     "buckets": [[1, 2], [2, 4], ...], "overflow": 0}]}
      ]
    }
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

METRICS_SCHEMA = "repro.obs.metrics/v1"

LabelItems = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds (values <= bound land in the
#: bucket); chosen to resolve both step delays and state-space sizes.
DEFAULT_BUCKETS: Tuple[float, ...] = (1, 2, 5, 10, 25, 50, 100, 250, 1000)


def _label_key(labels: Dict[str, Any]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing tally, one slot per label combination."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: Dict[LabelItems, float] = {}

    def inc(self, amount: float = 1, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        return self._series.get(_label_key(labels), 0)

    def series(self) -> List[Dict[str, Any]]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._series.items())
        ]


class Gauge:
    """Point-in-time value; ``set_max`` keeps high-water marks."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: Dict[LabelItems, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        self._series[_label_key(labels)] = value

    def set_max(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        current = self._series.get(key)
        if current is None or value > current:
            self._series[key] = value

    def value(self, **labels: Any) -> Optional[float]:
        return self._series.get(_label_key(labels))

    def series(self) -> List[Dict[str, Any]]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._series.items())
        ]


class Histogram:
    """Fixed-bucket distribution (upper-bound inclusive, plus overflow)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        if list(buckets) != sorted(buckets) or not buckets:
            raise ValueError("histogram buckets must be sorted and nonempty")
        self.name = name
        self.help = help
        self.buckets = tuple(buckets)
        self._series: Dict[LabelItems, List[int]] = {}
        self._sums: Dict[LabelItems, float] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        counts = self._series.get(key)
        if counts is None:
            counts = [0] * (len(self.buckets) + 1)  # last slot = overflow
            self._series[key] = counts
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                counts[index] += 1
                break
        else:
            counts[-1] += 1
        self._sums[key] = self._sums.get(key, 0) + value

    def count(self, **labels: Any) -> int:
        counts = self._series.get(_label_key(labels))
        return sum(counts) if counts else 0

    def percentile(self, q: float, **labels: Any) -> Optional[float]:
        """Upper-bound estimate of the ``q``-th percentile (0 < q <= 100).

        Resolution is the bucket grid: the answer is the upper bound of
        the bucket the rank lands in, ``inf`` when it lands in the
        overflow slot, ``None`` when the series is empty.  Good enough
        for digests ("p95 under 50ms"); exact quantiles need the raw
        samples (see :mod:`repro.serve.loadgen`).
        """
        if not 0 < q <= 100:
            raise ValueError("percentile q must be in (0, 100]")
        counts = self._series.get(_label_key(labels))
        total = sum(counts) if counts else 0
        if not total:
            return None
        rank = max(1, -(-q * total // 100))  # ceil without math import
        cumulative = 0
        for bound, count in zip(self.buckets, counts):
            cumulative += count
            if cumulative >= rank:
                return float(bound)
        return float("inf")

    def series(self) -> List[Dict[str, Any]]:
        out = []
        for key, counts in sorted(self._series.items()):
            out.append(
                {
                    "labels": dict(key),
                    "count": sum(counts),
                    "sum": self._sums.get(key, 0),
                    "buckets": [
                        [bound, count]
                        for bound, count in zip(self.buckets, counts)
                    ],
                    "overflow": counts[-1],
                }
            )
        return out


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    kind = "null"
    name = "null"

    def inc(self, amount: float = 1, **labels: Any) -> None:
        pass

    def set(self, value: float, **labels: Any) -> None:
        pass

    def set_max(self, value: float, **labels: Any) -> None:
        pass

    def observe(self, value: float, **labels: Any) -> None:
        pass

    def value(self, **labels: Any) -> float:
        return 0

    def count(self, **labels: Any) -> int:
        return 0

    def percentile(self, q: float, **labels: Any) -> None:
        return None

    def series(self) -> List[Dict[str, Any]]:
        return []


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Named instruments, created lazily and snapshotted as one document."""

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}

    def _get(self, name: str, factory, **kwargs: Any):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory(name, **kwargs)
            self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, help=help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get(name, Histogram, help=help, buckets=buckets)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Stable JSON document (schema ``repro.obs.metrics/v1``)."""
        return {
            "schema": METRICS_SCHEMA,
            "metrics": [
                {
                    "name": name,
                    "type": instrument.kind,
                    "help": instrument.help,
                    "series": instrument.series(),
                }
                for name, instrument in sorted(self._instruments.items())
            ],
        }

    def render_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """Flat ``name{labels} value`` listing, Prometheus-exposition-ish."""
        lines: List[str] = []
        for entry in self.snapshot()["metrics"]:
            for series in entry["series"]:
                labels = series["labels"]
                suffix = (
                    "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
                    if labels
                    else ""
                )
                if entry["type"] == "histogram":
                    lines.append(
                        f"{entry['name']}{suffix} count={series['count']} "
                        f"sum={series['sum']}"
                    )
                else:
                    lines.append(f"{entry['name']}{suffix} {series['value']}")
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def reset(self) -> None:
        self._instruments.clear()


class NullRegistry:
    """Disabled metrics: every instrument is the shared no-op."""

    enabled = False

    def counter(self, name: str, help: str = "") -> _NullInstrument:
        return NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "") -> _NullInstrument:
        return NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "", buckets=DEFAULT_BUCKETS):
        return NULL_INSTRUMENT

    def snapshot(self) -> Dict[str, Any]:
        return {"schema": METRICS_SCHEMA, "metrics": []}

    def render(self) -> str:
        return "(metrics disabled)"

    def reset(self) -> None:
        pass


NULL_REGISTRY = NullRegistry()

_active_registry: "MetricsRegistry | NullRegistry" = NULL_REGISTRY


def get_registry() -> "MetricsRegistry | NullRegistry":
    """The active registry (the no-op :data:`NULL_REGISTRY` by default)."""
    return _active_registry


def set_registry(
    registry: "MetricsRegistry | NullRegistry",
) -> "MetricsRegistry | NullRegistry":
    """Install ``registry`` process-wide; returns the previous one."""
    global _active_registry
    previous = _active_registry
    _active_registry = registry
    return previous


@contextmanager
def use_registry(
    registry: "MetricsRegistry | NullRegistry",
) -> Iterator["MetricsRegistry | NullRegistry"]:
    """Scoped :func:`set_registry`: restores the previous one on exit."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
