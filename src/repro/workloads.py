"""Parametric service-specification generators.

The paper's evaluation artifacts (the worked examples, the message
complexity analysis of Section 4.3, the PG case studies of Section 6)
are all *service specifications*; this module builds families of them
with tunable size and place count so benchmarks can sweep parameters.
All generators return conforming specifications (R1-R3 hold by
construction) unless stated otherwise.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.lotos.parser import parse
from repro.lotos.syntax import Specification
from repro.lotos.unparse import unparse

# ----------------------------------------------------------------------
# The paper's own examples, as canonical texts.
# ----------------------------------------------------------------------

EXAMPLE2_COUNTING = """SPEC A WHERE
  PROC A = (a1; A >> b2; exit) [] (a1; b2; exit)
END ENDSPEC"""

EXAMPLE3_FILE_TRANSFER = """SPEC S [> interrupt3; exit WHERE
  PROC S = (read1; push2; S >> pop2; write3; exit)
        [] (eof1; make3; exit) END
ENDSPEC"""

EXAMPLE4_SEQUENCE = "SPEC a1; exit >> b2; exit ENDSPEC"

EXAMPLE7_TWO_INSTANCES = """SPEC B ||| B WHERE
  PROC B = (a1; (b2; exit ||| c3; exit)) >> g4; exit
END ENDSPEC"""

TRANSPORT_SESSION = """SPEC Session [> abort1; exit WHERE
  PROC Session =
      ( conreq1; conind2;
          ( (accept2; confirm1; Transfer >> disreq2; disind1; exit)
            [] (reject2; refused1; exit) ) )
      [] ( quit1; exit )
  END
  PROC Transfer =
      ( datareq1; dataind2; Transfer >> ack2; ackind1; exit )
      [] ( datareq1; dataind2; ack2; ackind1; exit )
  END
ENDSPEC"""


# ----------------------------------------------------------------------
# Parametric families.
# ----------------------------------------------------------------------
def pipeline(places: int, rounds: int = 1) -> Specification:
    """``a1; a2; ...; an`` repeated ``rounds`` times: pure sequencing.

    Each hop crosses one place boundary, so the derived protocol needs
    exactly ``places * rounds - 1`` messages (Section 4.3's one message
    per ``;``).
    """
    if places < 1 or rounds < 1:
        raise ValueError("places and rounds must be positive")
    events: List[str] = []
    for round_index in range(rounds):
        for place in range(1, places + 1):
            events.append(f"t{round_index}x{place}")
    chain = "; ".join(events)
    return parse(f"SPEC {chain}; exit ENDSPEC")


def fan_out_join(places: int) -> Specification:
    """``start >> (branch_2 ||| ... ||| branch_n) >> join``.

    Demonstrates the parallel multiplication factor of Section 4.3: the
    start and join synchronizations each fan out to ``places - 1``
    branches.
    """
    if places < 3:
        raise ValueError("need at least 3 places (start, one branch, join)")
    branches = " ||| ".join(f"w{place}; exit" for place in range(2, places))
    return parse(
        f"SPEC start1; exit >> ({branches}) >> join{places}; exit ENDSPEC"
    )


def choice_ladder(alternatives: int, places: int = 3) -> Specification:
    """A ladder of choices, all starting at place 1, ending at ``places``.

    Each alternative walks a different route through the middle places,
    so the Alternative synchronization of Section 3.2 fires for the
    places skipped by the chosen branch.
    """
    if alternatives < 2:
        raise ValueError("need at least two alternatives")
    branch_texts = []
    for index in range(alternatives):
        middle = 2 + (index % max(places - 2, 1))
        branch_texts.append(f"(c{index}x1; m{index}x{middle}; z{index}x{places}; exit)")
    body = " [] ".join(branch_texts)
    return parse(f"SPEC {body} ENDSPEC")


def recursion_tower(places: int = 2) -> Specification:
    """The a^n b^n counter generalized to a chain of unwinding places."""
    if places < 2:
        raise ValueError("need at least 2 places")
    tail = "; ".join(f"u{place}" for place in range(2, places + 1))
    return parse(
        f"SPEC A WHERE PROC A = (a1; A >> {tail}; exit)"
        f" [] (a1; {tail}; exit) END ENDSPEC"
    )


def interrupt_stack(places: int) -> Specification:
    """A pipeline guarded by an interrupt at its last place (E6 family)."""
    if places < 2:
        raise ValueError("need at least 2 places")
    chain = "; ".join(f"q{place}" for place in range(1, places + 1))
    return parse(
        f"SPEC ({chain}; exit) [> (k{places}; exit) ENDSPEC"
    )


def process_chain(length: int, places: int = 3) -> Specification:
    """``P1 >> P2 >> ... >> Pk`` with each ``Pi`` a small cross-place hop.

    Stresses process invocation synchronization (Section 3.4): each
    invocation broadcasts to every non-starting place.
    """
    if length < 1:
        raise ValueError("need at least one process")
    names = [f"P{index}" for index in range(length)]
    body = " >> ".join(names)
    definitions = []
    for index, name in enumerate(names):
        first = 1 + (index % places)
        second = 1 + ((index + 1) % places)
        definitions.append(
            f"PROC {name} = h{index}x{first}; g{index}x{second}; exit END"
        )
    return parse(f"SPEC {body} WHERE {' '.join(definitions)} ENDSPEC")


# ----------------------------------------------------------------------
# Corpora: named (name, text) families for repro.batch and benchmarks.
#
# Every member is textually distinct (the sweep parameter varies per
# index), so each occupies its own slot in the content-addressed cache
# — a corpus of N specs really measures N derivations, not one.
# ----------------------------------------------------------------------
def pipeline_corpus(
    count: int = 8, places: int = 6, rounds: int = 2
) -> List[Tuple[str, str]]:
    """``count`` pipelines of growing length: pure sequencing load."""
    if count < 1:
        raise ValueError("count must be positive")
    return [
        (
            f"pipeline_{index:02d}",
            unparse(pipeline(places, rounds + index)),
        )
        for index in range(count)
    ]


def fan_out_join_corpus(
    count: int = 8, places: int = 4
) -> List[Tuple[str, str]]:
    """``count`` fan-out/join services of growing width."""
    if count < 1:
        raise ValueError("count must be positive")
    return [
        (
            f"fan_out_join_{index:02d}",
            unparse(fan_out_join(places + index)),
        )
        for index in range(count)
    ]


def synthetic_corpus(count: int = 16) -> List[Tuple[str, str]]:
    """A mixed ``count``-spec corpus cycling through every family.

    The members are sized so that a single derivation costs a few
    dozen milliseconds — heavy enough that a worker pool's process
    overhead amortizes, small enough that a 16-spec corpus stays a
    sub-minute benchmark.
    """
    if count < 1:
        raise ValueError("count must be positive")
    families = [
        lambda k: pipeline(8 + (k % 5), 3),
        lambda k: fan_out_join(8 + (k % 7)),
        lambda k: process_chain(12 + (k % 9)),
        lambda k: choice_ladder(6 + (k % 5), 4),
    ]
    members: List[Tuple[str, str]] = []
    for index in range(count):
        spec = families[index % len(families)](index)
        members.append((f"synthetic_{index:02d}", unparse(spec)))
    return members
