"""repro: protocol synthesis from LOTOS service specifications.

A full reimplementation of the derivation algorithm of Kant, Higashino
and v. Bochmann, *Deriving Protocol Specifications from Service
Specifications Written in LOTOS* (the extended version of Bochmann &
Gotzhein, SIGCOMM 1986), together with every substrate the paper relies
on: the specification language and its operational semantics, the
attribute grammar, the reliable FIFO medium, a distributed execution
runtime, behavioural equivalences and the Section 5 correctness check.

Quick start::

    from repro import derive_protocol, verify_derivation

    result = derive_protocol('''
        SPEC a1; exit >> b2; exit ENDSPEC
    ''')
    print(result.describe())           # the two protocol entities
    print(verify_derivation(result))   # EQUIVALENT (weak-bisimulation)
"""

from __future__ import annotations

import sys

# Behaviour expressions are recursively-defined immutable trees; the
# states of a long execution (e.g. the a^n b^n service of the paper's
# Example 2) nest ``>>`` contexts linearly in n, and structural
# equality/hash walk them recursively.  Give CPython the headroom that
# honest exploration of such state spaces needs.
if sys.getrecursionlimit() < 50_000:
    sys.setrecursionlimit(50_000)

from repro.core.generator import (  # noqa: E402
    DerivationResult,
    ProtocolGenerator,
    derive_protocol,
)
from repro.lotos.parser import parse, parse_behaviour  # noqa: E402
from repro.lotos.unparse import unparse, unparse_behaviour  # noqa: E402
from repro.runtime import build_system, check_run, random_run  # noqa: E402
from repro.verification import verify_derivation  # noqa: E402

__version__ = "1.0.0"

__all__ = [
    "DerivationResult",
    "ProtocolGenerator",
    "derive_protocol",
    "parse",
    "parse_behaviour",
    "unparse",
    "unparse_behaviour",
    "build_system",
    "check_run",
    "random_run",
    "verify_derivation",
    "__version__",
]
