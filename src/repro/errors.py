"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate the phase that failed (lexing, parsing,
attribute evaluation, restriction checking, derivation, execution or
verification).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class LexerError(ReproError):
    """Raised when the lexer meets a character it cannot tokenize."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(ReproError):
    """Raised when the token stream does not match the Table 1 grammar."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SemanticsError(ReproError):
    """Raised for ill-formed behaviours during transition computation."""


class UnboundProcessError(SemanticsError):
    """Raised when a process reference has no matching definition."""

    def __init__(self, name: str) -> None:
        super().__init__(f"process {name!r} is not defined in scope")
        self.name = name


class UnguardedRecursionError(SemanticsError):
    """Raised when unfolding recursion makes no progress (e.g. ``A = A``)."""


class AttributeEvaluationError(ReproError):
    """Raised when SP/EP/AP evaluation fails (paper section 4.1)."""


class RestrictionViolation(ReproError):
    """Raised when a service specification violates R1, R2 or R3.

    The paper (sections 3.2 and 3.3) restricts the class of service
    specifications accepted by the Protocol Generator.  ``rule`` names the
    violated restriction (``"R1"``, ``"R2"``, ``"R3"`` or a grammar-level
    restriction such as ``"APF"`` for disable operands not in action
    prefix form).
    """

    def __init__(self, rule: str, message: str) -> None:
        super().__init__(f"{rule}: {message}")
        self.rule = rule


class DerivationError(ReproError):
    """Raised when the T_p derivation meets an unsupported construct."""


class ExpansionError(ReproError):
    """Raised when an expression cannot be put in action prefix form."""


class ExecutionError(ReproError):
    """Raised by the distributed runtime (deadlock reporting is separate)."""


class VerificationError(ReproError):
    """Raised by the verification harness on malformed input."""


class StateSpaceLimitExceeded(ReproError):
    """Raised when bounded LTS construction hits its state budget.

    Callers that can tolerate truncation should pass ``on_limit="truncate"``
    to the LTS builder instead of catching this.
    """

    def __init__(self, limit: int) -> None:
        super().__init__(f"state space exceeded the budget of {limit} states")
        self.limit = limit
