"""repro.chaos — deterministic fault injection for the serve/batch stack.

Seeded, reproducible chaos: a :class:`FaultPlan` schedules faults
(worker kill/stall, handler latency, connection drops, cache
corruption, pool-spawn failure) at named injection points threaded
through :mod:`repro.serve` and :mod:`repro.batch`; a
:class:`ChaosController` makes the decisions and logs every
injection.  With no controller installed (the default) every
injection point is one global read and a ``None`` test — zero extra
work, byte-identical outputs.

The run orchestrator lives in :mod:`repro.chaos.runner` (imported
lazily by ``repro chaos`` — it drags the whole serve stack in); the
client-side resilience layer the faults exercise is
:mod:`repro.serve.resilience`.  See ``docs/robustness.md``.
"""

from __future__ import annotations

from repro.chaos.faults import (
    CHAOS_SCHEMA,
    POINTS,
    ChaosController,
    ChaosError,
    FaultPlan,
    FaultSpec,
    PoolSpawnInjected,
    WorkerKilled,
    get_chaos,
    set_chaos,
    use_chaos,
)
from repro.chaos.plans import BUILTIN_PLANS, get_plan, list_plans

__all__ = [
    "CHAOS_SCHEMA",
    "POINTS",
    "BUILTIN_PLANS",
    "ChaosController",
    "ChaosError",
    "FaultPlan",
    "FaultSpec",
    "PoolSpawnInjected",
    "WorkerKilled",
    "get_chaos",
    "set_chaos",
    "use_chaos",
    "get_plan",
    "list_plans",
]
