"""The built-in fault plans ``repro chaos`` ships.

Each plan targets one failure mode of the serve/batch stack (plus one
combined storm) and carries the server overrides that make it
meaningful.  Cadences are chosen so a default-size burst (dozens of
requests) sees several injections but the fault budget always runs
out — the acceptance bar is that a retrying load generator loses
**zero** requests under every plan here while ``/healthz`` stays
responsive throughout.

All built-ins use cadence scheduling (``every``/``after``), never
``probability``, so the fault schedule is a pure function of the hit
sequence — the same seed and a single-connection burst replay
byte-identically.
"""

from __future__ import annotations

from typing import Dict, List

from repro.chaos.faults import ChaosError, FaultPlan, FaultSpec


def _plan(name: str, *faults: FaultSpec, **overrides) -> FaultPlan:
    return FaultPlan(
        name=name, faults=tuple(faults),
        server_overrides=tuple(sorted(overrides.items())),
    )


#: Every named plan; ``repro chaos --list-plans`` prints this table.
BUILTIN_PLANS: Dict[str, FaultPlan] = {
    plan.name: plan
    for plan in (
        # Kill a worker mid-task: process pools actually die (and are
        # respawned); thread pools simulate the crash in-envelope.
        _plan(
            "worker-kill",
            FaultSpec("worker.task", "worker_kill",
                      every=7, after=2, max_injections=3),
        ),
        # Stall a worker past the request budget: the request 504s and
        # the stalled worker slot is abandoned.  The override shortens
        # the budget below the stall so the timeout actually fires.
        _plan(
            "worker-stall",
            FaultSpec("worker.task", "worker_stall",
                      every=9, after=1, max_injections=2, stall_s=1.2),
            request_timeout=0.4,
        ),
        # Slow the handler down without failing it: retries must NOT
        # fire (the request still succeeds), latency percentiles move.
        _plan(
            "latency",
            FaultSpec("server.handler", "latency",
                      every=3, max_injections=10, latency_ms=40.0),
        ),
        # Close the connection after a handful of response bytes: the
        # client sees a torn read and must reconnect-and-retry.
        _plan(
            "drop-conn",
            FaultSpec("server.response", "drop_connection",
                      every=5, after=1, max_injections=4, drop_bytes=12),
        ),
        # Corrupt cache entries before they are read: the store must
        # self-heal (corrupt entry -> miss -> re-derive) and the
        # request must still succeed.  Needs the cache on.
        _plan(
            "cache-corrupt",
            FaultSpec("cache.read", "corrupt_entry",
                      every=2, max_injections=5),
            cache=True,
        ),
        # Kill a worker AND fail the first respawn attempt: the pool
        # must survive a spawn failure and come back on the next
        # request instead of wedging the server.
        _plan(
            "spawn-flaky",
            FaultSpec("worker.task", "worker_kill",
                      every=6, after=1, max_injections=2),
            FaultSpec("pool.spawn", "spawn_fail",
                      every=1, after=1, max_injections=1),
        ),
        # Everything at once, lightly: the combined storm.
        _plan(
            "mayhem",
            FaultSpec("worker.task", "worker_kill",
                      every=11, after=3, max_injections=2),
            FaultSpec("server.handler", "latency",
                      every=6, max_injections=4, latency_ms=30.0),
            FaultSpec("server.response", "drop_connection",
                      every=9, after=2, max_injections=2, drop_bytes=16),
        ),
    )
}


def get_plan(name: str, seed: int = 0) -> FaultPlan:
    """The built-in plan ``name``, reseeded to ``seed``."""
    try:
        plan = BUILTIN_PLANS[name]
    except KeyError:
        raise ChaosError(
            f"unknown fault plan {name!r}; built-ins: {sorted(BUILTIN_PLANS)}"
        )
    return plan.with_seed(seed)


def list_plans() -> List[str]:
    """One describing line per built-in plan (``--list-plans``)."""
    lines = []
    for name in sorted(BUILTIN_PLANS):
        plan = BUILTIN_PLANS[name]
        kinds = ", ".join(
            f"{fault.kind}@{fault.point}" for fault in plan.faults
        )
        overrides = plan.overrides()
        suffix = f"  [overrides: {overrides}]" if overrides else ""
        lines.append(f"{name:<14} {kinds}{suffix}")
    return lines
