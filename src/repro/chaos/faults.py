"""Deterministic fault injection for the serve/batch process stack.

The paper's Section 6 treats error recovery at the *model* level (the
ARQ sublayer in :mod:`repro.medium.lossy`); this module is the same
idea one layer down, at the *process* level: a seeded, reproducible
fault schedule injected into the running server, worker pool and cache
so the resilience layer (:mod:`repro.serve.resilience`) can be proven
against real faults instead of hoped about.

Three pieces:

* :class:`FaultSpec` — one scheduled fault: a *kind* (worker kill,
  worker stall, handler latency, connection drop, cache-entry
  corruption, pool-spawn failure) bound to an injection *point*, fired
  on a deterministic cadence (``every``/``after``/``max_injections``)
  or a seeded coin (``probability``);
* :class:`FaultPlan` — a named, seeded set of faults plus the server
  overrides it wants (e.g. the stall plan shortens the request
  timeout so stalls actually expire);
* :class:`ChaosController` — the live decision maker.  Injection
  points call :meth:`ChaosController.decide` with their point name;
  the controller counts the hit, consults the plan, logs every
  injection it orders, and returns a *directive* dict (or ``None``).

**Disabled mode does zero work.**  The process-wide default is no
controller at all: every injection point is literally ::

    chaos = get_chaos()
    if chaos is not None:
        ...

one module-global read and a ``None`` test — no RNG draw, no dict
lookup, no clock read — and all outputs stay byte-identical.  The
test suite enforces this the same way :mod:`repro.obs` enforces zero
clock reads: it monkeypatches :meth:`ChaosController.decide` to raise
and runs the whole pipeline with chaos disabled.

Determinism contract: a controller's decisions are a pure function of
``(plan, sequence of hits per point)``.  Every fault draws from its
own :class:`random.Random` stream seeded from ``(plan.seed, fault
index, point, kind)``, and cadence-based faults do not draw at all —
so the same seed replays the same fault schedule exactly.
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

#: Schema tag of one ``repro chaos`` run report.
CHAOS_SCHEMA = "repro.obs.chaos/v1"

#: Every injection point threaded through the stack, and the fault
#: kinds it understands.  ``repro lint``'s CI self-check asserts each
#: point below actually appears in the source — a point with no call
#: site is dead configuration.
POINTS: Dict[str, Tuple[str, ...]] = {
    # consulted by WorkerPool.run / the batch scheduler per task
    "worker.task": ("worker_kill", "worker_stall"),
    # consulted by DerivationServer._run_op per admitted op request
    "server.handler": ("latency",),
    # consulted by DerivationServer._handle_connection per op response
    "server.response": ("drop_connection",),
    # consulted by EntityCache.get per existing entry
    "cache.read": ("corrupt_entry",),
    # consulted by WorkerPool._make per executor construction
    "pool.spawn": ("spawn_fail",),
}


class ChaosError(Exception):
    """A malformed fault plan or fault specification."""


class PoolSpawnInjected(RuntimeError):
    """An injected executor-construction failure (``pool.spawn``)."""


class WorkerKilled(Exception):
    """An injected worker kill on a thread worker (cannot ``_exit``)."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault at one injection point.

    Cadence: the fault fires on eligible hit ``after``, ``after +
    every``, ``after + 2*every`` ... until ``max_injections`` is
    spent.  When ``probability`` is set it replaces the cadence with
    a seeded coin flip per eligible hit (still deterministic per
    seed).  Kind-specific parameters ride along (``stall_s``,
    ``latency_ms``, ``drop_bytes``) and are carried into the directive
    the injection point receives.
    """

    point: str
    kind: str
    every: int = 1
    after: int = 0
    max_injections: Optional[int] = None
    probability: Optional[float] = None
    stall_s: float = 1.0
    latency_ms: float = 25.0
    drop_bytes: int = 20

    def __post_init__(self) -> None:
        if self.point not in POINTS:
            raise ChaosError(
                f"unknown injection point {self.point!r}; "
                f"known: {sorted(POINTS)}"
            )
        if self.kind not in POINTS[self.point]:
            raise ChaosError(
                f"fault kind {self.kind!r} does not belong to point "
                f"{self.point!r}; known there: {list(POINTS[self.point])}"
            )
        if self.every < 1:
            raise ChaosError("every must be >= 1")
        if self.after < 0:
            raise ChaosError("after must be >= 0")
        if self.max_injections is not None and self.max_injections < 1:
            raise ChaosError("max_injections must be positive (or None)")
        if self.probability is not None and not 0 < self.probability <= 1:
            raise ChaosError("probability must be in (0, 1]")

    def directive(self) -> Dict[str, Any]:
        """The dict an injection point receives when this fault fires."""
        out: Dict[str, Any] = {"kind": self.kind}
        if self.kind == "worker_stall":
            out["stall_s"] = self.stall_s
        elif self.kind == "latency":
            out["latency_ms"] = self.latency_ms
        elif self.kind == "drop_connection":
            out["drop_bytes"] = self.drop_bytes
        return out

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "point": self.point,
            "kind": self.kind,
            "every": self.every,
            "after": self.after,
            "max_injections": self.max_injections,
        }
        if self.probability is not None:
            out["probability"] = self.probability
        if self.kind == "worker_stall":
            out["stall_s"] = self.stall_s
        elif self.kind == "latency":
            out["latency_ms"] = self.latency_ms
        elif self.kind == "drop_connection":
            out["drop_bytes"] = self.drop_bytes
        return out


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded fault schedule plus its server overrides.

    ``server_overrides`` lets a plan carry the serve configuration it
    needs to be meaningful — the stall plan shortens
    ``request_timeout`` below its stall so requests actually expire,
    the cache-corruption plan turns the entity cache on.  The chaos
    runner applies them unless the operator overrides explicitly.
    """

    name: str
    seed: int = 0
    faults: Tuple[FaultSpec, ...] = ()
    server_overrides: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.faults:
            raise ChaosError(f"fault plan {self.name!r} schedules no faults")

    def with_seed(self, seed: int) -> "FaultPlan":
        return FaultPlan(self.name, seed, self.faults, self.server_overrides)

    def overrides(self) -> Dict[str, Any]:
        return dict(self.server_overrides)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "faults": [fault.to_dict() for fault in self.faults],
            "server_overrides": dict(self.server_overrides),
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "FaultPlan":
        """Build a plan from its JSON form (``repro chaos --plan-file``)."""
        try:
            faults = tuple(
                FaultSpec(**fault) for fault in document["faults"]
            )
            return cls(
                name=str(document["name"]),
                seed=int(document.get("seed", 0)),
                faults=faults,
                server_overrides=tuple(
                    dict(document.get("server_overrides") or {}).items()
                ),
            )
        except (KeyError, TypeError) as exc:
            raise ChaosError(f"malformed fault plan document: {exc}") from exc


class ChaosController:
    """The live, seeded decision maker of one chaos run.

    Thread-safe: worker-pool submissions and the asyncio event loop
    may consult it concurrently; hit counters and the injection log
    are guarded by one lock (held only for the decision, never during
    the fault itself).
    """

    def __init__(self, plan: FaultPlan, registry: Any = None) -> None:
        self.plan = plan
        self._registry = registry
        self._lock = threading.Lock()
        self._hits: Dict[str, int] = {}
        self._fired: List[int] = [0] * len(plan.faults)
        self._rngs = [
            random.Random(f"{plan.seed}:{index}:{fault.point}:{fault.kind}")
            for index, fault in enumerate(plan.faults)
        ]
        self.events: List[Dict[str, Any]] = []

    def bind_registry(self, registry: Any) -> None:
        """Publish ``chaos.*`` metrics into ``registry`` from now on.

        The derivation server binds its own registry here so injected
        faults show up on ``GET /metrics``.
        """
        if self._registry is None:
            self._registry = registry

    # ------------------------------------------------------------------
    def decide(self, point: str, **context: Any) -> Optional[Dict[str, Any]]:
        """Count one hit of ``point``; return a directive or ``None``.

        At most one fault fires per hit (plan order wins); the
        injection is appended to :attr:`events` and counted as
        ``chaos.injections{point,kind}``.
        """
        with self._lock:
            hit = self._hits.get(point, 0)
            self._hits[point] = hit + 1
            for index, fault in enumerate(self.plan.faults):
                if fault.point != point or hit < fault.after:
                    continue
                if (
                    fault.max_injections is not None
                    and self._fired[index] >= fault.max_injections
                ):
                    continue
                if fault.probability is not None:
                    fire = self._rngs[index].random() < fault.probability
                else:
                    fire = (hit - fault.after) % fault.every == 0
                if not fire:
                    continue
                self._fired[index] += 1
                event = {
                    "index": len(self.events),
                    "point": point,
                    "kind": fault.kind,
                    "hit": hit,
                }
                event.update(
                    (key, value)
                    for key, value in context.items()
                    if isinstance(value, (str, int, float, bool))
                    and key not in ("index", "point", "kind", "hit")
                )
                self.events.append(event)
                if self._registry is not None:
                    self._registry.counter(
                        "chaos.injections",
                        help="faults actually injected, by point and kind",
                    ).inc(point=point, kind=fault.kind)
                return fault.directive()
        return None

    # ------------------------------------------------------------------
    def hits(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._hits)

    def injections(self) -> Dict[str, Any]:
        """The injection section of a ``repro.obs.chaos/v1`` report."""
        with self._lock:
            by_point: Dict[str, int] = {}
            by_kind: Dict[str, int] = {}
            for event in self.events:
                by_point[event["point"]] = by_point.get(event["point"], 0) + 1
                by_kind[event["kind"]] = by_kind.get(event["kind"], 0) + 1
            return {
                "total": len(self.events),
                "by_point": by_point,
                "by_kind": by_kind,
                "hits": dict(self._hits),
                "events": [dict(event) for event in self.events],
            }


# ----------------------------------------------------------------------
# Process-wide activation (mirrors repro.obs's tracer/registry seams).
# ----------------------------------------------------------------------
_active: Optional[ChaosController] = None


def get_chaos() -> Optional[ChaosController]:
    """The active controller, or ``None`` (the default: chaos off)."""
    return _active


def set_chaos(
    controller: Optional[ChaosController],
) -> Optional[ChaosController]:
    """Install ``controller`` process-wide; returns the previous one."""
    global _active
    previous = _active
    _active = controller
    return previous


@contextmanager
def use_chaos(
    controller: Optional[ChaosController],
) -> Iterator[Optional[ChaosController]]:
    """Scoped :func:`set_chaos`: restores the previous one on exit."""
    previous = set_chaos(controller)
    try:
        yield controller
    finally:
        set_chaos(previous)
