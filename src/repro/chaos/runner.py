"""The orchestrator behind ``repro chaos``.

One chaos run is: install a :class:`~repro.chaos.faults.ChaosController`
for the chosen plan, boot an in-process derivation server under it,
fire a *retrying* load-generator burst at the op endpoints while a
background probe hammers ``/healthz``, then drain and write one
``repro.obs.chaos/v1`` report.  The verdict the CI ``chaos-smoke``
job (and the chaos test suite) asserts on:

* ``lost_requests`` — requests that never landed a 2xx despite the
  retry budget.  The whole point of the resilience layer is that this
  is **zero** under every built-in plan;
* ``server_alive`` — ``/healthz`` answered after the burst (and
  ``health.failures`` counts any probe that failed *during* it; the
  control plane is exempt from fault injection by design, so a
  failure here means the server itself went down).

This module imports the whole serve stack, so it is deliberately NOT
pulled in by ``repro.chaos``'s ``__init__`` — the injection points
inside serve/batch import ``repro.chaos`` and must not cycle back.

The run is as deterministic as the plan: built-in plans use cadence
scheduling only, so with ``connections=1`` the same seed replays the
same fault schedule and the same per-request outcome classification
byte-for-byte (the chaos suite pins this).
"""

from __future__ import annotations

import asyncio
import json
import pathlib
import tempfile
from typing import Any, Dict, Optional

from repro.chaos.faults import (
    CHAOS_SCHEMA,
    ChaosController,
    ChaosError,
    FaultPlan,
    use_chaos,
)
from repro.chaos.plans import get_plan
from repro.serve.client import AsyncServeClient, ServeError
from repro.serve.loadgen import run_loadgen
from repro.serve.resilience import RetryPolicy
from repro.serve.server import DerivationServer, ServeConfig

#: The spec every chaos burst derives (tiny: the faults are the load).
DEFAULT_SPEC = "SPEC a1; exit >> b2; exit ENDSPEC"


def default_retry(plan: FaultPlan) -> RetryPolicy:
    """The retry policy a chaos burst uses unless told otherwise.

    Generous attempts, tight delays: a chaos run wants to prove
    recovery, not to wait politely.  Seeded from the plan so the whole
    run replays.
    """
    return RetryPolicy(
        max_attempts=6,
        base_delay=0.02,
        multiplier=2.0,
        max_delay=0.25,
        jitter=0.5,
        seed=plan.seed,
    )


def resolve_plan(name_or_path: str, seed: int = 0) -> FaultPlan:
    """A built-in plan by name, or a plan document by file path."""
    path = pathlib.Path(name_or_path)
    if path.suffix == ".json" or path.exists():
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise ChaosError(f"cannot read fault plan {name_or_path!r}: {exc}")
        except json.JSONDecodeError as exc:
            raise ChaosError(f"fault plan {name_or_path!r} is not JSON: {exc}")
        return FaultPlan.from_dict(document).with_seed(seed)
    return get_plan(name_or_path, seed)


async def run_chaos(
    plan: FaultPlan,
    spec: str = DEFAULT_SPEC,
    op: str = "derive",
    connections: int = 4,
    requests: int = 40,
    workers: int = 2,
    worker_kind: str = "thread",
    retry: Optional[RetryPolicy] = None,
    request_timeout: float = 10.0,
    health_interval: float = 0.05,
) -> Dict[str, Any]:
    """One full chaos run; returns the ``repro.obs.chaos/v1`` report.

    The server runs in-process (port 0, access log off) with the
    plan's ``server_overrides`` applied: ``request_timeout`` so stalls
    actually expire, ``cache: true`` (a temp store) so cache faults
    have something to corrupt.  The cache is otherwise OFF so every
    request exercises the worker pool.
    """
    if retry is None:
        retry = default_retry(plan)
    overrides = plan.overrides()
    tmp: Optional[tempfile.TemporaryDirectory] = None
    cache_dir: Optional[str] = None
    if overrides.get("cache"):
        tmp = tempfile.TemporaryDirectory(prefix="repro-chaos-cache-")
        cache_dir = tmp.name
    config = ServeConfig(
        host="127.0.0.1",
        port=0,
        workers=workers,
        worker_kind=worker_kind,
        request_timeout=float(
            overrides.get("request_timeout", request_timeout)
        ),
        cache_dir=cache_dir,
        access_log=False,
    )

    health = {"probes": 0, "failures": 0}
    stop = asyncio.Event()

    async def probe(port: int) -> None:
        client = AsyncServeClient("127.0.0.1", port, timeout=2.0)
        try:
            while not stop.is_set():
                health["probes"] += 1
                try:
                    status, _ = await client.request("GET", "/healthz")
                    if status != 200:
                        health["failures"] += 1
                except ServeError:
                    health["failures"] += 1
                try:
                    await asyncio.wait_for(stop.wait(), health_interval)
                except asyncio.TimeoutError:
                    pass
        finally:
            await client.close()

    controller = ChaosController(plan)
    try:
        with use_chaos(controller):
            server = DerivationServer(config)
            await server.start()
            probe_task = asyncio.create_task(probe(server.port))
            try:
                loadgen_report = await run_loadgen(
                    "127.0.0.1",
                    server.port,
                    spec,
                    op=op,
                    connections=connections,
                    requests=requests,
                    timeout=config.request_timeout + 5.0,
                    retry=retry,
                )
            finally:
                stop.set()
                await probe_task
            alive = False
            client = AsyncServeClient("127.0.0.1", server.port, timeout=2.0)
            try:
                status, _ = await client.request("GET", "/healthz")
                alive = status == 200
            except ServeError:
                alive = False
            finally:
                await client.close()
            await server.shutdown()
    finally:
        if tmp is not None:
            tmp.cleanup()

    lost = loadgen_report["requests"] - loadgen_report["ok"]
    return {
        "schema": CHAOS_SCHEMA,
        "plan": plan.to_dict(),
        "injections": controller.injections(),
        "loadgen": loadgen_report,
        "health": dict(health),
        "server": {
            "respawns": server.pool.respawns,
            "metrics": server.registry.snapshot(),
        },
        "verdict": {
            "lost_requests": lost,
            "server_alive": alive,
            "ok": lost == 0 and alive and health["failures"] == 0,
        },
    }


def render_digest(report: Dict[str, Any]) -> str:
    """The stderr one-liner ``repro chaos`` prints."""
    verdict = report["verdict"]
    injections = report["injections"]
    loadgen = report["loadgen"]
    kinds = ", ".join(
        f"{kind} x{count}"
        for kind, count in sorted(injections["by_kind"].items())
    ) or "none"
    line = (
        f"chaos: plan {report['plan']['name']!r} seed "
        f"{report['plan']['seed']}: {injections['total']} injection(s) "
        f"({kinds}); {loadgen['ok']}/{loadgen['requests']} ok, "
        f"{loadgen['retries']} retry(ies), "
        f"{loadgen['recovered']} recovered, "
        f"{loadgen['exhausted']} exhausted; "
    )
    line += (
        "verdict: OK"
        if verdict["ok"]
        else f"verdict: FAILED ({verdict['lost_requests']} lost, "
        f"alive={verdict['server_alive']}, "
        f"health failures={report['health']['failures']})"
    )
    return line
