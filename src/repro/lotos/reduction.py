"""Weak-bisimulation-preserving LTS reduction.

Composed protocol systems are dominated by *deterministic internal
chains*: a state whose only move is a single internal step (a message
being laid into or taken out of a channel with nothing else enabled) is
weakly bisimilar to its successor.  :func:`compress_tau_chains` merges
every such state into its successor, which routinely shrinks a composed
state space by an order of magnitude and lets the exact (saturation-
based) equivalence checks cover systems that would otherwise fall back
to bounded methods.

Soundness: if ``s`` has exactly one outgoing transition and it is
internal to ``t``, then ``s ≈ t`` (weak bisimulation), so redirecting
every edge into ``s`` to ``t`` preserves weak bisimilarity of the whole
system.  The initial state is never merged away, so the rooted condition
(observation congruence) is preserved as well: an initial ``i``-move
remains an ``i``-move (possibly to a compressed representative).
"""

from __future__ import annotations

from typing import Dict, List

from repro.lotos.lts import LTS


def compress_tau_chains(lts: LTS) -> LTS:
    """Merge non-initial states whose only move is one internal step.

    Truncated states are never merged (their outgoing behaviour is
    unknown).  Internal self-loop-only states (divergence) are kept —
    they are *not* equivalent to "skip ahead".
    """
    representative: List[int] = list(range(lts.num_states))

    def resolve(state: int) -> int:
        seen = []
        current = state
        while representative[current] != current:
            seen.append(current)
            current = representative[current]
        for passed in seen:
            representative[passed] = current
        return current

    for state in range(lts.num_states):
        if state == lts.initial or state in lts.truncated_states:
            continue
        outgoing = lts.edges[state]
        if len(outgoing) != 1:
            continue
        label, target = outgoing[0]
        if label.is_observable() or target == state:
            continue
        representative[state] = target

    # Resolve chains (and break any accidental cycles a->b->a of pure
    # internal steps: resolve() terminates because representative forms
    # a forest after the cycle guard below).
    for state in range(lts.num_states):
        # cycle guard: walk with two pointers; if a cycle is found, pin
        # the smallest member as its own representative.
        slow = fast = state
        while True:
            if representative[slow] == slow:
                break
            slow = representative[slow]
            fast = representative[representative[fast]]
            if slow == fast and representative[slow] != slow:
                representative[slow] = slow
                break

    mapping: Dict[int, int] = {}
    new_terms = []
    new_truncated = set()
    order = [lts.initial] + [s for s in range(lts.num_states) if s != lts.initial]
    for state in order:
        root = resolve(state)
        if root not in mapping:
            mapping[root] = len(new_terms)
            new_terms.append(lts.state_terms[root])
            if root in lts.truncated_states:
                new_truncated.add(mapping[root])

    new_edges: List[tuple] = [()] * len(new_terms)
    for state in range(lts.num_states):
        root = resolve(state)
        if root != state:
            continue  # merged away; its edges are its representative's
        seen = set()
        collected = []
        for label, target in lts.edges[state]:
            edge = (label, mapping[resolve(target)])
            if edge not in seen:
                seen.add(edge)
                collected.append(edge)
        new_edges[mapping[root]] = tuple(collected)

    reachable_initial = mapping[resolve(lts.initial)]
    return LTS(new_terms, new_edges, reachable_initial, new_truncated)
