"""Observable-trace machinery.

Weak (observable) traces abstract from the internal action: the weak
trace of an execution is the sequence of its observable labels (service
primitives, send/receive interactions that are not hidden, and the
termination event ``delta``).

Everything here works *on the fly* from a :class:`Semantics` — no LTS is
materialized — so recursive (infinite-state) specifications can be
compared up to a depth bound without worrying about truncation artifacts:
a bounded comparison explores exactly the behaviours of the first
``depth`` observable steps.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.lotos.events import Label
from repro.lotos.semantics import Semantics
from repro.lotos.syntax import Behaviour

StateSet = FrozenSet[Behaviour]
Trace = Tuple[Label, ...]


def tau_closure(states: StateSet, semantics: Semantics) -> StateSet:
    """All behaviours reachable via internal actions (reflexive)."""
    seen: Set[Behaviour] = set(states)
    stack: List[Behaviour] = list(states)
    while stack:
        term = stack.pop()
        for label, residual in semantics.transitions(term):
            if not label.is_observable() and residual not in seen:
                seen.add(residual)
                stack.append(residual)
    return frozenset(seen)


def initial_class(root: Behaviour, semantics: Semantics) -> StateSet:
    return tau_closure(frozenset([root]), semantics)


def observable_moves(
    states: StateSet, semantics: Semantics
) -> Dict[Label, StateSet]:
    """Weak successor classes: label -> tau-closed set of successors."""
    raw: Dict[Label, Set[Behaviour]] = {}
    for term in states:
        for label, residual in semantics.transitions(term):
            if label.is_observable():
                raw.setdefault(label, set()).add(residual)
    return {
        label: tau_closure(frozenset(targets), semantics)
        for label, targets in raw.items()
    }


def accepts(
    root: Behaviour, semantics: Semantics, trace: Sequence[Label]
) -> bool:
    """Whether ``trace`` is a weak trace of ``root``."""
    current = initial_class(root, semantics)
    for label in trace:
        moves = observable_moves(current, semantics)
        if label not in moves:
            return False
        current = moves[label]
    return True


def enumerate_weak_traces(
    root: Behaviour,
    semantics: Semantics,
    max_length: int,
    max_traces: int = 100_000,
) -> Set[Trace]:
    """All weak traces of length at most ``max_length``.

    The empty trace is always included.  Enumeration stops (raising
    ``RuntimeError``) if more than ``max_traces`` traces accumulate —
    callers comparing trace *sets* should prefer
    :func:`weak_trace_equivalent`, which never enumerates.
    """
    traces: Set[Trace] = {()}
    # Work on (trace, class) pairs; the same class reached through two
    # different prefixes must be expanded for both, because the *full*
    # traces differ, so only identical (trace, class) pairs are merged —
    # which the `pending` set takes care of.
    start = ((), initial_class(root, semantics))
    queue: deque[Tuple[Trace, StateSet]] = deque([start])
    pending: Set[Tuple[Trace, StateSet]] = {start}
    while queue:
        trace, states = queue.popleft()
        if len(trace) >= max_length:
            continue
        for label, targets in observable_moves(states, semantics).items():
            extended = trace + (label,)
            traces.add(extended)
            if len(traces) > max_traces:
                raise RuntimeError(
                    f"more than {max_traces} traces of length <= {max_length}"
                )
            item = (extended, targets)
            if item not in pending:
                pending.add(item)
                queue.append(item)
    return traces


def weak_trace_equivalent(
    root1: Behaviour,
    semantics1: Semantics,
    root2: Behaviour,
    semantics2: Semantics,
    depth: int,
) -> Tuple[bool, Optional[Trace]]:
    """Bounded weak-trace equivalence with counterexample.

    Returns ``(True, None)`` when the two behaviours have the same weak
    traces of length up to ``depth``; otherwise ``(False, witness)``
    where ``witness`` is a shortest trace possessed by exactly one side.
    """
    start = (initial_class(root1, semantics1), initial_class(root2, semantics2))
    queue: deque[Tuple[Trace, StateSet, StateSet]] = deque([((), *start)])
    visited: Set[Tuple[StateSet, StateSet]] = {start}
    while queue:
        trace, class1, class2 = queue.popleft()
        if len(trace) >= depth:
            continue
        moves1 = observable_moves(class1, semantics1)
        moves2 = observable_moves(class2, semantics2)
        for label in set(moves1) | set(moves2):
            extended = trace + (label,)
            if label not in moves1 or label not in moves2:
                return False, extended
            pair = (moves1[label], moves2[label])
            if pair not in visited:
                visited.add(pair)
                queue.append((extended, *pair))
    return True, None


def weak_trace_included(
    root1: Behaviour,
    semantics1: Semantics,
    root2: Behaviour,
    semantics2: Semantics,
    depth: int,
) -> Tuple[bool, Optional[Trace]]:
    """Bounded weak-trace inclusion: traces(root1) ⊆ traces(root2).

    Returns ``(False, witness)`` with a shortest trace of ``root1`` that
    ``root2`` cannot perform, or ``(True, None)``.
    """
    start = (initial_class(root1, semantics1), initial_class(root2, semantics2))
    queue: deque[Tuple[Trace, StateSet, StateSet]] = deque([((), *start)])
    visited: Set[Tuple[StateSet, StateSet]] = {start}
    while queue:
        trace, class1, class2 = queue.popleft()
        if len(trace) >= depth:
            continue
        moves1 = observable_moves(class1, semantics1)
        moves2 = observable_moves(class2, semantics2)
        for label, targets1 in moves1.items():
            extended = trace + (label,)
            if label not in moves2:
                return False, extended
            pair = (targets1, moves2[label])
            if pair not in visited:
                visited.add(pair)
                queue.append((extended, *pair))
    return True, None


def format_trace(trace: Sequence[Label]) -> str:
    """Human-readable rendering, e.g. ``a1 . b2 . delta``."""
    if not trace:
        return "<empty>"
    return " . ".join(str(label) for label in trace)
