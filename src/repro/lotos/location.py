"""Source locations for specification text.

A :class:`Span` is a half-open region of source text in 1-based line /
column coordinates, as produced by the lexer's position tracking.  The
parser attaches one to every syntax-tree node it builds (the ``loc``
field of :class:`repro.lotos.syntax.Behaviour`), so that downstream
diagnostics — the restriction checker, the lint pass — can point at the
exact source text that triggered them.

Spans are metadata: they never participate in behaviour equality or
hashing (two structurally identical expressions written on different
lines are the same state), and tree rewrites (flattening, numbering,
action-prefix expansion) preserve them where the rewritten node has a
textual original and drop them (``loc=None``) for synthesized nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Span:
    """A contiguous region of source text, 1-based, end-exclusive."""

    line: int
    column: int
    end_line: Optional[int] = None
    end_column: Optional[int] = None

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"

    def cover(self, other: Optional["Span"]) -> "Span":
        """The smallest span containing both ``self`` and ``other``."""
        if other is None:
            return self
        start = min((self.line, self.column), (other.line, other.column))
        ends = [
            (s.end_line, s.end_column)
            for s in (self, other)
            if s.end_line is not None
        ]
        end = max(ends) if ends else (None, None)
        return Span(start[0], start[1], end[0], end[1])

    def to_dict(self) -> dict:
        return {
            "line": self.line,
            "column": self.column,
            "end_line": self.end_line,
            "end_column": self.end_column,
        }
