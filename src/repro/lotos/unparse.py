"""Pretty-printer: behaviour ASTs back to the paper's concrete syntax.

The printer emits the minimal parenthesization that reparses to the same
tree under the precedence of :mod:`repro.lotos.parser` (action prefix
binds tightest, then ``[]``, the parallel operators, ``[>``, ``>>`` and
finally ``hide``; all binary operators associate to the right).  The
round-trip property ``parse(unparse(b)) == b`` is exercised by the test
suite, including property-based tests over random ASTs.

``compact=True`` renders synchronization messages the way the paper
prints them (``s2(8)`` — occurrence parameter elided); ``compact=False``
spells out the occurrence (``s2(s,8)`` or ``s2(<3.5>,8)``).
"""

from __future__ import annotations

from typing import List

from repro.lotos.events import Event, ReceiveAction, SendAction
from repro.lotos.syntax import (
    ActionPrefix,
    Behaviour,
    Choice,
    DefBlock,
    Disable,
    Empty,
    Enable,
    Exit,
    Hide,
    Parallel,
    ProcessDefinition,
    ProcessRef,
    Specification,
    Stop,
)

# Binding levels, loosest first.  A subexpression is parenthesized when
# its own level is looser (smaller) than the level its context requires.
_LEVEL_HIDE = 0
_LEVEL_ENABLE = 1
_LEVEL_DISABLE = 2
_LEVEL_PARALLEL = 3
_LEVEL_CHOICE = 4
_LEVEL_SEQ = 5
_LEVEL_ATOM = 6


def _level(node: Behaviour) -> int:
    if isinstance(node, Hide):
        return _LEVEL_HIDE
    if isinstance(node, Enable):
        return _LEVEL_ENABLE
    if isinstance(node, Disable):
        return _LEVEL_DISABLE
    if isinstance(node, Parallel):
        return _LEVEL_PARALLEL
    if isinstance(node, Choice):
        return _LEVEL_CHOICE
    if isinstance(node, ActionPrefix):
        return _LEVEL_SEQ
    return _LEVEL_ATOM


def _render_event(event: Event, compact: bool) -> str:
    if isinstance(event, (SendAction, ReceiveAction)):
        return event.render(compact)
    return str(event)


def unparse_behaviour(node: Behaviour, compact: bool = True) -> str:
    """Render one behaviour expression on a single line."""
    return _render(node, _LEVEL_HIDE, compact)


def _render(node: Behaviour, required: int, compact: bool) -> str:
    text = _render_node(node, compact)
    if _level(node) < required:
        return f"({text})"
    return text


def _render_node(node: Behaviour, compact: bool) -> str:
    if isinstance(node, Exit):
        return "exit"
    if isinstance(node, Stop):
        return "stop"
    if isinstance(node, Empty):
        return "empty"
    if isinstance(node, ProcessRef):
        if not compact and node.site is not None:
            # The invocation-site number seeds occurrence paths (paper
            # Section 3.5); the full rendering keeps the text a complete
            # record of the derived protocol.
            return f"{node.name}({node.site})"
        return node.name
    if isinstance(node, ActionPrefix):
        head = _render_event(node.event, compact)
        tail = _render(node.continuation, _LEVEL_SEQ, compact)
        return f"{head}; {tail}"
    if isinstance(node, Choice):
        left = _render(node.left, _LEVEL_SEQ, compact)
        right = _render(node.right, _LEVEL_CHOICE, compact)
        return f"{left} [] {right}"
    if isinstance(node, Parallel):
        left = _render(node.left, _LEVEL_CHOICE, compact)
        right = _render(node.right, _LEVEL_PARALLEL, compact)
        return f"{left} {_parallel_op(node, compact)} {right}"
    if isinstance(node, Disable):
        left = _render(node.left, _LEVEL_PARALLEL, compact)
        right = _render(node.right, _LEVEL_DISABLE, compact)
        return f"{left} [> {right}"
    if isinstance(node, Enable):
        left = _render(node.left, _LEVEL_DISABLE, compact)
        right = _render(node.right, _LEVEL_ENABLE, compact)
        return f"{left} >> {right}"
    if isinstance(node, Hide):
        if node.hide_messages:
            gates = "messages"
        else:
            events = sorted(node.gates, key=lambda e: e.sort_key())
            gates = ", ".join(_render_event(e, compact) for e in events)
        body = _render(node.body, _LEVEL_HIDE, compact)
        return f"hide {gates} in {body}"
    raise TypeError(f"cannot unparse node of type {type(node).__name__}")


def _parallel_op(node: Parallel, compact: bool) -> str:
    if node.sync_all:
        return "||"
    if not node.sync:
        return "|||"
    events = sorted(node.sync, key=lambda e: e.sort_key())
    inner = ", ".join(_render_event(e, compact) for e in events)
    return f"|[{inner}]|"


def _render_def_block(block: DefBlock, indent: int, compact: bool) -> List[str]:
    pad = "  " * indent
    lines = [pad + unparse_behaviour(block.behaviour, compact)]
    if block.definitions:
        lines.append(pad + "WHERE")
        for definition in block.definitions:
            lines.extend(_render_process_def(definition, indent + 1, compact))
    return lines


def _render_process_def(
    definition: ProcessDefinition, indent: int, compact: bool
) -> List[str]:
    pad = "  " * indent
    lines = [f"{pad}PROC {definition.name} ="]
    lines.extend(_render_def_block(definition.body, indent + 1, compact))
    lines.append(pad + "END")
    return lines


def unparse(spec: Specification, compact: bool = True) -> str:
    """Render a full specification, one construct per line, indented."""
    lines = ["SPEC"]
    lines.extend(_render_def_block(spec.root, 1, compact))
    lines.append("ENDSPEC")
    return "\n".join(lines) + "\n"
