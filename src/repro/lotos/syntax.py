"""Abstract syntax of the specification language (paper Table 1).

Behaviour expressions are immutable, hashable dataclasses.  Immutability
matters twice over: behaviour expressions *are* the states of the labelled
transition systems built by :mod:`repro.lotos.semantics`, so structural
hashing gives state identity for free; and the derivation function ``T_p``
freely shares subtrees between the specifications it produces.

Every behaviour node carries an optional ``nid`` — the preorder node
number ``N`` assigned by :mod:`repro.core.attributes` (paper Section 4.1).
``nid`` participates in equality, so two occurrences of the same
subexpression at different positions of a *numbered* service tree are
distinct objects, which is exactly what the attribute table needs.
Unnumbered trees (``nid=None`` everywhere) keep plain structural equality.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import FrozenSet, Iterator, Optional, Tuple

from repro.lotos.events import Event, OccurrencePath
from repro.lotos.location import Span


@dataclass(frozen=True, eq=False)
class Behaviour:
    """Base class of behaviour expressions.

    Equality and hashing are structural but engineered for the access
    pattern of state-space exploration: the hash is computed once per
    node object (derived states share almost all of their subtrees with
    their parents, so hashing a successor is O(1) amortized instead of
    O(tree size)), and equality short-circuits on identity and on hash
    mismatch before falling back to field-by-field comparison.

    ``loc`` is the source span the parser read this node from.  It is
    pure metadata: excluded from equality and hashing (a behaviour
    expression denotes the same state wherever it was written), carried
    along by ``with_children`` rebuilds, and ``None`` on synthesized
    nodes (derivation output, expansion residues).
    """

    nid: Optional[int] = field(default=None, kw_only=True)
    loc: Optional[Span] = field(default=None, kw_only=True, repr=False)

    @classmethod
    def _field_names(cls) -> Tuple[str, ...]:
        names = cls.__dict__.get("_field_names_cache")
        if names is None:
            names = tuple(
                f.name for f in dataclasses.fields(cls) if f.name != "loc"
            )
            cls._field_names_cache = names
        return names

    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash")
        if cached is None:
            values = tuple(getattr(self, name) for name in self._field_names())
            cached = hash((self.__class__.__qualname__, values))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if self.__class__ is not other.__class__:
            return NotImplemented if not isinstance(other, Behaviour) else False
        if hash(self) != hash(other):
            return False
        for name in self._field_names():
            if getattr(self, name) != getattr(other, name):
                return False
        return True

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def children(self) -> Tuple["Behaviour", ...]:
        """Immediate behaviour subexpressions, left to right."""
        return ()

    def with_children(self, children: Tuple["Behaviour", ...]) -> "Behaviour":
        """Rebuild this node with replacement children (same arity)."""
        if children:
            raise ValueError(f"{type(self).__name__} takes no children")
        return self

    def walk(self) -> Iterator["Behaviour"]:
        """Preorder traversal of the expression tree."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True, eq=False)
class Stop(Behaviour):
    """Inaction: offers no event ever.

    Not part of the paper's Table 1 grammar, but required by the LOTOS
    semantics (it is the residue of ``delta`` transitions) and accepted by
    the parser as an extension.
    """


@dataclass(frozen=True, eq=False)
class Exit(Behaviour):
    """Successful termination: offers ``delta`` and becomes :class:`Stop`."""


@dataclass(frozen=True, eq=False)
class Empty(Behaviour):
    """The derivation placeholder ``empty`` (paper Section 3.1).

    ``empty`` means "no actions are to be generated in the specified
    place".  It is the identity of ``;``, ``>>`` and ``|||`` under the
    elimination laws of Section 4.2 and is removed from every derived
    specification by :mod:`repro.core.simplify`; it has no operational
    semantics of its own.
    """


@dataclass(frozen=True, eq=False)
class ActionPrefix(Behaviour):
    """``event ; continuation`` (Table 1 rules 16/17 and 94)."""

    event: Event
    continuation: Behaviour

    def children(self) -> Tuple[Behaviour, ...]:
        return (self.continuation,)

    def with_children(self, children: Tuple[Behaviour, ...]) -> "ActionPrefix":
        (continuation,) = children
        return ActionPrefix(self.event, continuation, nid=self.nid, loc=self.loc)


@dataclass(frozen=True, eq=False)
class Choice(Behaviour):
    """``left [] right`` (Table 1 rules 14 and 92)."""

    left: Behaviour
    right: Behaviour

    def children(self) -> Tuple[Behaviour, ...]:
        return (self.left, self.right)

    def with_children(self, children: Tuple[Behaviour, ...]) -> "Choice":
        left, right = children
        return Choice(left, right, nid=self.nid, loc=self.loc)


@dataclass(frozen=True, eq=False)
class Parallel(Behaviour):
    """Parallel composition (Table 1 rules 11-13).

    ``sync`` is the ``event_subset`` of ``|[event_subset]|``; the empty
    set yields pure interleaving ``|||``.  ``sync_all=True`` encodes
    ``||`` (synchronization on every observable event), for which no
    explicit subset is stored.  ``delta`` always synchronizes.
    """

    left: Behaviour
    right: Behaviour
    sync: FrozenSet[Event] = frozenset()
    sync_all: bool = False

    def children(self) -> Tuple[Behaviour, ...]:
        return (self.left, self.right)

    def with_children(self, children: Tuple[Behaviour, ...]) -> "Parallel":
        left, right = children
        return Parallel(
            left, right, self.sync, self.sync_all, nid=self.nid, loc=self.loc
        )

    def is_interleaving(self) -> bool:
        return not self.sync_all and not self.sync

    def synchronizes(self, event: Event) -> bool:
        """Whether ``event`` requires a rendezvous of both sides."""
        if not event.is_observable():
            return False
        return self.sync_all or event in self.sync


@dataclass(frozen=True, eq=False)
class Enable(Behaviour):
    """Sequential composition ``left >> right`` (Table 1 rule 7)."""

    left: Behaviour
    right: Behaviour

    def children(self) -> Tuple[Behaviour, ...]:
        return (self.left, self.right)

    def with_children(self, children: Tuple[Behaviour, ...]) -> "Enable":
        left, right = children
        return Enable(left, right, nid=self.nid, loc=self.loc)


@dataclass(frozen=True, eq=False)
class Disable(Behaviour):
    """Disabling ``left [> right`` (Table 1 rules 9/91)."""

    left: Behaviour
    right: Behaviour

    def children(self) -> Tuple[Behaviour, ...]:
        return (self.left, self.right)

    def with_children(self, children: Tuple[Behaviour, ...]) -> "Disable":
        left, right = children
        return Disable(left, right, nid=self.nid, loc=self.loc)


@dataclass(frozen=True, eq=False)
class Hide(Behaviour):
    """``hide gates in body``.

    The service language of the paper does not support hiding (Section 2),
    but the correctness statement of Section 5 needs it — the theorem
    hides the set ``G`` of synchronization interactions.  The semantics
    module therefore supports it; the restriction checker rejects it in
    service specifications handed to the Protocol Generator.

    ``gates`` may contain concrete events; additionally, when
    ``hide_messages=True`` every send/receive interaction is hidden
    regardless of ``gates``, which is how the verification harness
    expresses "hide G" without enumerating the (occurrence-parameterized,
    potentially unbounded) message alphabet.
    """

    body: Behaviour
    gates: FrozenSet[Event] = frozenset()
    hide_messages: bool = False

    def children(self) -> Tuple[Behaviour, ...]:
        return (self.body,)

    def with_children(self, children: Tuple[Behaviour, ...]) -> "Hide":
        (body,) = children
        return Hide(body, self.gates, self.hide_messages, nid=self.nid, loc=self.loc)


@dataclass(frozen=True, eq=False)
class ProcessRef(Behaviour):
    """Invocation of a named process (Table 1 rule 18).

    ``site`` is the node number of the invocation site in the *service*
    syntax tree; the derivation copies it into every derived entity so
    that all places extend occurrence paths identically (Section 3.5).
    ``occurrence`` is the concrete occurrence path of the instance this
    reference will create; it is ``None`` in static text and is bound by
    :func:`repro.lotos.scope.bind_occurrence` when the enclosing instance
    is itself instantiated.
    """

    name: str
    site: Optional[int] = None
    occurrence: Optional[OccurrencePath] = None

    def child_occurrence(self, parent: OccurrencePath) -> OccurrencePath:
        """Occurrence path for the instance created by this reference."""
        hop = self.site if self.site is not None else (self.nid or 0)
        return parent + (hop,)


@dataclass(frozen=True)
class ProcessDefinition:
    """``PROC name = body END`` (Table 1 rule 6).

    ``body`` is a :class:`DefBlock`: process definitions nest, and inner
    definitions shadow outer ones (block structure).  ``loc`` is the
    source span of the defined name, for diagnostics; like behaviour
    locations it is metadata and excluded from equality.
    """

    name: str
    body: "DefBlock"
    loc: Optional[Span] = field(default=None, compare=False)


@dataclass(frozen=True)
class DefBlock:
    """``e WHERE process_defs`` or a bare ``e`` (Table 1 rules 2/3)."""

    behaviour: Behaviour
    definitions: Tuple[ProcessDefinition, ...] = ()

    def local_names(self) -> Tuple[str, ...]:
        return tuple(d.name for d in self.definitions)


@dataclass(frozen=True)
class Specification:
    """``SPEC def_block ENDSPEC`` (Table 1 rule 1)."""

    root: DefBlock

    @property
    def behaviour(self) -> Behaviour:
        return self.root.behaviour

    @property
    def definitions(self) -> Tuple[ProcessDefinition, ...]:
        return self.root.definitions

    def walk_behaviours(self) -> Iterator[Behaviour]:
        """Preorder traversal over every behaviour node in the spec.

        Order: the main behaviour first, then each process definition in
        textual order (recursively, for nested WHERE blocks).  This is the
        order the node-numbering pass uses.
        """

        def from_block(block: DefBlock) -> Iterator[Behaviour]:
            yield from block.behaviour.walk()
            for definition in block.definitions:
                yield from from_block(definition.body)

        yield from from_block(self.root)
