"""Action-prefix-form transformation (paper Section 2, rules 9.1-9.4).

The derivation algorithm restricts the right operand of every disabling
operator ``[>`` to *action prefix form*::

    Dis = [] ( Event_Id_i ; Seq_i )        i = 1..n

"Using expansion theorems every finitely branching expression can be
written in action prefix form" — the paper assumes this transformation
happens *before* any processing by the algorithm.  This module implements
it: :func:`head_normal_form` rewrites one expression into a choice of
action prefixes using the operational semantics (the expansion theorems
T1-T3 of Annex A computed semantically), and
:func:`transform_disable_operands` applies it to every ``[>`` right
operand in a specification.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import ExpansionError
from repro.lotos.events import Delta, Event
from repro.lotos.semantics import Semantics
from repro.obs.metrics import get_registry
from repro.obs.spans import get_tracer
from repro.lotos.syntax import (
    ActionPrefix,
    Behaviour,
    Choice,
    DefBlock,
    Disable,
    Exit,
    ProcessDefinition,
    ProcessRef,
    Specification,
    Stop,
)


def is_action_prefix_form(node: Behaviour) -> bool:
    """Whether ``node`` is a choice tree whose leaves are action prefixes."""
    if isinstance(node, ActionPrefix):
        return True
    if isinstance(node, Choice):
        return is_action_prefix_form(node.left) and is_action_prefix_form(node.right)
    return False


def head_normal_form(
    node: Behaviour,
    semantics: Semantics,
    allow_exit: bool = False,
) -> Behaviour:
    """One-level expansion: rewrite ``node`` as ``[] (event_i ; residual_i)``.

    The residuals are taken verbatim from the operational semantics, so a
    single level of expansion suffices — the grammar's ``Seq -> (e)``
    production (rule 19) admits arbitrary expressions after the first
    event.  ``delta``-initial expressions cannot be written as an event
    prefix; they yield an ``exit`` alternative when ``allow_exit=True``
    and raise :class:`ExpansionError` otherwise (a disable operand must
    begin with its disrupting event — paper Section 2).
    """
    if is_action_prefix_form(node):
        return node
    alternatives = []
    for label, residual in semantics.transitions(node):
        if isinstance(label, Delta):
            if not allow_exit:
                raise ExpansionError(
                    "expression may terminate immediately and therefore has "
                    "no action prefix form (a disable operand must start "
                    "with its disrupting event)"
                )
            alternatives.append(Exit())
        elif isinstance(label, Event):
            alternatives.append(ActionPrefix(label, residual))
        else:  # pragma: no cover - semantics only emits events and delta
            raise ExpansionError(f"cannot prefix label {label}")
    if not alternatives:
        return Stop()
    result = alternatives[-1]
    for alternative in reversed(alternatives[:-1]):
        result = Choice(alternative, result)
    return result


def transform_disable_operands(spec: Specification) -> Specification:
    """Rewrite every ``[>`` right operand of ``spec`` to action prefix form.

    ``spec`` must already be flat (single WHERE level — see
    :func:`repro.lotos.scope.flatten_spec`); the transformation needs the
    full process environment to unfold references occurring at the head
    of a disable operand.

    Residual expressions introduced by the expansion are themselves
    transformed, so the result contains no disable whose right operand is
    not a choice of action prefixes.
    """
    environment = {
        definition.name: definition.body.behaviour for definition in spec.definitions
    }
    for definition in spec.definitions:
        if definition.body.definitions:
            raise ExpansionError(
                "transform_disable_operands expects a flattened specification"
            )
    semantics = Semantics(environment, bind_occurrences=False)
    cache: Dict[Behaviour, Behaviour] = {}
    expansions = [0]  # disable operands actually head-normalized

    def rewrite(node: Behaviour, depth: int) -> Behaviour:
        if depth > 64:
            raise ExpansionError(
                "disable-operand expansion did not converge (recursion too deep)"
            )
        cached = cache.get(node)
        if cached is not None:
            return cached
        if isinstance(node, ProcessRef):
            cache[node] = node
            return node
        if isinstance(node, Disable):
            left = rewrite(node.left, depth)
            if not is_action_prefix_form(node.right):
                expansions[0] += 1
            right = head_normal_form(node.right, semantics)
            # The expansion may splice in residuals containing further
            # disables (e.g. unfolding a process body); normalize them too.
            right = rewrite_children(right, depth + 1)
            if left == node.left and right == node.right:
                result: Behaviour = node
            else:
                result = Disable(left, right, nid=node.nid)
        else:
            result = rewrite_children(node, depth)
        cache[node] = result
        return result

    def rewrite_children(node: Behaviour, depth: int) -> Behaviour:
        children = node.children()
        if not children:
            return node
        new_children = tuple(rewrite(child, depth) for child in children)
        # Structural (not identity) comparison: the memo cache may return
        # an equal node object built for another occurrence of the same
        # subterm, which must not count as a change.
        if all(new == old for new, old in zip(new_children, children)):
            return node
        return node.with_children(new_children)

    with get_tracer().span("expansion.normalize_disable") as span:
        new_root = rewrite(spec.root.behaviour, 0)
        new_defs = []
        changed = new_root != spec.root.behaviour
        for definition in spec.definitions:
            new_body = rewrite(definition.body.behaviour, 0)
            changed = changed or new_body != definition.body.behaviour
            new_defs.append(
                ProcessDefinition(definition.name, DefBlock(new_body))
            )
        span.set(expanded_operands=expansions[0])
        if expansions[0]:
            get_registry().counter(
                "expansion.hnf_rewrites",
                help="disable operands rewritten to action prefix form",
            ).inc(expansions[0])
    if not changed:
        return spec
    return Specification(DefBlock(new_root, tuple(new_defs)))


def contains_unnormalized_disable(
    node: Behaviour, semantics: Optional[Semantics] = None
) -> bool:
    """Whether any ``[>`` in ``node`` has a non-prefix-form right operand."""
    for sub in node.walk():
        if isinstance(sub, Disable) and not is_action_prefix_form(sub.right):
            return True
    return False
