"""Recursive-descent parser for the Table 1 grammar.

The concrete grammar, written with the usual precedence climbing (loosest
binding first), is::

    spec        := 'SPEC' def_block 'ENDSPEC'
    def_block   := e ('WHERE' process_def+)?
    process_def := 'PROC' ProcId '=' def_block 'END'
    e           := 'hide' gate_list 'in' e          (extension)
                 | dis ('>>' e)?                    (rules 7/8)
    dis         := par ('[>' dis)?                  (rule 9)
    par         := choice (par_op par)?             (rules 11-13)
    par_op      := '|||' | '||' | '|[' event_list ']|'
    choice      := seq ('[]' choice)?               (rules 14/15)
    seq         := Event ';' (seq | 'exit' | 'stop')  (rules 16/17)
                 | ProcId                           (rule 18)
                 | '(' e ')'                        (rule 19)
                 | 'exit' | 'stop' | 'empty'        (extensions)

Deviations from the paper's grammar are strict extensions: bare ``exit``,
``stop``, ``empty`` and ``hide`` are accepted so that *derived* protocol
specifications (which contain such fragments before simplification) can be
round-tripped; :mod:`repro.core.restrictions` rejects them in service
specifications submitted to the Protocol Generator.

Identifier discipline follows the paper: process identifiers start with an
upper-case letter, event identifiers with a lower-case letter and end in
the place number (``read1``); ``i`` is the internal action; ``sJ(params)``
and ``rI(params)`` are send/receive interactions.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.lotos.events import (
    Event,
    InternalAction,
    ReceiveAction,
    SendAction,
    ServicePrimitive,
    SyncMessage,
)
from repro.lotos.lexer import Token, split_event_identifier, tokenize
from repro.lotos.location import Span
from repro.lotos.syntax import (
    ActionPrefix,
    Behaviour,
    Choice,
    DefBlock,
    Disable,
    Empty,
    Enable,
    Exit,
    Hide,
    Parallel,
    ProcessDefinition,
    ProcessRef,
    Specification,
    Stop,
)


class _Parser:
    """Token-stream cursor with one-token lookahead."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # ------------------------------------------------------------------
    # cursor primitives
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def peek(self, offset: int = 1) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.type != "EOF":
            self._index += 1
        return token

    def expect(self, token_type: str, value: Optional[str] = None) -> Token:
        token = self.current
        if token.type != token_type or (value is not None and token.value != value):
            wanted = value if value is not None else token_type
            raise ParseError(
                f"expected {wanted!r}, found {token.value!r}", token.line, token.column
            )
        return self.advance()

    def at_keyword(self, value: str) -> bool:
        return self.current.type == "KEYWORD" and self.current.value == value

    def error(self, message: str) -> ParseError:
        token = self.current
        return ParseError(message + f", found {token.value!r}", token.line, token.column)

    # ------------------------------------------------------------------
    # source spans
    # ------------------------------------------------------------------
    def span_from(self, start: Token) -> Span:
        """Span from ``start`` to the end of the last consumed token."""
        last = self._tokens[self._index - 1] if self._index else start
        return Span(start.line, start.column, last.line, last.column + len(last.value))

    @staticmethod
    def token_span(token: Token) -> Span:
        return Span(
            token.line,
            token.column,
            token.line,
            token.column + len(token.value),
        )

    # ------------------------------------------------------------------
    # grammar rules
    # ------------------------------------------------------------------
    def parse_specification(self) -> Specification:
        self.expect("KEYWORD", "SPEC")
        block = self.parse_def_block()
        self.expect("KEYWORD", "ENDSPEC")
        self.expect("EOF")
        return Specification(block)

    def parse_def_block(self) -> DefBlock:
        behaviour = self.parse_expression()
        definitions: Tuple[ProcessDefinition, ...] = ()
        if self.at_keyword("WHERE"):
            self.advance()
            collected = []
            while self.at_keyword("PROC"):
                collected.append(self.parse_process_def())
            if not collected:
                raise self.error("expected at least one PROC definition after WHERE")
            definitions = tuple(collected)
        return DefBlock(behaviour, definitions)

    def parse_process_def(self) -> ProcessDefinition:
        self.expect("KEYWORD", "PROC")
        name_token = self.expect("IDENT")
        if not name_token.value[0].isupper():
            raise ParseError(
                f"process identifier {name_token.value!r} must start upper-case",
                name_token.line,
                name_token.column,
            )
        self.expect("EQUALS")
        body = self.parse_def_block()
        self.expect("KEYWORD", "END")
        return ProcessDefinition(
            name_token.value, body, loc=self.token_span(name_token)
        )

    def parse_expression(self) -> Behaviour:
        start = self.current
        if self.at_keyword("hide"):
            return self.parse_hide()
        left = self.parse_dis()
        if self.current.type == "ENABLE":
            self.advance()
            right = self.parse_expression()
            return Enable(left, right, loc=self.span_from(start))
        return left

    def parse_hide(self) -> Behaviour:
        start = self.expect("KEYWORD", "hide")
        hide_messages = False
        gates: List[Event] = []
        if self.current.type == "IDENT" and self.current.value == "messages":
            self.advance()
            hide_messages = True
        else:
            gates.append(self.parse_event())
            while self.current.type == "COMMA":
                self.advance()
                gates.append(self.parse_event())
        self.expect("KEYWORD", "in")
        body = self.parse_expression()
        return Hide(body, frozenset(gates), hide_messages, loc=self.span_from(start))

    def parse_dis(self) -> Behaviour:
        start = self.current
        left = self.parse_par()
        if self.current.type == "DISABLE":
            self.advance()
            right = self.parse_dis()
            return Disable(left, right, loc=self.span_from(start))
        return left

    def parse_par(self) -> Behaviour:
        start = self.current
        left = self.parse_choice()
        token = self.current
        if token.type == "INTERLEAVE":
            self.advance()
            return Parallel(left, self.parse_par(), loc=self.span_from(start))
        if token.type == "FULLSYNC":
            self.advance()
            return Parallel(
                left, self.parse_par(), sync_all=True, loc=self.span_from(start)
            )
        if token.type == "LSYNC":
            self.advance()
            subset = self.parse_event_subset()
            self.expect("RSYNC")
            return Parallel(
                left,
                self.parse_par(),
                sync=frozenset(subset),
                loc=self.span_from(start),
            )
        return left

    def parse_event_subset(self) -> List[Event]:
        events: List[Event] = []
        if self.current.type == "RSYNC":
            return events
        events.append(self.parse_event())
        while self.current.type == "COMMA":
            self.advance()
            events.append(self.parse_event())
        return events

    def parse_choice(self) -> Behaviour:
        start = self.current
        left = self.parse_seq()
        if self.current.type == "CHOICE":
            self.advance()
            right = self.parse_choice()
            return Choice(left, right, loc=self.span_from(start))
        return left

    def parse_seq(self) -> Behaviour:
        token = self.current
        if token.type == "LPAREN":
            self.advance()
            inner = self.parse_expression()
            self.expect("RPAREN")
            return inner
        if token.type == "KEYWORD":
            if token.value == "exit":
                self.advance()
                return Exit(loc=self.token_span(token))
            if token.value == "stop":
                self.advance()
                return Stop(loc=self.token_span(token))
            if token.value == "empty":
                self.advance()
                return Empty(loc=self.token_span(token))
            raise self.error("expected a behaviour expression")
        if token.type == "IDENT":
            if token.value[0].isupper():
                self.advance()
                site = None
                if self.current.type == "LPAREN" and self.peek().type == "NUMBER":
                    self.advance()
                    site = int(self.expect("NUMBER").value)
                    self.expect("RPAREN")
                return ProcessRef(
                    token.value, site=site, loc=self.span_from(token)
                )
            event = self.parse_event()
            self.expect("SEMI")
            continuation = self.parse_seq_continuation()
            return ActionPrefix(event, continuation, loc=self.span_from(token))
        raise self.error("expected a behaviour expression")

    def parse_seq_continuation(self) -> Behaviour:
        """The part after ``Event ;`` — another Seq, ``exit`` or ``stop``."""
        token = self.current
        if self.at_keyword("exit"):
            self.advance()
            return Exit(loc=self.token_span(token))
        if self.at_keyword("stop"):
            self.advance()
            return Stop(loc=self.token_span(token))
        return self.parse_seq()

    # ------------------------------------------------------------------
    # events and messages
    # ------------------------------------------------------------------
    def parse_event(self) -> Event:
        token = self.expect("IDENT")
        name = token.value
        if name[0].isupper():
            raise ParseError(
                f"event identifier {name!r} must start lower-case", token.line, token.column
            )
        if name == "i":
            return InternalAction()
        base, place = split_event_identifier(name)
        if place is not None and base in ("s", "r") and self.current.type == "LPAREN":
            message = self.parse_message()
            if base == "s":
                return SendAction(dest=place, message=message)
            return ReceiveAction(src=place, message=message)
        if place is None:
            raise ParseError(
                f"event identifier {name!r} has no place number "
                "(service primitives are written like 'read1')",
                token.line,
                token.column,
            )
        params: Tuple[str, ...] = ()
        if self.current.type == "LPAREN":
            params = self.parse_parameter_names()
        return ServicePrimitive(base, place, params)

    def parse_parameter_names(self) -> Tuple[str, ...]:
        """Interaction parameters: ``(x)`` or ``(x, y)`` after a primitive."""
        self.expect("LPAREN")
        names = [self.expect("IDENT").value]
        while self.current.type == "COMMA":
            self.advance()
            names.append(self.expect("IDENT").value)
        self.expect("RPAREN")
        return tuple(names)

    def parse_message(self) -> SyncMessage:
        """Parse ``( [occurrence ','] [kind ','] node )``.

        Accepted occurrence forms: the symbol ``s`` (the symbolic current
        instance) and ``<3.5>`` / ``<>`` (concrete occurrence paths).  A
        bare node number, as printed in the paper's examples, denotes the
        symbolic occurrence.
        """
        self.expect("LPAREN")
        occurrence: Optional[Tuple[int, ...]] = None
        kind = "sync"
        node: Optional[int] = None
        while True:
            token = self.current
            if token.type == "NUMBER":
                self.advance()
                node = int(token.value)
            elif token.type == "IDENT" and token.value == "s":
                self.advance()
                occurrence = None
            elif token.type == "IDENT" and token.value == "x":
                # The paper's Section 3 sketches write s2(x) for "some
                # message"; map x to node 0.
                self.advance()
                node = 0
            elif token.type == "IDENT":
                self.advance()
                kind = token.value
            elif token.type == "LANGLE":
                self.advance()
                path: List[int] = []
                while self.current.type == "NUMBER":
                    path.append(int(self.advance().value))
                    if self.current.type == "DOT":
                        self.advance()
                self.expect("RANGLE")
                occurrence = tuple(path)
            else:
                raise self.error("expected a message parameter")
            if self.current.type == "COMMA":
                self.advance()
                continue
            break
        self.expect("RPAREN")
        if node is None:
            raise self.error("message parameter list lacks a node number")
        return SyncMessage(node=node, occurrence=occurrence, kind=kind)


def parse(text: str) -> Specification:
    """Parse a full ``SPEC ... ENDSPEC`` specification."""
    return _Parser(tokenize(text)).parse_specification()


def parse_behaviour(text: str) -> Behaviour:
    """Parse a bare behaviour expression (no SPEC/ENDSPEC wrapper)."""
    parser = _Parser(tokenize(text))
    behaviour = parser.parse_expression()
    parser.expect("EOF")
    return behaviour
