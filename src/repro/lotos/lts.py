"""Labelled transition systems with bounded construction.

Recursive specifications have infinite state spaces (e.g. the paper's
Example 2 generates ``(a)^n (b)^n``), so LTS construction takes an
explicit state budget and either raises or truncates — truncation is
recorded on the result and every analysis downstream reports it rather
than silently pretending completeness.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import StateSpaceLimitExceeded
from repro.lotos.events import Delta, InternalAction, Label
from repro.lotos.semantics import Semantics
from repro.lotos.syntax import Behaviour
from repro.obs.metrics import get_registry
from repro.obs.spans import get_tracer

#: Default budget for exhaustive state exploration.
DEFAULT_MAX_STATES = 20_000


@dataclass
class LTS:
    """A finite (possibly truncated) labelled transition system.

    States are integers; ``state_terms[i]`` is the behaviour expression
    the state stands for.  ``edges[i]`` lists ``(label, target)`` pairs in
    a deterministic order.  ``truncated_states`` holds the indices whose
    outgoing transitions were *not* expanded because the state budget ran
    out; analyses must treat such states as having unknown behaviour.
    """

    state_terms: List[Behaviour] = field(default_factory=list)
    edges: List[Tuple[Tuple[Label, int], ...]] = field(default_factory=list)
    initial: int = 0
    truncated_states: Set[int] = field(default_factory=set)

    @property
    def num_states(self) -> int:
        return len(self.state_terms)

    @property
    def num_transitions(self) -> int:
        return sum(len(outgoing) for outgoing in self.edges)

    @property
    def complete(self) -> bool:
        """Whether the LTS is the full (untruncated) state graph."""
        return not self.truncated_states

    def labels(self) -> Set[Label]:
        """All labels occurring on any transition."""
        return {label for outgoing in self.edges for label, _ in outgoing}

    def observable_labels(self) -> Set[Label]:
        return {label for label in self.labels() if label.is_observable()}

    def successors(self, state: int, label: Label) -> List[int]:
        return [target for lab, target in self.edges[state] if lab == label]

    def deadlock_states(self) -> List[int]:
        """Fully-expanded states with no outgoing transition.

        Note that the LOTOS ``stop`` after a ``delta`` is a *successful*
        end, so callers usually exclude states only reachable via
        ``delta`` when hunting for genuine deadlocks; see
        :func:`genuine_deadlocks`.
        """
        return [
            index
            for index, outgoing in enumerate(self.edges)
            if not outgoing and index not in self.truncated_states
        ]

    def genuine_deadlocks(self) -> List[int]:
        """Deadlocked states that are not the residue of termination."""
        terminal_ok: Set[int] = set()
        for outgoing in self.edges:
            for label, target in outgoing:
                if isinstance(label, Delta):
                    terminal_ok.add(target)
        return [state for state in self.deadlock_states() if state not in terminal_ok]

    def tau_closure(self, state: int) -> Set[int]:
        """States reachable from ``state`` via internal actions only."""
        seen = {state}
        stack = [state]
        while stack:
            current = stack.pop()
            for label, target in self.edges[current]:
                if isinstance(label, InternalAction) and target not in seen:
                    seen.add(target)
                    stack.append(target)
        return seen


def build_lts(
    root: Behaviour,
    semantics: Semantics,
    max_states: int = DEFAULT_MAX_STATES,
    on_limit: str = "raise",
) -> LTS:
    """Breadth-first construction of the LTS reachable from ``root``.

    ``on_limit`` is ``"raise"`` (default) or ``"truncate"``; in the latter
    case unexpanded frontier states are recorded in ``truncated_states``.
    """
    if on_limit not in ("raise", "truncate"):
        raise ValueError(f"unknown on_limit policy {on_limit!r}")

    index: Dict[Behaviour, int] = {root: 0}
    terms: List[Behaviour] = [root]
    edges: List[Optional[Tuple[Tuple[Label, int], ...]]] = [None]
    queue: deque[int] = deque([0])
    truncated: Set[int] = set()

    def intern(term: Behaviour) -> Optional[int]:
        state = index.get(term)
        if state is not None:
            return state
        if len(terms) >= max_states:
            return None
        state = len(terms)
        index[term] = state
        terms.append(term)
        edges.append(None)
        queue.append(state)
        return state

    # States/transitions are tallied in the locals above and published
    # once on the way out (even when the budget overflow raises), so the
    # inner loop carries no instrumentation cost.
    with get_tracer().span("lts.build", max_states=max_states) as span:
        try:
            while queue:
                state = queue.popleft()
                outgoing: List[Tuple[Label, int]] = []
                hit_limit = False
                for label, residual in semantics.transitions(terms[state]):
                    target = intern(residual)
                    if target is None:
                        hit_limit = True
                        continue
                    outgoing.append((label, target))
                if hit_limit:
                    if on_limit == "raise":
                        raise StateSpaceLimitExceeded(max_states)
                    truncated.add(state)
                edges[state] = tuple(outgoing)
        finally:
            transitions = sum(len(out) for out in edges if out is not None)
            span.set(
                states=len(terms),
                transitions=transitions,
                truncated=len(truncated),
            )
            registry = get_registry()
            registry.counter(
                "lts.states_expanded", help="states interned by build_lts"
            ).inc(len(terms))
            registry.counter(
                "lts.transitions", help="transitions recorded by build_lts"
            ).inc(transitions)
            if truncated:
                registry.counter(
                    "lts.truncated_states",
                    help="frontier states left unexpanded at the budget",
                ).inc(len(truncated))

    final_edges = [outgoing if outgoing is not None else () for outgoing in edges]
    return LTS(terms, final_edges, 0, truncated)
