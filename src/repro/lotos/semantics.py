"""Structured operational semantics of the specification language.

The rules are the standard basic-LOTOS ones ([Lotos 89]; see also the
expansion theorems reproduced in the paper's Annex A):

====================  =====================================================
construct             transitions
====================  =====================================================
``stop``              none
``exit``              ``exit --delta--> stop``
``a; B``              ``a; B --a--> B`` (``a`` may be the internal action)
``B1 [] B2``          every transition of either side (including delta)
``B1 |[G]| B2``       interleaving for labels outside ``G``; rendezvous
                      (both sides move together) for labels in ``G`` and
                      for ``delta``; the internal action never synchronizes
``B1 >> B2``          non-delta moves of ``B1`` keep the enable; a delta of
                      ``B1`` becomes an internal move to ``B2``
``B1 [> B2``          non-delta moves of ``B1`` keep the disable armed; a
                      delta of ``B1`` terminates the whole (``B2`` is
                      dropped); any move of ``B2`` disables ``B1``
``hide G in B``       moves of ``B`` with labels in ``G`` renamed to the
                      internal action (``delta`` is never hidden)
``P`` (process ref)   the moves of the bound body of ``P``
====================  =====================================================

Process references unfold lazily; :class:`Semantics` optionally binds
occurrence paths during unfolding (needed when executing derived protocol
entities, harmless but undesirable when analysing *service* trees whose
nodes must keep symbolic identity — pass ``bind_occurrences=False`` there).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import SemanticsError, UnboundProcessError, UnguardedRecursionError
from repro.lotos.events import (
    DELTA,
    INTERNAL,
    Delta,
    Event,
    InternalAction,
    Label,
    ReceiveAction,
    SendAction,
)
from repro.lotos.scope import bind_occurrence, flatten
from repro.lotos.syntax import (
    ActionPrefix,
    Behaviour,
    Choice,
    Disable,
    Empty,
    Enable,
    Exit,
    Hide,
    Parallel,
    ProcessRef,
    Specification,
    Stop,
)

Transition = Tuple[Label, Behaviour]

#: Safety bound on consecutive process unfoldings while computing the
#: transitions of a single expression.  A well-guarded specification
#: unfolds each reference at most once per nesting level; hitting the
#: bound indicates unguarded recursion such as ``PROC A = A END``.
MAX_UNFOLD_DEPTH = 512


def _is_delta(label: Label) -> bool:
    return isinstance(label, Delta)


class Semantics:
    """Transition-function object for a fixed process environment.

    Results are memoized per behaviour expression, which makes repeated
    LTS exploration over shared subterms cheap.
    """

    def __init__(
        self,
        environment: Optional[Mapping[str, Behaviour]] = None,
        bind_occurrences: bool = True,
    ) -> None:
        self.environment: Mapping[str, Behaviour] = dict(environment or {})
        self.bind_occurrences = bind_occurrences
        self._cache: Dict[Behaviour, Tuple[Transition, ...]] = {}

    @classmethod
    def of_specification(
        cls, spec: Specification, bind_occurrences: bool = True
    ) -> Tuple["Semantics", Behaviour]:
        """Elaborate ``spec`` and return (semantics, root behaviour)."""
        root, environment = flatten(spec)
        return cls(environment, bind_occurrences), root

    # ------------------------------------------------------------------
    def transitions(self, node: Behaviour) -> Tuple[Transition, ...]:
        """All transitions of ``node``, deduplicated, in stable order."""
        cached = self._cache.get(node)
        if cached is None:
            cached = self._dedup(self._transitions(node, 0))
            self._cache[node] = cached
        return cached

    @staticmethod
    def _dedup(transitions: List[Transition]) -> Tuple[Transition, ...]:
        seen = set()
        result = []
        for transition in transitions:
            if transition not in seen:
                seen.add(transition)
                result.append(transition)
        return tuple(result)

    # ------------------------------------------------------------------
    def _transitions(self, node: Behaviour, depth: int) -> List[Transition]:
        if isinstance(node, Stop):
            return []
        if isinstance(node, Exit):
            return [(DELTA, Stop())]
        if isinstance(node, Empty):
            raise SemanticsError(
                "'empty' has no operational semantics; apply "
                "repro.core.simplify.simplify before executing"
            )
        if isinstance(node, ActionPrefix):
            return [(node.event, node.continuation)]
        if isinstance(node, Choice):
            return self._transitions(node.left, depth) + self._transitions(
                node.right, depth
            )
        if isinstance(node, Parallel):
            return self._parallel_transitions(node, depth)
        if isinstance(node, Enable):
            return self._enable_transitions(node, depth)
        if isinstance(node, Disable):
            return self._disable_transitions(node, depth)
        if isinstance(node, Hide):
            return self._hide_transitions(node, depth)
        if isinstance(node, ProcessRef):
            return self._unfold(node, depth)
        raise SemanticsError(f"no semantics for node type {type(node).__name__}")

    def _parallel_transitions(self, node: Parallel, depth: int) -> List[Transition]:
        left_moves = self._transitions(node.left, depth)
        right_moves = self._transitions(node.right, depth)
        result: List[Transition] = []
        for label, residual in left_moves:
            if not self._synchronizes(node, label):
                result.append(
                    (label, Parallel(residual, node.right, node.sync, node.sync_all))
                )
        for label, residual in right_moves:
            if not self._synchronizes(node, label):
                result.append(
                    (label, Parallel(node.left, residual, node.sync, node.sync_all))
                )
        for left_label, left_residual in left_moves:
            if not self._synchronizes(node, left_label):
                continue
            for right_label, right_residual in right_moves:
                if right_label == left_label:
                    result.append(
                        (
                            left_label,
                            Parallel(
                                left_residual, right_residual, node.sync, node.sync_all
                            ),
                        )
                    )
        return result

    @staticmethod
    def _synchronizes(node: Parallel, label: Label) -> bool:
        if _is_delta(label):
            return True
        if isinstance(label, InternalAction):
            return False
        if isinstance(label, Event):
            return node.sync_all or label in node.sync
        return False

    def _enable_transitions(self, node: Enable, depth: int) -> List[Transition]:
        result: List[Transition] = []
        for label, residual in self._transitions(node.left, depth):
            if _is_delta(label):
                result.append((INTERNAL, node.right))
            else:
                result.append((label, Enable(residual, node.right)))
        return result

    def _disable_transitions(self, node: Disable, depth: int) -> List[Transition]:
        result: List[Transition] = []
        for label, residual in self._transitions(node.left, depth):
            if _is_delta(label):
                result.append((label, residual))
            else:
                result.append((label, Disable(residual, node.right)))
        result.extend(self._transitions(node.right, depth))
        return result

    def _hide_transitions(self, node: Hide, depth: int) -> List[Transition]:
        result: List[Transition] = []
        for label, residual in self._transitions(node.body, depth):
            wrapped = Hide(residual, node.gates, node.hide_messages)
            if self._is_hidden(node, label):
                result.append((INTERNAL, wrapped))
            else:
                result.append((label, wrapped))
        return result

    @staticmethod
    def _is_hidden(node: Hide, label: Label) -> bool:
        if not isinstance(label, Event):
            return False
        if label in node.gates:
            return True
        if node.hide_messages and isinstance(label, (SendAction, ReceiveAction)):
            return True
        return False

    def _unfold(self, node: ProcessRef, depth: int) -> List[Transition]:
        if depth >= MAX_UNFOLD_DEPTH:
            raise UnguardedRecursionError(
                f"process {node.name!r} unfolded {MAX_UNFOLD_DEPTH} times without "
                "offering an action; the recursion is probably unguarded"
            )
        body = self.environment.get(node.name)
        if body is None:
            raise UnboundProcessError(node.name)
        if self.bind_occurrences:
            occurrence = (
                node.occurrence
                if node.occurrence is not None
                else node.child_occurrence(())
            )
            body = bind_occurrence(body, occurrence)
        return self._transitions(body, depth + 1)
