"""Behavioural equivalences on finite LTSs.

The paper's correctness theorem (Section 5) is stated in terms of
*observation congruence* ``≈`` [Lotos 89] — weak bisimulation plus the
rooted condition on initial internal moves.  This module implements, by
partition refinement:

* strong bisimulation equivalence,
* weak bisimulation equivalence (saturation + strong refinement),
* observation congruence (rooted weak bisimulation),

all between two finite, complete LTSs.  Bounded comparison of
infinite-state systems lives in :mod:`repro.lotos.traces`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.errors import VerificationError
from repro.lotos.events import Label
from repro.lotos.lts import LTS
from repro.obs.metrics import get_registry
from repro.obs.spans import get_tracer

#: Pseudo-label used in the saturated system for "zero or more internal
#: moves".  Any object distinct from real labels works; a module-private
#: sentinel keeps it out of user-visible label sets.
_EPSILON = object()


@dataclass
class _Union:
    """Disjoint union of two LTSs with a shared state numbering."""

    edges: List[Tuple[Tuple[object, int], ...]]
    initial1: int
    initial2: int
    offset: int


def _disjoint_union(lts1: LTS, lts2: LTS) -> _Union:
    for lts, which in ((lts1, "first"), (lts2, "second")):
        if not lts.complete:
            raise VerificationError(
                f"the {which} LTS is truncated; equivalence checking requires "
                "a complete state graph (raise max_states or use bounded "
                "trace comparison instead)"
            )
    offset = lts1.num_states
    edges: List[Tuple[Tuple[object, int], ...]] = [
        tuple(outgoing) for outgoing in lts1.edges
    ]
    edges.extend(
        tuple((label, target + offset) for label, target in outgoing)
        for outgoing in lts2.edges
    )
    return _Union(edges, lts1.initial, lts2.initial + offset, offset)


def _refine(
    num_states: int, edges: List[Tuple[Tuple[object, int], ...]]
) -> List[int]:
    """Signature-based partition refinement; returns block ids per state."""
    blocks = [0] * num_states
    iterations = 0
    while True:
        iterations += 1
        signatures: Dict[int, Tuple[int, FrozenSet[Tuple[object, int]]]] = {}
        for state in range(num_states):
            signature = frozenset(
                (label, blocks[target]) for label, target in edges[state]
            )
            signatures[state] = (blocks[state], signature)
        mapping: Dict[Tuple[int, FrozenSet], int] = {}
        new_blocks = [0] * num_states
        for state in range(num_states):
            key = signatures[state]
            block = mapping.setdefault(key, len(mapping))
            new_blocks[state] = block
        if new_blocks == blocks:
            registry = get_registry()
            registry.counter(
                "equivalence.refine_iterations",
                help="partition-refinement sweeps until fixpoint",
            ).inc(iterations)
            registry.gauge(
                "equivalence.blocks",
                help="equivalence classes at the last fixpoint",
            ).set(len(mapping))
            return blocks
        blocks = new_blocks


def strong_bisimilar(lts1: LTS, lts2: LTS) -> bool:
    """Strong bisimulation equivalence of the two initial states."""
    union = _disjoint_union(lts1, lts2)
    blocks = _refine(len(union.edges), union.edges)
    return blocks[union.initial1] == blocks[union.initial2]


def _saturate(
    edges: List[Tuple[Tuple[object, int], ...]]
) -> List[Tuple[Tuple[object, int], ...]]:
    """Weak (double-arrow) transition relation with epsilon self-loops.

    ``s =a=> t``  iff  ``s (tau)* a (tau)* t`` for observable ``a``;
    ``s =eps=> t`` iff ``s (tau)* t`` (reflexive).  Strong bisimulation on
    the saturated system coincides with weak bisimulation on the original.
    """
    num_states = len(edges)
    closure: List[Set[int]] = []
    for state in range(num_states):
        seen = {state}
        stack = [state]
        while stack:
            current = stack.pop()
            for label, target in edges[current]:
                if _is_tau(label) and target not in seen:
                    seen.add(target)
                    stack.append(target)
        closure.append(seen)

    saturated: List[Tuple[Tuple[object, int], ...]] = []
    for state in range(num_states):
        weak: Set[Tuple[object, int]] = set()
        for mid in closure[state]:
            weak.add((_EPSILON, mid))
            for label, target in edges[mid]:
                if _is_tau(label):
                    continue
                for final in closure[target]:
                    weak.add((label, final))
        saturated.append(tuple(weak))
    return saturated


def _is_tau(label: object) -> bool:
    return isinstance(label, Label) and not label.is_observable()


def weak_bisimulation_blocks(lts1: LTS, lts2: LTS) -> Tuple[List[int], _Union]:
    """Weak-bisimulation classes over the disjoint union of both LTSs."""
    union = _disjoint_union(lts1, lts2)
    with get_tracer().span(
        "equivalence.weak_bisimulation", states=len(union.edges)
    ) as span:
        with get_tracer().span("equivalence.saturate"):
            saturated = _saturate(union.edges)
        get_registry().counter(
            "equivalence.saturated_edges",
            help="weak (double-arrow) transitions after saturation",
        ).inc(sum(len(outgoing) for outgoing in saturated))
        with get_tracer().span("equivalence.refine"):
            blocks = _refine(len(union.edges), saturated)
        span.set(blocks=len(set(blocks)))
    return blocks, union


def weak_bisimilar(lts1: LTS, lts2: LTS) -> bool:
    """Weak bisimulation equivalence of the two initial states."""
    blocks, union = weak_bisimulation_blocks(lts1, lts2)
    return blocks[union.initial1] == blocks[union.initial2]


def observationally_congruent(lts1: LTS, lts2: LTS) -> bool:
    """Observation congruence ``≈`` (rooted weak bisimulation).

    The initial states must match each other's *first* move in the rooted
    sense: an initial internal move of one side must be answered by at
    least one internal move of the other (``B [] i;B`` is weakly
    bisimilar, but not congruent, to ``i;B`` — law I2 of Annex A relates
    them only under a choice context).
    """
    blocks, union = weak_bisimulation_blocks(lts1, lts2)
    saturated = _saturate(union.edges)

    def rooted_match(source: int, other: int) -> bool:
        for label, target in union.edges[source]:
            if _is_tau(label):
                # Rooted condition: an internal move must be answered by
                # *at least one* internal step — one strong tau step,
                # then any number more (tau then eps-closure).
                candidates: Set[int] = set()
                for lab2, mid in union.edges[other]:
                    if _is_tau(lab2):
                        candidates.add(mid)
                        candidates.update(
                            final
                            for lab3, final in saturated[mid]
                            if lab3 is _EPSILON
                        )
                if not any(blocks[c] == blocks[target] for c in candidates):
                    return False
            else:
                matched = any(
                    lab == label and blocks[final] == blocks[target]
                    for lab, final in saturated[other]
                )
                if not matched:
                    return False
        return True

    if blocks[union.initial1] != blocks[union.initial2]:
        return False
    return rooted_match(union.initial1, union.initial2) and rooted_match(
        union.initial2, union.initial1
    )


def weak_bisimulation_classes(lts: LTS) -> List[int]:
    """Weak-bisimulation equivalence classes within a single LTS."""
    if not lts.complete:
        raise VerificationError("LTS is truncated")
    saturated = _saturate([tuple(outgoing) for outgoing in lts.edges])
    return _refine(lts.num_states, saturated)


def minimize_weak(lts: LTS) -> Tuple[int, Dict[int, Set[int]]]:
    """Number of weak-bisimulation classes and the class partition."""
    blocks = weak_bisimulation_classes(lts)
    partition: Dict[int, Set[int]] = {}
    for state, block in enumerate(blocks):
        partition.setdefault(block, set()).add(state)
    return len(partition), partition
