"""Tokenizer for the specification language of Table 1.

The lexer is a plain maximal-munch scanner with line/column tracking.  It
recognizes:

* the keywords ``SPEC``, ``ENDSPEC``, ``PROC``, ``END``, ``WHERE``,
  ``exit`` and, as extensions, ``stop``, ``hide``, ``in``;
* the operators ``>>``, ``[>``, ``[]``, ``|||``, ``||``, ``|[``, ``]|``
  plus ``(``, ``)``, ``;``, ``=``, ``,``, ``<``, ``>``, ``.``;
* identifiers.  Following the paper's convention, identifiers beginning
  with an upper-case letter are process identifiers and identifiers
  beginning with a lower-case letter are event identifiers (``a1``,
  ``read1``); the place of an event identifier is its trailing digit run;
* LOTOS comments ``(* ... *)``.

Interpretation of send/receive interactions (``s2(8)``, ``r1(s,2)``) is
done by the parser — lexically they are an identifier followed by a
parenthesized parameter list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import LexerError

#: Token type names.
KEYWORDS = frozenset(
    {"SPEC", "ENDSPEC", "PROC", "END", "WHERE", "exit", "stop", "hide", "in", "empty"}
)

#: Multi-character operators, longest first so maximal munch is a simple
#: linear scan over this tuple.
OPERATORS = (
    ("|||", "INTERLEAVE"),
    ("||", "FULLSYNC"),
    ("|[", "LSYNC"),
    ("]|", "RSYNC"),
    ("[>", "DISABLE"),
    ("[]", "CHOICE"),
    (">>", "ENABLE"),
    ("(", "LPAREN"),
    (")", "RPAREN"),
    (";", "SEMI"),
    ("=", "EQUALS"),
    (",", "COMMA"),
    ("<", "LANGLE"),
    (">", "RANGLE"),
    (".", "DOT"),
    ("^", "CARET"),
    ("_", "UNDERSCORE"),
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    type: str
    value: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.type}({self.value!r})@{self.line}:{self.column}"


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha()


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text``; raises :class:`LexerError` on illegal input."""
    return list(iter_tokens(text))


def iter_tokens(text: str) -> Iterator[Token]:
    """Yield the tokens of ``text`` followed by a final ``EOF`` token."""
    pos = 0
    line = 1
    column = 1
    length = len(text)

    def advance(count: int) -> None:
        nonlocal pos, line, column
        for _ in range(count):
            if pos < length and text[pos] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            pos += 1

    while pos < length:
        ch = text[pos]
        if ch.isspace():
            advance(1)
            continue
        # LOTOS comment: (* ... *), non-nesting.
        if text.startswith("(*", pos):
            end = text.find("*)", pos + 2)
            if end < 0:
                raise LexerError("unterminated comment", line, column)
            advance(end + 2 - pos)
            continue
        if _is_ident_start(ch):
            start = pos
            start_line, start_column = line, column
            while pos < length and _is_ident_char(text[pos]):
                advance(1)
            value = text[start:pos]
            token_type = "KEYWORD" if value in KEYWORDS else "IDENT"
            yield Token(token_type, value, start_line, start_column)
            continue
        if ch.isdigit():
            start = pos
            start_line, start_column = line, column
            while pos < length and text[pos].isdigit():
                advance(1)
            yield Token("NUMBER", text[start:pos], start_line, start_column)
            continue
        for literal, token_type in OPERATORS:
            if text.startswith(literal, pos):
                yield Token(token_type, literal, line, column)
                advance(len(literal))
                break
        else:
            raise LexerError(f"unexpected character {ch!r}", line, column)
    yield Token("EOF", "", line, column)


def split_event_identifier(name: str) -> tuple[str, int | None]:
    """Split an event identifier into (primitive name, place).

    The place of a service primitive is its trailing digit run (``read1``
    is primitive ``read`` at place 1).  Identifiers without trailing
    digits have no place (only the internal action ``i`` is legal then).
    """
    index = len(name)
    while index > 0 and name[index - 1].isdigit():
        index -= 1
    if index == len(name):
        return name, None
    return name[:index], int(name[index:])
