"""Graphviz/DOT export: LTS graphs and attributed syntax trees.

``syntax_tree_to_dot`` reproduces the paper's Figure 4 as a drawable
artifact: every node of the numbered service tree with its N and its
SP/EP/AP attributes.  ``lts_to_dot`` renders (small) labelled transition
systems, distinguishing internal moves, service primitives and the
termination event.

Output is plain DOT text — render with ``dot -Tsvg`` wherever Graphviz
is available; the tests only assert the structure of the text.
"""

from __future__ import annotations

from typing import Optional

from repro.core.attributes import AttributeTable
from repro.lotos.events import Delta, InternalAction
from repro.lotos.lts import LTS
from repro.lotos.syntax import (
    ActionPrefix,
    Behaviour,
    Choice,
    Disable,
    Empty,
    Enable,
    Exit,
    Hide,
    Parallel,
    ProcessRef,
    Specification,
    Stop,
)


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _node_symbol(node: Behaviour) -> str:
    if isinstance(node, ActionPrefix):
        return f"{node.event} ;"
    if isinstance(node, Choice):
        return "[]"
    if isinstance(node, Parallel):
        if node.sync_all:
            return "||"
        if node.sync:
            events = ", ".join(sorted(str(e) for e in node.sync))
            return f"|[{events}]|"
        return "|||"
    if isinstance(node, Enable):
        return ">>"
    if isinstance(node, Disable):
        return "[>"
    if isinstance(node, ProcessRef):
        return node.name
    if isinstance(node, Exit):
        return "exit"
    if isinstance(node, Stop):
        return "stop"
    if isinstance(node, Empty):
        return "empty"
    if isinstance(node, Hide):
        return "hide"
    return type(node).__name__


def _places(places) -> str:
    return "{" + ",".join(str(p) for p in sorted(places)) + "}"


def syntax_tree_to_dot(
    spec: Specification, attrs: Optional[AttributeTable] = None
) -> str:
    """The (optionally attributed) derivation tree, Figure 4 style."""
    lines = [
        "digraph derivation_tree {",
        '  node [shape=box, fontname="monospace"];',
    ]
    counter = [0]

    def emit(node: Behaviour, parent: Optional[str]) -> None:
        identity = f"n{counter[0]}"
        counter[0] += 1
        label = _node_symbol(node)
        if node.nid is not None:
            label = f"N={node.nid}\\n{label}"
        if attrs is not None and node.nid is not None:
            try:
                triple = attrs.of(node)
                label += (
                    f"\\nSP={_places(triple.sp)} EP={_places(triple.ep)}"
                    f"\\nAP={_places(triple.ap)}"
                )
            except Exception:
                pass
        lines.append(f'  {identity} [label="{_escape(label)}"];')
        if parent is not None:
            lines.append(f"  {parent} -> {identity};")
        for child in node.children():
            emit(child, identity)

    def emit_block(block, parent: Optional[str]) -> None:
        emit(block.behaviour, parent)
        for definition in block.definitions:
            identity = f"n{counter[0]}"
            counter[0] += 1
            lines.append(
                f'  {identity} [label="PROC {_escape(definition.name)}", shape=ellipse];'
            )
            if parent is not None:
                lines.append(f"  {parent} -> {identity} [style=dashed];")
            emit_block(definition.body, identity)

    root_identity = "root"
    lines.append('  root [label="SPEC", shape=ellipse];')
    emit_block(spec.root, root_identity)
    lines.append("}")
    return "\n".join(lines)


def lts_to_dot(lts: LTS, max_states: int = 300) -> str:
    """A drawable LTS: double circle start, dashed internal moves."""
    lines = [
        "digraph lts {",
        "  rankdir=LR;",
        '  node [shape=circle, fontname="monospace"];',
        f"  s{lts.initial} [shape=doublecircle];",
    ]
    shown = min(lts.num_states, max_states)
    for state in range(shown):
        if state in lts.truncated_states:
            lines.append(f'  s{state} [style=dotted, label="s{state}?"];')
        for label, target in lts.edges[state]:
            if target >= shown:
                continue
            style = ""
            if isinstance(label, InternalAction):
                style = ", style=dashed"
            elif isinstance(label, Delta):
                style = ", color=gray"
            lines.append(
                f'  s{state} -> s{target} [label="{_escape(str(label))}"{style}];'
            )
    if lts.num_states > shown:
        lines.append(f'  more [label="... {lts.num_states - shown} more states", shape=plaintext];')
    lines.append("}")
    return "\n".join(lines)
