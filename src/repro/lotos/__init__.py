"""Basic-LOTOS substrate: events, syntax, parser, semantics, equivalences.

This subpackage implements the specification language of the paper's
Section 2 (a dialect of basic LOTOS without hiding at the service level),
its structured operational semantics, labelled transition systems and the
behavioural equivalences used by the correctness theorem of Section 5.
"""

from repro.lotos.events import (
    DELTA,
    INTERNAL,
    Delta,
    Event,
    InternalAction,
    Label,
    ReceiveAction,
    SendAction,
    ServicePrimitive,
    SyncMessage,
)
from repro.lotos.syntax import (
    ActionPrefix,
    Behaviour,
    Choice,
    DefBlock,
    Disable,
    Empty,
    Enable,
    Exit,
    Hide,
    Parallel,
    ProcessDefinition,
    ProcessRef,
    Specification,
    Stop,
)
from repro.lotos.parser import parse, parse_behaviour
from repro.lotos.unparse import unparse, unparse_behaviour

__all__ = [
    "DELTA",
    "INTERNAL",
    "Delta",
    "Event",
    "InternalAction",
    "Label",
    "ReceiveAction",
    "SendAction",
    "ServicePrimitive",
    "SyncMessage",
    "ActionPrefix",
    "Behaviour",
    "Choice",
    "DefBlock",
    "Disable",
    "Empty",
    "Enable",
    "Exit",
    "Hide",
    "Parallel",
    "ProcessDefinition",
    "ProcessRef",
    "Specification",
    "Stop",
    "parse",
    "parse_behaviour",
    "unparse",
    "unparse_behaviour",
]
