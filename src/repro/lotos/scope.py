"""Name resolution and occurrence binding.

Process definitions are block structured (``PROC A = e WHERE PROC B = ...
END END``); inner definitions shadow outer ones.  The semantics, on the
other hand, wants a flat environment mapping process names to bodies.
:func:`flatten` performs the elaboration: it qualifies every definition
with its lexical path and rewrites every :class:`ProcessRef` to the
qualified name of the definition it resolves to.

:func:`bind_occurrence` implements the occurrence-number discipline of
paper Section 3.5: when a process instance is created, every symbolic
synchronization-message occurrence in its body is replaced by the
instance's occurrence path, and every process reference in the body is
annotated with the occurrence path *its* instantiation will use (the
parent path extended by the invocation-site node number).
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from repro.errors import UnboundProcessError
from repro.lotos.events import (
    Event,
    OccurrencePath,
    ReceiveAction,
    SendAction,
)
from repro.lotos.syntax import (
    ActionPrefix,
    Behaviour,
    DefBlock,
    ProcessDefinition,
    ProcessRef,
    Specification,
)

Environment = Mapping[str, Behaviour]


def flatten(
    spec: Specification, loc_sink: Dict[str, object] | None = None
) -> Tuple[Behaviour, Dict[str, Behaviour]]:
    """Elaborate ``spec`` into (root behaviour, flat environment).

    Inner definitions shadow outer ones; a shadowed or shadowing name is
    disambiguated with a ``#k`` suffix, while unambiguous names — the
    overwhelmingly common case — keep their original spelling, so derived
    protocol specifications show "the same [process] names" as the
    service specification, as the paper promises.  Raises
    :class:`UnboundProcessError` for dangling references.

    ``loc_sink``, when given, collects the source span of each
    definition under its qualified name (diagnostics metadata).
    """
    definitions: Dict[str, Behaviour] = {}
    used_names: Dict[str, int] = {}

    def unique_name(name: str) -> str:
        count = used_names.get(name, 0) + 1
        used_names[name] = count
        return name if count == 1 else f"{name}#{count}"

    def walk_block(block: DefBlock, scope: Mapping[str, str]) -> Behaviour:
        local_scope = dict(scope)
        assigned = []
        for definition in block.definitions:
            qualified = unique_name(definition.name)
            local_scope[definition.name] = qualified
            assigned.append(qualified)
            if loc_sink is not None:
                loc_sink[qualified] = definition.loc
            # Reserve the slot now so outer definitions precede the inner
            # ones they contain (textual order).
            definitions.setdefault(qualified, None)
        for qualified, definition in zip(assigned, block.definitions):
            definitions[qualified] = walk_block(definition.body, local_scope)
        return resolve_refs(block.behaviour, local_scope)

    root = walk_block(spec.root, {})
    return root, definitions


def flatten_spec(spec: Specification) -> Specification:
    """Rebuild ``spec`` with a single, flat WHERE block.

    The Protocol Generator pipeline runs on flattened specifications:
    attribute evaluation and derivation then never need scope chains, and
    the derived entities carry one definition per service process, in
    stable (definition-order) sequence.
    """
    def_locs: Dict[str, object] = {}
    root, definitions = flatten(spec, loc_sink=def_locs)
    flat_defs = tuple(
        ProcessDefinition(name, DefBlock(body), loc=def_locs.get(name))
        for name, body in definitions.items()
    )
    return Specification(DefBlock(root, flat_defs))


def resolve_refs(node: Behaviour, scope: Mapping[str, str]) -> Behaviour:
    """Rewrite every process reference to its qualified name."""
    if isinstance(node, ProcessRef):
        if node.name not in scope:
            raise UnboundProcessError(node.name)
        resolved = scope[node.name]
        if resolved == node.name:
            return node
        return ProcessRef(
            resolved, node.site, node.occurrence, nid=node.nid, loc=node.loc
        )
    children = node.children()
    if not children:
        return node
    new_children = tuple(resolve_refs(child, scope) for child in children)
    if new_children == children:
        return node
    return node.with_children(new_children)


def bind_occurrence(node: Behaviour, occurrence: OccurrencePath) -> Behaviour:
    """Bind the symbolic occurrence ``s`` of ``node`` to ``occurrence``.

    Messages that already carry a concrete occurrence and references that
    are already bound are left untouched; recursion does not descend into
    them differently — the rewrite is purely structural and stops nowhere
    (bodies of referenced processes are bound lazily, at their own
    instantiation).
    """
    if isinstance(node, ProcessRef):
        if node.occurrence is not None:
            return node
        return ProcessRef(
            node.name,
            node.site,
            node.child_occurrence(occurrence),
            nid=node.nid,
            loc=node.loc,
        )
    if isinstance(node, ActionPrefix):
        event = _bind_event(node.event, occurrence)
        continuation = bind_occurrence(node.continuation, occurrence)
        if event is node.event and continuation is node.continuation:
            return node
        return ActionPrefix(event, continuation, nid=node.nid, loc=node.loc)
    children = node.children()
    if not children:
        return node
    new_children = tuple(bind_occurrence(child, occurrence) for child in children)
    if all(new is old for new, old in zip(new_children, children)):
        return node
    return node.with_children(new_children)


def _bind_event(event: Event, occurrence: OccurrencePath) -> Event:
    if isinstance(event, SendAction):
        message = event.message.bind(occurrence)
        if message is event.message:
            return event
        return SendAction(event.dest, message, event.src)
    if isinstance(event, ReceiveAction):
        message = event.message.bind(occurrence)
        if message is event.message:
            return event
        return ReceiveAction(event.src, message, event.dest)
    return event
