"""Classic protocol-analysis checks.

The paper's introduction situates protocol *synthesis* against protocol
*analysis*: "analysis techniques have been developed to detect design
errors, such as deadlocks, unspecified receptions and non-executable
interactions, and to determine whether a given protocol satisfies a
given service specification."  This subpackage provides that analysis
tool-chest for any composed protocol system (derived or hand-written),
so the synthesis results can be audited with the very techniques the
paper says synthesis renders unnecessary — a useful cross-examination:
correctly derived protocols come back clean, the baselines do not.

Service satisfaction itself lives in :mod:`repro.verification`; the
*front-end* static analysis of service specifications (lint rules over
the AST with source-located diagnostics) lives in
:mod:`repro.analysis.lint`.
"""

from repro.analysis.lint import Diagnostic, LintResult, lint_spec, lint_text
from repro.analysis.protocol_checks import (
    AnalysisReport,
    BlockedReception,
    DeadlockReport,
    analyze_protocol,
    analyze_system,
    entity_automaton,
)

__all__ = [
    "AnalysisReport",
    "BlockedReception",
    "DeadlockReport",
    "Diagnostic",
    "LintResult",
    "analyze_protocol",
    "analyze_system",
    "entity_automaton",
    "lint_spec",
    "lint_text",
]
