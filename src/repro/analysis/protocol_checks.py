"""Reachability-based design-error detection for composed systems.

Three classic error classes (paper Section 1):

**Deadlocks**
    reachable global states with no enabled transition that are not the
    residue of successful termination.

**Unspecified receptions**
    reachable states in which a message sits at the head of a channel
    while its destination entity is *blocked* — every move the entity
    could make is a receive, and none of them matches anything the
    medium offers it.  (Stale messages that remain in flight at a
    terminal state are reported separately: they are the disable
    operator's documented residue, harmless under the selective
    discipline but a reception nobody specified.)

**Non-executable interactions**
    send/receive/service-primitive occurrences in the entity texts that
    no reachable execution ever performs.  On a complete exploration
    these are dead code; on a truncated one they are reported as "not
    seen within the explored region".

The analysis explores the composed system with messages visible
(``hide=False``) so transitions carry enough information to attribute
behaviour to entities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.lotos.events import (
    Event,
    Label,
    ReceiveAction,
    SendAction,
    ServicePrimitive,
)
from repro.lotos.lts import LTS, build_lts
from repro.lotos.syntax import ActionPrefix, Specification
from repro.runtime.system import DistributedSystem, SystemState, build_system


@dataclass
class DeadlockReport:
    """One genuine deadlock: the state and a shortest witness trace."""

    state_index: int
    witness: Tuple[Label, ...]
    pending_messages: Tuple[Tuple[int, int, object], ...]

    def __str__(self) -> str:
        path = " . ".join(str(label) for label in self.witness) or "<initial>"
        pending = ", ".join(
            f"{src}->{dest}:{message}" for src, dest, message in self.pending_messages
        )
        return f"deadlock after [{path}]" + (f" with pending {pending}" if pending else "")


@dataclass
class BlockedReception:
    """An entity wedged on receives none of which the medium can satisfy."""

    state_index: int
    place: int
    wanted: Tuple[ReceiveAction, ...]
    available: Tuple[Tuple[int, int, object], ...]

    def __str__(self) -> str:
        wants = ", ".join(str(event) for event in self.wanted)
        return f"place {self.place} blocked waiting for [{wants}]"


@dataclass
class AnalysisReport:
    """Aggregated findings over the explored state space."""

    states_explored: int = 0
    complete: bool = True
    deadlocks: List[DeadlockReport] = field(default_factory=list)
    blocked_receptions: List[BlockedReception] = field(default_factory=list)
    stale_at_termination: List[Tuple[int, int, object]] = field(default_factory=list)
    non_executable: List[Tuple[int, Event]] = field(default_factory=list)
    #: Reachable states caught in an internal cycle from which no
    #: observable action is reachable any more (livelock/divergence).
    divergences: List[int] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (
            self.deadlocks
            or self.blocked_receptions
            or self.stale_at_termination
            or self.non_executable
            or self.divergences
        )

    def render(self) -> str:
        lines = [
            f"states explored     : {self.states_explored}"
            + ("" if self.complete else " (truncated)"),
            f"deadlocks           : {len(self.deadlocks)}",
            f"blocked receptions  : {len(self.blocked_receptions)}",
            f"stale at termination: {len(self.stale_at_termination)}",
            f"non-executable      : {len(self.non_executable)}",
            f"divergent states    : {len(self.divergences)}",
        ]
        for deadlock in self.deadlocks[:5]:
            lines.append(f"  {deadlock}")
        for blocked in self.blocked_receptions[:5]:
            lines.append(f"  {blocked}")
        for place, event in self.non_executable[:10]:
            lines.append(f"  never executed at place {place}: {event}")
        return "\n".join(lines)


def _normalize(event: Event) -> Event:
    """Strip occurrence bindings so runtime labels match static text.

    Static entity texts carry symbolic occurrences; executed labels carry
    the concrete occurrence path of the instance that performed them.
    Interaction *identity* for dead-code purposes is (endpoint, node,
    kind).
    """
    from repro.lotos.events import SyncMessage

    if isinstance(event, SendAction):
        message = SyncMessage(event.message.node, None, event.message.kind)
        return SendAction(dest=event.dest, message=message)
    if isinstance(event, ReceiveAction):
        message = SyncMessage(event.message.node, None, event.message.kind)
        return ReceiveAction(src=event.src, message=message)
    return event


def _static_interactions(
    entities: Dict[int, Specification]
) -> Set[Tuple[int, Event]]:
    """(place, event) for every interaction occurrence in the texts."""
    found: Set[Tuple[int, Event]] = set()
    for place, spec in entities.items():
        for node in spec.walk_behaviours():
            if isinstance(node, ActionPrefix):
                event = node.event
                if isinstance(event, (SendAction, ReceiveAction, ServicePrimitive)):
                    found.add((place, _normalize(event)))
    return found


def _witness_paths(lts: LTS) -> Dict[int, Tuple[Label, ...]]:
    """Shortest label path from the initial state to every state."""
    paths: Dict[int, Tuple[Label, ...]] = {lts.initial: ()}
    frontier = [lts.initial]
    while frontier:
        next_frontier = []
        for state in frontier:
            for label, target in lts.edges[state]:
                if target not in paths:
                    paths[target] = paths[state] + (label,)
                    next_frontier.append(target)
        frontier = next_frontier
    return paths


def analyze_system(
    system: DistributedSystem,
    entities: Optional[Dict[int, Specification]] = None,
    max_states: int = 20_000,
) -> AnalysisReport:
    """Explore ``system`` exhaustively (bounded) and report design errors.

    ``system`` should be built with ``hide=False`` so interactions are
    attributable; :func:`analyze_protocol` does this for you.
    """
    lts = build_lts(system.initial, system, max_states=max_states, on_limit="truncate")
    report = AnalysisReport(states_explored=lts.num_states, complete=lts.complete)

    executed: Set[Tuple[int, Event]] = set()
    place_of_index = {index: place for index, place in enumerate(system.places)}

    for state_index, outgoing in enumerate(lts.edges):
        for label, _target in outgoing:
            if isinstance(label, SendAction) and label.src is not None:
                executed.add((label.src, _normalize(label.short())))
            elif isinstance(label, ReceiveAction) and label.dest is not None:
                executed.add((label.dest, _normalize(label.short())))
            elif isinstance(label, ServicePrimitive):
                executed.add((label.place, label))

    paths = _witness_paths(lts)

    for state_index in lts.deadlock_states():
        if state_index in lts.truncated_states:
            continue
        term: SystemState = lts.state_terms[state_index]
        if system.is_terminated(term):
            for pending in term.medium.iter_messages():
                report.stale_at_termination.append(pending)
            continue
        report.deadlocks.append(
            DeadlockReport(
                state_index,
                paths.get(state_index, ()),
                tuple(term.medium.iter_messages()),
            )
        )
        # attribute the deadlock: which entities are wedged on receives?
        for index, behaviour in enumerate(term.entities):
            place = place_of_index[index]
            moves = system._semantics[index].transitions(behaviour)
            wanted = tuple(
                label for label, _ in moves if isinstance(label, ReceiveAction)
            )
            if moves and wanted and len(wanted) == len(moves):
                report.blocked_receptions.append(
                    BlockedReception(
                        state_index,
                        place,
                        wanted,
                        tuple(term.medium.iter_messages()),
                    )
                )

    if entities is not None:
        static = _static_interactions(entities)
        for place, event in sorted(
            static - executed, key=lambda item: (item[0], str(item[1]))
        ):
            report.non_executable.append((place, event))

    if lts.complete:
        report.divergences = _divergent_states(lts)
    return report


def _divergent_states(lts: LTS) -> List[int]:
    """States from which no observable action is ever reachable again,
    yet some (internal) transition still exists — livelock.

    Computed backwards: mark states with an observable outgoing edge,
    propagate reachability-of-observable against the edge direction;
    unmarked states that still move are divergent.
    """
    can_observe = [False] * lts.num_states
    predecessors: Dict[int, List[int]] = {}
    worklist = []
    for state, outgoing in enumerate(lts.edges):
        for label, target in outgoing:
            predecessors.setdefault(target, []).append(state)
            if label.is_observable() and not can_observe[state]:
                can_observe[state] = True
                worklist.append(state)
    while worklist:
        state = worklist.pop()
        for predecessor in predecessors.get(state, ()):  # pragma: no branch
            if not can_observe[predecessor]:
                can_observe[predecessor] = True
                worklist.append(predecessor)
    return [
        state
        for state, outgoing in enumerate(lts.edges)
        if outgoing and not can_observe[state]
    ]


def analyze_protocol(
    entities: Dict[int, Specification],
    max_states: int = 20_000,
    discipline: str = "fifo",
    require_empty_at_exit: bool = False,
    use_occurrences: bool = True,
) -> AnalysisReport:
    """Build the composed system (messages visible) and analyze it."""
    system = build_system(
        entities,
        hide=False,
        discipline=discipline,
        require_empty_at_exit=require_empty_at_exit,
        use_occurrences=use_occurrences,
    )
    return analyze_system(system, entities=entities, max_states=max_states)


def entity_automaton(spec, max_states: int = 5_000):
    """The *interface automaton* of one derived entity, in isolation.

    Sends and receives are treated as plain labels (no medium): the
    result is the entity's local state machine — what an implementor
    would code up — with service primitives, message interactions and
    termination as its alphabet.  Returns a (possibly truncated)
    :class:`repro.lotos.lts.LTS`.
    """
    from repro.lotos.scope import bind_occurrence, flatten
    from repro.lotos.semantics import Semantics

    root, environment = flatten(spec)
    semantics = Semantics(environment, bind_occurrences=False)
    return build_lts(
        bind_occurrence(root, ()), semantics, max_states=max_states,
        on_limit="truncate",
    )
