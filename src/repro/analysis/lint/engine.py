"""Lint orchestration: parse, prepare, run every rule, collect.

The engine is the single entry point of the framework::

    from repro.analysis.lint import lint_text
    result = lint_text(open("service.lotos").read(), source="service.lotos")
    print(result.render_text())        # or result.render_json()

It never raises on bad input: lexer/parser failures and preparation
failures (unbound processes, attribute evaluation errors) are themselves
reported as diagnostics (rules ``E001``/``E002``), so callers get one
uniform stream of findings whatever the input looks like.

Besides the registered L-rules, the engine re-emits the classic
admissibility checks of :mod:`repro.core.restrictions` (R1, R2, R3 and
the grammar conditions) through the same :class:`Diagnostic` model, with
the source spans the checker now carries.  GUARD and APF violations are
skipped here — lint rules L007 and L011 report the same defects with
better locations and hints.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.analysis.lint import rules as _rules  # noqa: F401  (registers rules)
from repro.analysis.lint.diagnostics import (
    ERROR,
    Diagnostic,
    LintResult,
)
from repro.analysis.lint.registry import RULES, LintContext
from repro.core.attributes import AttributeTable, evaluate_attributes, number_nodes
from repro.core.restrictions import Violation, check_service
from repro.errors import LexerError, ParseError
from repro.lotos.location import Span
from repro.lotos.parser import parse
from repro.lotos.scope import flatten_spec
from repro.lotos.syntax import Choice, Specification

#: Restriction rules reported 1:1 through the diagnostic model.
_RESTRICTION_NAMES = {
    "R1": "restriction-r1",
    "R2": "restriction-r2",
    "R3": "restriction-r3",
    "GRAMMAR": "service-grammar",
}

#: Restriction rules superseded by a lint rule with better spans/hints.
_SUPERSEDED = {"GUARD", "APF"}


def lint_text(
    text: str, source: str = "<input>", mixed_choice: bool = False
) -> LintResult:
    """Lint raw specification text; never raises."""
    try:
        spec = parse(text)
    except (LexerError, ParseError) as exc:
        span = None
        if getattr(exc, "line", 0):
            span = Span(exc.line, exc.column)
        diagnostic = Diagnostic(
            rule="E001",
            name="parse-error",
            severity=ERROR,
            message=str(exc),
            span=span,
        )
        return LintResult(source, [diagnostic])
    return lint_spec(spec, source=source, mixed_choice=mixed_choice)


def lint_spec(
    spec: Specification, source: str = "<spec>", mixed_choice: bool = False
) -> LintResult:
    """Lint a parsed specification; never raises.

    With ``mixed_choice`` the specification is judged as a
    ``--mixed-choice`` derivation input: R1 violations that the arbiter
    protocol resolves (and the companion L009 warning) are not reported.
    """
    diagnostics: List[Diagnostic] = []
    prepared, attrs, failure = _prepare(spec)
    if failure is not None:
        diagnostics.append(failure)

    context = LintContext(
        spec=spec,
        source=source,
        prepared=prepared,
        attrs=attrs,
        mixed_choice=mixed_choice,
    )
    for registered in RULES.values():
        diagnostics.extend(registered.check(context))

    if prepared is not None and attrs is not None:
        violations = check_service(prepared, attrs)
        if mixed_choice:
            violations = [
                v
                for v in violations
                if not _arbiter_resolves(v, prepared, attrs)
            ]
        diagnostics.extend(_violation_diagnostics(violations))

    diagnostics.sort(key=Diagnostic.sort_key)
    return LintResult(source, diagnostics)


def _arbiter_resolves(
    violation: Violation, prepared: Specification, attrs: AttributeTable
) -> bool:
    """R1 violations fixed by the two-party arbiter (see core.mixed_choice)."""
    if violation.rule != "R1":
        return False
    for node in prepared.walk_behaviours():
        if isinstance(node, Choice) and node.nid == violation.node:
            sp_left = attrs.sp(node.left)
            sp_right = attrs.sp(node.right)
            return len(sp_left) == 1 and len(sp_right) == 1 and sp_left != sp_right
    return False


def _prepare(
    spec: Specification,
) -> Tuple[Optional[Specification], Optional[AttributeTable], Optional[Diagnostic]]:
    """Flatten + number + evaluate attributes, reporting failure as E002.

    Unlike the Protocol Generator's ``prepare``, disable operands are
    *not* rewritten to action prefix form: lint wants to look at (and
    point into) the text the author wrote, not the expanded tree.
    """
    try:
        prepared = number_nodes(flatten_spec(spec))
        attrs = evaluate_attributes(prepared)
    except Exception as exc:  # noqa: BLE001 - lint must never raise
        return (
            None,
            None,
            Diagnostic(
                rule="E002",
                name="analysis-error",
                severity=ERROR,
                message=f"static analysis could not run: {exc}",
            ),
        )
    return prepared, attrs, None


def _violation_diagnostics(violations: Iterable[Violation]) -> List[Diagnostic]:
    """Restriction violations rendered through the diagnostic model."""
    found = []
    for violation in violations:
        if violation.rule in _SUPERSEDED or violation.rule not in _RESTRICTION_NAMES:
            continue
        found.append(
            Diagnostic(
                rule=violation.rule,
                name=_RESTRICTION_NAMES[violation.rule],
                severity=ERROR,
                message=violation.message,
                span=violation.loc,
                hint="the Protocol Generator refuses this specification in "
                "strict mode",
            )
        )
    return found
