"""The shipped lint rules (L001-L011).

Each rule is a generator over :class:`Diagnostic` registered via
:func:`repro.analysis.lint.registry.rule`.  Rules L001-L008 and L011 are
purely syntactic and run on the specification as parsed (original
nesting, names and spans); L009 and L010 need the SP/EP/AP attribute
table and silently skip when preparation failed (the engine reports the
preparation failure separately).

Severities follow one principle: *errors* mean the Protocol Generator
will refuse or diverge, *warnings* mean the spec is legal but almost
certainly not what the author meant, *infos* flag constructions that
derive correctly but produce needlessly chatty protocols.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.lint.diagnostics import ERROR, INFO, WARNING, Diagnostic
from repro.analysis.lint.registry import LintContext, rule
from repro.core.restrictions import _initial_refs
from repro.lotos.expansion import is_action_prefix_form
from repro.lotos.syntax import (
    ActionPrefix,
    Behaviour,
    Choice,
    DefBlock,
    Disable,
    Empty,
    Enable,
    Exit,
    Hide,
    Parallel,
    ProcessDefinition,
    ProcessRef,
    Specification,
    Stop,
)


def _fmt_places(places) -> str:
    return "{" + ",".join(str(p) for p in sorted(places)) + "}"


# ----------------------------------------------------------------------
# scope analysis shared by L001 / L002 / L007
# ----------------------------------------------------------------------
class _ScopeInfo:
    """Resolved definition graph of the raw (nested) specification."""

    ROOT = 0  # graph node standing for the main behaviour expression

    def __init__(self, spec: Specification) -> None:
        self.defs: List[ProcessDefinition] = []
        self.shadows: List[Tuple[ProcessDefinition, ProcessDefinition]] = []
        #: graph-node id -> ids of definitions referenced from its behaviour
        self.edges: Dict[int, Set[int]] = {}
        #: same, restricted to references reachable before any action
        self.init_edges: Dict[int, Set[int]] = {}
        self._walk_block(spec.root, {}, self.ROOT)

    def _walk_block(
        self,
        block: DefBlock,
        scope: Dict[str, ProcessDefinition],
        owner: int,
    ) -> None:
        local = dict(scope)
        # All sibling definitions enter scope before any body is walked
        # (they may be mutually recursive); a name already in scope —
        # from an enclosing block or an earlier sibling — is shadowed.
        for definition in block.definitions:
            if definition.name in local:
                self.shadows.append((definition, local[definition.name]))
            local[definition.name] = definition
            self.defs.append(definition)

        def resolve(name: str) -> Optional[int]:
            definition = local.get(name)
            return id(definition) if definition is not None else None

        refs = {
            resolve(node.name)
            for node in block.behaviour.walk()
            if isinstance(node, ProcessRef)
        }
        self.edges[owner] = {r for r in refs if r is not None}
        initial = {resolve(name) for name in _initial_refs(block.behaviour)}
        self.init_edges[owner] = {r for r in initial if r is not None}
        for definition in block.definitions:
            self._walk_block(definition.body, local, id(definition))

    def reachable(self) -> Set[int]:
        """Definition ids reachable from the main behaviour expression."""
        seen: Set[int] = set()
        frontier = set(self.edges.get(self.ROOT, ()))
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier |= self.edges.get(current, set())
        return seen

    def unguarded(self) -> List[ProcessDefinition]:
        """Definitions that can re-invoke themselves without an action."""
        found = []
        for definition in self.defs:
            start = id(definition)
            seen: Set[int] = set()
            frontier = set(self.init_edges.get(start, ()))
            while frontier:
                current = frontier.pop()
                if current == start:
                    found.append(definition)
                    break
                if current in seen:
                    continue
                seen.add(current)
                frontier |= self.init_edges.get(current, set())
        return found


def _scopes(ctx: LintContext) -> _ScopeInfo:
    cached = getattr(ctx, "_scope_info", None)
    if cached is None:
        cached = _ScopeInfo(ctx.spec)
        ctx._scope_info = cached
    return cached


@rule(
    "L001",
    "unused-process",
    WARNING,
    "process definition never invoked from the main behaviour",
)
def check_unused_process(ctx: LintContext) -> Iterator[Diagnostic]:
    scopes = _scopes(ctx)
    reachable = scopes.reachable()
    for definition in scopes.defs:
        if id(definition) not in reachable:
            yield check_unused_process.diagnostic(
                f"process {definition.name!r} is defined but never invoked; "
                "the derivation ignores it",
                span=definition.loc,
                hint="delete the definition or invoke it from the behaviour",
            )


@rule(
    "L002",
    "shadowed-process",
    WARNING,
    "inner process definition shadows an outer definition of the same name",
)
def check_shadowed_process(ctx: LintContext) -> Iterator[Diagnostic]:
    scopes = _scopes(ctx)
    for inner, outer in scopes.shadows:
        outer_at = f" (defined at {outer.loc})" if outer.loc else ""
        yield check_shadowed_process.diagnostic(
            f"process {inner.name!r} shadows another definition of the "
            f"same name{outer_at}",
            span=inner.loc,
            hint="rename one of the definitions; shadowing resolves "
            "innermost-first and is easy to misread",
        )


@rule(
    "L007",
    "unguarded-recursion",
    ERROR,
    "process can re-invoke itself before offering any action",
)
def check_unguarded_recursion(ctx: LintContext) -> Iterator[Diagnostic]:
    scopes = _scopes(ctx)
    for definition in scopes.unguarded():
        yield check_unguarded_recursion.diagnostic(
            f"process {definition.name!r} can invoke itself without first "
            "offering an action; the operational semantics diverge",
            span=definition.loc,
            hint="guard the recursive invocation behind an event prefix "
            "(e.g. 'a1; " + definition.name + "')",
        )


# ----------------------------------------------------------------------
# control-flow rules
# ----------------------------------------------------------------------
def _may_exit(
    node: Behaviour,
    env: Dict[str, List[Behaviour]],
    visiting: Optional[Set[str]] = None,
) -> bool:
    """Whether ``node`` can ever terminate successfully (offer delta).

    Structural over-approximation: unresolved process references count as
    exiting (unknown code is given the benefit of the doubt), recursion
    that must re-enter itself to exit does not.
    """
    if visiting is None:
        visiting = set()
    if isinstance(node, Exit):
        return True
    if isinstance(node, (Stop, Empty)):
        return False
    if isinstance(node, ActionPrefix):
        return _may_exit(node.continuation, env, visiting)
    if isinstance(node, (Choice, Disable)):
        return _may_exit(node.left, env, visiting) or _may_exit(
            node.right, env, visiting
        )
    if isinstance(node, (Parallel, Enable)):
        return _may_exit(node.left, env, visiting) and _may_exit(
            node.right, env, visiting
        )
    if isinstance(node, Hide):
        return _may_exit(node.body, env, visiting)
    if isinstance(node, ProcessRef):
        if node.name in visiting:
            return False
        bodies = env.get(node.name)
        if not bodies:
            return True
        visiting.add(node.name)
        try:
            return any(_may_exit(body, env, visiting) for body in bodies)
        finally:
            visiting.discard(node.name)
    return True


@rule(
    "L003",
    "unreachable-code",
    WARNING,
    "right operand of '>>' is unreachable because the left never terminates",
)
def check_unreachable_code(ctx: LintContext) -> Iterator[Diagnostic]:
    env = ctx._bodies_by_name()
    for node in ctx.spec.walk_behaviours():
        if isinstance(node, Enable) and not _may_exit(node.left, env):
            yield check_unreachable_code.diagnostic(
                "the behaviour after '>>' is unreachable: the left operand "
                "can never terminate successfully (no 'exit' is reachable)",
                span=node.right.loc or node.loc,
                hint="replace a trailing 'stop' with 'exit', or delete the "
                "'>>' continuation",
            )


@rule(
    "L008",
    "inert-operand",
    WARNING,
    "bare 'stop'/'empty' operand of a choice, parallel or disable",
)
def check_inert_operand(ctx: LintContext) -> Iterator[Diagnostic]:
    for node in ctx.spec.walk_behaviours():
        if isinstance(node, Choice):
            for side, operand in (("left", node.left), ("right", node.right)):
                if isinstance(operand, (Stop, Empty)):
                    yield check_inert_operand.diagnostic(
                        f"the {side} alternative of '[]' is inert "
                        f"('{type(operand).__name__.lower()}' offers no "
                        "event, so this branch can never be chosen)",
                        span=operand.loc or node.loc,
                        hint="delete the inert alternative",
                    )
        elif isinstance(node, Parallel):
            for side, operand in (("left", node.left), ("right", node.right)):
                if isinstance(operand, (Stop, Empty)):
                    yield check_inert_operand.diagnostic(
                        f"the {side} operand of a parallel composition is "
                        f"'{type(operand).__name__.lower()}'; it contributes "
                        "no events and blocks successful termination of the "
                        "whole composition",
                        span=operand.loc or node.loc,
                        hint="drop the operand (or use 'exit' if only "
                        "termination is intended)",
                    )
        elif isinstance(node, Disable):
            if isinstance(node.right, (Stop, Empty)):
                yield check_inert_operand.diagnostic(
                    "the interrupt operand of '[>' is inert; the disabling "
                    "can never trigger",
                    span=node.right.loc or node.loc,
                    hint="delete the '[>' operator",
                )


# ----------------------------------------------------------------------
# gate/synchronization-set rules
# ----------------------------------------------------------------------
@rule(
    "L004",
    "sync-unused-gate",
    WARNING,
    "event in a '|[...]|' synchronization set that an operand never offers",
)
def check_sync_unused_gate(ctx: LintContext) -> Iterator[Diagnostic]:
    for node in ctx.spec.walk_behaviours():
        if not isinstance(node, Parallel) or not node.sync:
            continue
        left = ctx.offered_events(node.left)
        right = ctx.offered_events(node.right)
        for event in sorted(node.sync, key=str):
            missing = [
                side
                for side, offered in (("left", left), ("right", right))
                if event not in offered
            ]
            if not missing:
                continue
            if len(missing) == 2:
                detail = "neither operand offers it"
            else:
                detail = f"the {missing[0]} operand never offers it"
            yield check_sync_unused_gate.diagnostic(
                f"synchronization event '{event}' can never occur: {detail}, "
                "so the rendezvous blocks forever",
                span=node.loc,
                hint=f"remove '{event}' from the synchronization set or add "
                "the event to the missing operand",
            )


@rule(
    "L005",
    "sync-missing-gate",
    INFO,
    "event offered by both operands of '|[...]|' but absent from its set",
)
def check_sync_missing_gate(ctx: LintContext) -> Iterator[Diagnostic]:
    for node in ctx.spec.walk_behaviours():
        if not isinstance(node, Parallel) or not node.sync:
            continue
        common = ctx.offered_events(node.left) & ctx.offered_events(node.right)
        for event in sorted(common - node.sync, key=str):
            yield check_sync_missing_gate.diagnostic(
                f"event '{event}' is offered by both operands but is not in "
                "the synchronization set; its occurrences interleave instead "
                "of synchronizing",
                span=node.loc,
                hint=f"add '{event}' to the '|[...]|' set if a rendezvous "
                "was intended",
            )


@rule(
    "L006",
    "hide-unused-gate",
    WARNING,
    "hidden gate that the hidden behaviour never offers",
)
def check_hide_unused_gate(ctx: LintContext) -> Iterator[Diagnostic]:
    for node in ctx.spec.walk_behaviours():
        if not isinstance(node, Hide) or not node.gates:
            continue
        offered = ctx.offered_events(node.body)
        for event in sorted(node.gates, key=str):
            if event not in offered:
                yield check_hide_unused_gate.diagnostic(
                    f"hidden event '{event}' never occurs in the hidden "
                    "behaviour",
                    span=node.loc,
                    hint=f"remove '{event}' from the hide list",
                )


# ----------------------------------------------------------------------
# derivation-quality rules (need the attribute table)
# ----------------------------------------------------------------------
@rule(
    "L009",
    "mixed-choice",
    WARNING,
    "choice whose alternatives start at two different places",
)
def check_mixed_choice(ctx: LintContext) -> Iterator[Diagnostic]:
    if ctx.prepared is None or ctx.attrs is None or ctx.mixed_choice:
        return
    for node in ctx.prepared.walk_behaviours():
        if not isinstance(node, Choice):
            continue
        sp_left = ctx.attrs.sp(node.left)
        sp_right = ctx.attrs.sp(node.right)
        if len(sp_left) == 1 and len(sp_right) == 1 and sp_left != sp_right:
            (pa,) = sp_left
            (pb,) = sp_right
            yield check_mixed_choice.diagnostic(
                f"the alternatives of this choice start at different places "
                f"({pa} and {pb}); the basic algorithm cannot disable the "
                "losing place instantly across the medium (restriction R1)",
                span=node.loc,
                hint="derive with --mixed-choice to insert the two-party "
                "arbiter protocol, or restructure so both alternatives "
                "start at one place",
            )


@rule(
    "L010",
    "needless-sync",
    INFO,
    "single-place (or sub-span) construct whose derivation broadcasts "
    "to all places",
)
def check_needless_sync(ctx: LintContext) -> Iterator[Diagnostic]:
    if ctx.prepared is None or ctx.attrs is None:
        return
    all_places = ctx.attrs.all_places
    if len(all_places) < 2:
        return
    for node in ctx.prepared.walk_behaviours():
        if node.nid is None or node.nid not in ctx.attrs.by_node:
            continue
        ap = ctx.attrs.by_node[node.nid].ap
        if not ap or not ap < all_places:
            continue
        if isinstance(node, Disable):
            yield check_needless_sync.diagnostic(
                f"this '[>' involves only place(s) {_fmt_places(ap)}, but "
                "its termination and interrupt synchronization broadcasts "
                f"messages to all places {_fmt_places(all_places)}",
                span=node.loc,
                hint="keep disables as wide as the places they govern, or "
                "accept the extra synchronization messages",
            )
        elif isinstance(node, ProcessRef):
            shown = node.name.partition("#")[0]  # drop flattening suffix
            yield check_needless_sync.diagnostic(
                f"invoking process {shown!r} (places {_fmt_places(ap)}) "
                "is announced to all places "
                f"{_fmt_places(all_places)} by the derivation",
                span=node.loc,
                hint="inline single-place processes, or accept the "
                "instantiation broadcast",
            )


# ----------------------------------------------------------------------
# friendlier pre-checks for generator refusals
# ----------------------------------------------------------------------
@rule(
    "L011",
    "disable-not-action-prefix",
    WARNING,
    "'[>' operand not written in action prefix form",
)
def check_disable_apf(ctx: LintContext) -> Iterator[Diagnostic]:
    for node in ctx.spec.walk_behaviours():
        if isinstance(node, Disable) and not is_action_prefix_form(node.right):
            yield check_disable_apf.diagnostic(
                "the interrupt operand of '[>' is not in action prefix form "
                "(a choice of 'event; ...' branches); the generator expands "
                "it automatically, which can reshape the derived text",
                span=node.right.loc or node.loc,
                hint="write the operand as 'a; ...' or '(a; ...) [] (b; ...)' "
                "for a derivation that mirrors your source",
            )
