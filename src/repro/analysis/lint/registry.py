"""Rule registry and analysis context of the lint framework.

A lint rule is a plain generator function decorated with :func:`rule`;
the decorator records its stable id, default severity and documentation
in the global :data:`RULES` table.  Rules receive a :class:`LintContext`
and yield :class:`~repro.analysis.lint.diagnostics.Diagnostic` objects —
the engine assembles, sorts and renders them.

Rule ids are stable across releases (``L001`` stays ``unused-process``
forever); retired rules leave holes rather than renumbering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterator, List, Optional

from repro.analysis.lint.diagnostics import SEVERITIES, Diagnostic
from repro.core.attributes import AttributeTable
from repro.lotos.events import ServicePrimitive
from repro.lotos.location import Span
from repro.lotos.syntax import (
    ActionPrefix,
    Behaviour,
    DefBlock,
    ProcessRef,
    Specification,
)

RuleCheck = Callable[["LintContext"], Iterator[Diagnostic]]


@dataclass(frozen=True)
class LintRule:
    """One registered rule: identity, default severity, documentation."""

    id: str
    name: str
    severity: str
    summary: str
    check: RuleCheck

    def diagnostic(
        self,
        message: str,
        span: Optional[Span] = None,
        hint: Optional[str] = None,
        severity: Optional[str] = None,
    ) -> Diagnostic:
        return Diagnostic(
            rule=self.id,
            name=self.name,
            severity=severity or self.severity,
            message=message,
            span=span,
            hint=hint,
        )


#: The global registry, keyed by rule id, in registration order.
RULES: Dict[str, LintRule] = {}


def rule(rule_id: str, name: str, severity: str, summary: str):
    """Register a check function as lint rule ``rule_id``."""
    if severity not in SEVERITIES:
        raise ValueError(f"unknown severity {severity!r}")

    def decorate(check: RuleCheck) -> LintRule:
        if rule_id in RULES:
            raise ValueError(f"duplicate lint rule id {rule_id!r}")
        registered = LintRule(rule_id, name, severity, summary, check)
        RULES[rule_id] = registered
        return registered

    return decorate


@dataclass
class LintContext:
    """Everything a rule may inspect.

    ``spec``
        the specification exactly as parsed (nested WHERE blocks,
        original process names, full source spans);
    ``prepared`` / ``attrs``
        the flattened, numbered tree and its SP/EP/AP attribute table —
        ``None`` when preparation failed (e.g. unbound process names);
        rules that need attributes must no-op in that case, the engine
        reports the preparation failure itself.
    """

    spec: Specification
    source: str = "<input>"
    prepared: Optional[Specification] = None
    attrs: Optional[AttributeTable] = None
    #: lint for a ``--mixed-choice`` derivation: two-starter choices are
    #: handled by the arbiter protocol instead of being defects.
    mixed_choice: bool = False
    _offered_cache: Dict[int, FrozenSet[ServicePrimitive]] = field(
        default_factory=dict
    )
    _bodies: Optional[Dict[str, List[Behaviour]]] = field(default=None)

    # ------------------------------------------------------------------
    # shared traversal helpers
    # ------------------------------------------------------------------
    def blocks(self) -> Iterator[DefBlock]:
        """Every definition block of the raw spec, outermost first."""

        def walk(block: DefBlock) -> Iterator[DefBlock]:
            yield block
            for definition in block.definitions:
                yield from walk(definition.body)

        yield from walk(self.spec.root)

    def offered_events(self, node: Behaviour) -> FrozenSet[ServicePrimitive]:
        """Service primitives ``node`` may ever offer, references resolved.

        References are resolved by raw name against *every* definition of
        that name in the specification (a superset of lexical scoping
        under shadowing), so "event e is never offered below this node"
        conclusions stay sound.
        """
        key = id(node)
        cached = self._offered_cache.get(key)
        if cached is not None:
            return cached

        env = self._bodies_by_name()
        seen: set = set()
        found: set = set()

        def collect(sub: Behaviour) -> None:
            for item in sub.walk():
                if isinstance(item, ActionPrefix) and isinstance(
                    item.event, ServicePrimitive
                ):
                    found.add(item.event)
                elif isinstance(item, ProcessRef) and item.name not in seen:
                    seen.add(item.name)
                    for body in env.get(item.name, ()):
                        collect(body)

        collect(node)
        result = frozenset(found)
        self._offered_cache[key] = result
        return result

    def _bodies_by_name(self) -> Dict[str, List[Behaviour]]:
        """Raw process name -> bodies of every definition of that name."""
        if self._bodies is None:
            bodies: Dict[str, List[Behaviour]] = {}
            for block in self.blocks():
                for definition in block.definitions:
                    bodies.setdefault(definition.name, []).append(
                        definition.body.behaviour
                    )
            self._bodies = bodies
        return self._bodies
