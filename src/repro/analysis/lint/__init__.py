"""Source-located static analysis for service specifications.

The paper's Protocol Generator "checks the syntax of the given service
specification and its conformance to the restrictions R1, R2 and R3";
this package is that front end grown into a proper static-analysis
framework: a registry of lint rules over the LOTOS AST, a unified
:class:`Diagnostic` model (stable rule id, severity, message, source
span, fix hint), and renderers for text and machine-readable JSON.
Besides the R1-R3/grammar admissibility errors, the rules catch spec
defects that are *legal* but produce bad protocols — dead process
definitions, unguarded recursion, rendezvous that can never fire,
constructs whose derivation broadcasts needless synchronization
messages.

Entry points: :func:`lint_text` / :func:`lint_spec`; the ``repro lint``
CLI subcommand wraps them.  See ``docs/lint.md`` for the rule catalogue
and the JSON schema.
"""

from repro.analysis.lint.diagnostics import (
    ERROR,
    INFO,
    JSON_SCHEMA_VERSION,
    SEVERITIES,
    WARNING,
    Diagnostic,
    LintResult,
)
from repro.analysis.lint.engine import lint_spec, lint_text
from repro.analysis.lint.registry import RULES, LintContext, LintRule

__all__ = [
    "Diagnostic",
    "LintResult",
    "LintContext",
    "LintRule",
    "RULES",
    "ERROR",
    "WARNING",
    "INFO",
    "SEVERITIES",
    "JSON_SCHEMA_VERSION",
    "lint_spec",
    "lint_text",
]
