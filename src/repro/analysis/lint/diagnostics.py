"""The unified diagnostic model of the lint framework.

Every front-end finding — lint rules, restriction violations, parse
failures — is reported as a :class:`Diagnostic`: a stable rule id, a
severity, a human message, an optional source :class:`Span` and an
optional fix hint.  A :class:`LintResult` bundles the diagnostics of one
source together with the renderers the CLI uses (GCC-style text and a
versioned JSON document).

The JSON schema (``--format json``, documented in ``docs/lint.md``)::

    {
      "version": 1,
      "source": "<path or '<stdin>'>",
      "summary": {"errors": 0, "warnings": 2, "infos": 1},
      "diagnostics": [
        {
          "rule": "L001",
          "name": "unused-process",
          "severity": "warning",
          "message": "...",
          "line": 3, "column": 8,
          "end_line": 3, "end_column": 9,
          "hint": "..." | null
        }
      ]
    }

``line``/``column`` are 1-based and ``null`` when the finding has no
source anchor (e.g. it concerns the specification as a whole).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lotos.location import Span

#: Diagnostic severities, most severe first.
ERROR = "error"
WARNING = "warning"
INFO = "info"

SEVERITIES = (ERROR, WARNING, INFO)

#: Version of the JSON output schema; bump on incompatible change.
JSON_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static-analysis front end."""

    rule: str
    name: str
    severity: str
    message: str
    span: Optional[Span] = None
    hint: Optional[str] = None

    def format(self, source: str = "<input>") -> str:
        """GCC-style one-liner: ``source:line:col: severity: message [rule]``."""
        where = f"{source}:{self.span}" if self.span else source
        text = f"{where}: {self.severity}: {self.message} [{self.rule}]"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "name": self.name,
            "severity": self.severity,
            "message": self.message,
            "line": self.span.line if self.span else None,
            "column": self.span.column if self.span else None,
            "end_line": self.span.end_line if self.span else None,
            "end_column": self.span.end_column if self.span else None,
            "hint": self.hint,
        }

    def sort_key(self) -> Tuple:
        span = self.span
        return (
            span is None,
            span.line if span else 0,
            span.column if span else 0,
            self.rule,
            self.message,
        )


@dataclass
class LintResult:
    """All diagnostics of one linted source, ready for rendering."""

    source: str
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def by_severity(self, severity: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(WARNING)

    @property
    def ok(self) -> bool:
        """No error-severity findings (warnings and infos are allowed)."""
        return not self.errors

    def summary(self) -> Dict[str, int]:
        return {
            "errors": len(self.by_severity(ERROR)),
            "warnings": len(self.by_severity(WARNING)),
            "infos": len(self.by_severity(INFO)),
        }

    def render_text(self) -> str:
        """The text report: one block per diagnostic plus a tally line."""
        lines = [d.format(self.source) for d in self.diagnostics]
        counts = self.summary()
        lines.append(
            f"{self.source}: {counts['errors']} error(s), "
            f"{counts['warnings']} warning(s), {counts['infos']} info(s)"
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": JSON_SCHEMA_VERSION,
            "source": self.source,
            "summary": self.summary(),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False)
