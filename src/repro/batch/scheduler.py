"""The worker-pool scheduler behind ``repro batch``.

One corpus run fans out one task per (spec, options) pair across a
``ProcessPoolExecutor`` — or, for specifications whose canonical text
is at least ``split_bytes`` long, one task per place, since each
``T_p`` projection is independent (the paper applies ``T_p`` to the
root once per place).  Results that the cache has already seen are
served from disk without touching the pool at all.

Failure containment is the design center:

* one failing specification records a traceback row and the corpus run
  continues (CI wants the full failure surface, not the first crash);
* a per-task ``timeout`` turns a runaway derivation into a failure row
  instead of a hung run;
* ``workers=0`` — or a pool that dies mid-run (``BrokenProcessPool``)
  — degrades gracefully to serial in-process execution, flagged as
  ``degraded`` in the summary.

The run's machine-readable outcome is one ``repro.obs.batch/v1``
summary document (see :func:`repro.obs.schema.validate_batch`), with
per-spec status, timings and cache verdicts, plus the metrics snapshot
carrying the ``batch.cache.*`` and ``batch.*`` counters.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.batch.cache import EntityCache, canonicalize_spec_text
from repro.batch.manifest import SpecCase
from repro.batch.workers import (
    error_document,
    make_executor,
    run_task,
    stats_document,
    timeout_document,
)
from repro.chaos import get_chaos
from repro.core.generator import (
    derive_place_task,
    derive_task,
    list_places_task,
)
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.schema import BATCH_SCHEMA
from repro.obs.spans import TRACE_SCHEMA

#: Specifications whose canonical text reaches this size fan out one
#: task per place instead of one task per spec.
DEFAULT_SPLIT_BYTES = 4096


@dataclass
class BatchOutcome:
    """Everything one corpus run produced.

    ``summary`` is the ``repro.obs.batch/v1`` document; ``entities``
    maps spec name to ``{place: unparse'd entity text}`` for every
    specification that succeeded (from a worker or from the cache).
    """

    summary: Dict[str, Any]
    entities: Dict[str, Dict[int, str]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.summary["totals"]["failed"] == 0


@dataclass
class _Pending:
    """Parent-side state of one not-yet-finished specification."""

    case: SpecCase
    key: Optional[str]
    started: float
    tasks: int = 0
    places: Optional[List[int]] = None
    parts: Dict[int, str] = field(default_factory=dict)
    sync_fragments: int = 0
    violations: int = 0


def run_batch(
    corpus: Sequence[SpecCase],
    workers: int = 0,
    timeout: Optional[float] = None,
    cache: Optional[EntityCache] = None,
    split_bytes: int = DEFAULT_SPLIT_BYTES,
    executor_factory: Optional[Callable[[int], Any]] = None,
) -> BatchOutcome:
    """Derive every specification of ``corpus``; never abort on one.

    ``workers=0`` runs serially in-process (no pool, no timeout
    enforcement); ``workers>=1`` uses a ``ProcessPoolExecutor`` of that
    size.  ``timeout`` bounds each worker task's wall-clock, measured
    from submission.  ``executor_factory`` exists for tests that need
    to inject a broken or fake pool.
    """
    if workers < 0:
        raise ValueError("workers must be >= 0")
    registry = MetricsRegistry()
    started = time.perf_counter()
    rows: List[Dict[str, Any]] = []
    entities: Dict[str, Dict[int, str]] = {}
    degraded = False
    with use_registry(registry):
        registry.gauge("batch.workers", help="requested pool size").set(workers)
        misses: List[Tuple[SpecCase, Optional[str]]] = []
        for case in corpus:
            key = cache.key(case.text, case.options) if cache is not None else None
            entry = cache.get(key) if cache is not None else None
            if entry is not None:
                entities[case.name] = {
                    int(place): text
                    for place, text in entry["entities"].items()
                }
                rows.append(
                    _row(case.name, "ok", "hit", entry["places"], 0, 0.0)
                )
            else:
                misses.append((case, key))

        if misses:
            if workers == 0:
                _run_serial(misses, cache, rows, entities)
            else:
                try:
                    degraded = _run_pool(
                        misses,
                        workers,
                        timeout,
                        split_bytes,
                        cache,
                        rows,
                        entities,
                        executor_factory,
                    )
                except BrokenProcessPool:
                    # The pool died before any result flowed: rerun the
                    # whole miss list serially.
                    degraded = True
                    done = {row["name"] for row in rows}
                    _run_serial(
                        [m for m in misses if m[0].name not in done],
                        cache,
                        rows,
                        entities,
                    )

        order = {case.name: index for index, case in enumerate(corpus)}
        rows.sort(key=lambda row: order[row["name"]])
        for row in rows:
            registry.counter(
                "batch.specs", help="corpus members by outcome"
            ).inc(status=row["status"])
        summary = _summary(
            rows, workers, degraded, cache, registry,
            time.perf_counter() - started,
        )
    return BatchOutcome(summary=summary, entities=entities)


def _envelope_error(envelope: Dict[str, Any]) -> Dict[str, Any]:
    """The row error document of a failed ``run_task`` envelope.

    The envelope's ``injected`` tag (a chaos-caused failure, not an
    organic one) is folded into the error document so the distinction
    survives into the batch summary.
    """
    error = dict(envelope.get("error") or {})
    if envelope.get("injected"):
        error["injected"] = True
    return error


# ----------------------------------------------------------------------
# Serial execution (workers=0, and the degradation path).
# ----------------------------------------------------------------------
def _run_serial(
    misses: Sequence[Tuple[SpecCase, Optional[str]]],
    cache: Optional[EntityCache],
    rows: List[Dict[str, Any]],
    entities: Dict[str, Dict[int, str]],
) -> None:
    chaos = get_chaos()
    for case, key in misses:
        started = time.perf_counter()
        directive = None
        if chaos is not None:
            directive = chaos.decide("worker.task", op="derive",
                                     spec=case.name)
        try:
            if directive is not None:
                envelope = run_task(
                    "derive", case.text, dict(case.options), directive
                )
                if not envelope.get("ok"):
                    rows.append(
                        _row(
                            case.name, "failed",
                            "miss" if cache is not None else "off",
                            [], 1, time.perf_counter() - started,
                            _envelope_error(envelope),
                        )
                    )
                    continue
                payload = envelope["result"]
            else:
                payload = derive_task(case.text, dict(case.options))
        except Exception as exc:
            rows.append(
                _row(
                    case.name, "failed", "miss" if cache is not None else "off",
                    [], 1, time.perf_counter() - started, error_document(exc),
                )
            )
            continue
        _finish(case, key, payload, cache, rows, entities,
                tasks=1, started=started)


# ----------------------------------------------------------------------
# Pool execution.
# ----------------------------------------------------------------------
def _run_pool(
    misses: Sequence[Tuple[SpecCase, Optional[str]]],
    workers: int,
    timeout: Optional[float],
    split_bytes: int,
    cache: Optional[EntityCache],
    rows: List[Dict[str, Any]],
    entities: Dict[str, Dict[int, str]],
    executor_factory: Optional[Callable[[int], Any]],
) -> bool:
    """Run the cache misses on a pool; returns whether it degraded."""
    degraded = False
    pool = make_executor(workers, executor_factory)
    try:
        pending: Dict[Future, Tuple[_Pending, str, Optional[int]]] = {}
        states: Dict[str, _Pending] = {}
        chaos = get_chaos()
        for case, key in misses:
            state = _Pending(case=case, key=key, started=time.perf_counter())
            states[case.name] = state
            split = len(canonicalize_spec_text(case.text)) >= split_bytes
            options = dict(case.options)
            directive = None
            if chaos is not None:
                directive = chaos.decide("worker.task", op="derive",
                                         spec=case.name)
            if directive is not None:
                # Ship the fault with the task, routed through the
                # containment wrapper so the envelope comes back
                # injected-tagged (process kills still really die).
                future = pool.submit(
                    run_task, "derive", case.text, options, directive
                )
                pending[future] = (state, "contained", None)
            elif split:
                future = pool.submit(list_places_task, case.text, options)
                pending[future] = (state, "plan", None)
            else:
                future = pool.submit(derive_task, case.text, options)
                pending[future] = (state, "whole", None)
            state.tasks += 1

        while pending:
            wait_for = _next_deadline(pending, timeout)
            done, _ = wait(pending, timeout=wait_for,
                           return_when=FIRST_COMPLETED)
            if not done:
                _expire(pending, states, timeout, cache, rows)
                continue
            for future in done:
                state, kind, place = pending.pop(future)
                if state.case.name not in states:
                    continue  # already failed (e.g. a sibling timed out)
                try:
                    payload = future.result()
                except BrokenProcessPool:
                    raise
                except Exception as exc:
                    _fail(state, states, cache, rows, error_document(exc))
                    continue
                if kind == "contained":
                    if payload.get("ok"):
                        _finish(
                            state.case, state.key, payload["result"],
                            cache, rows, entities,
                            tasks=state.tasks, started=state.started,
                        )
                        del states[state.case.name]
                    else:
                        _fail(state, states, cache, rows,
                              _envelope_error(payload))
                elif kind == "plan":
                    state.places = payload["places"]
                    state.violations = payload["violations"]
                    for entity_place in payload["places"]:
                        child = pool.submit(
                            derive_place_task, state.case.text,
                            entity_place, dict(state.case.options),
                        )
                        pending[child] = (state, "place", entity_place)
                        state.tasks += 1
                elif kind == "place":
                    state.parts[payload["place"]] = payload["text"]
                    state.sync_fragments += payload["sync_fragments"]
                    if set(state.parts) == set(state.places or []):
                        _finish(
                            state.case, state.key, _assemble(state),
                            cache, rows, entities,
                            tasks=state.tasks, started=state.started,
                        )
                        del states[state.case.name]
                else:  # whole-spec task
                    _finish(
                        state.case, state.key, payload, cache, rows,
                        entities, tasks=state.tasks, started=state.started,
                    )
                    del states[state.case.name]
            _expire(pending, states, timeout, cache, rows)
    finally:
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            degraded = True
    return degraded


def _next_deadline(
    pending: Dict[Future, Tuple[_Pending, str, Optional[int]]],
    timeout: Optional[float],
) -> Optional[float]:
    if timeout is None:
        return None
    now = time.perf_counter()
    soonest = min(state.started + timeout for state, _, _ in pending.values())
    return max(soonest - now, 0.0)


def _expire(
    pending: Dict[Future, Tuple[_Pending, str, Optional[int]]],
    states: Dict[str, _Pending],
    timeout: Optional[float],
    cache: Optional[EntityCache],
    rows: List[Dict[str, Any]],
) -> None:
    """Fail every spec whose wall-clock budget ran out; drop its tasks."""
    if timeout is None:
        return
    now = time.perf_counter()
    for future, (state, _, _) in list(pending.items()):
        if state.case.name not in states:
            future.cancel()
            del pending[future]
        elif now - state.started > timeout:
            future.cancel()
            del pending[future]
            _fail(state, states, cache, rows, timeout_document(timeout))


def _fail(
    state: _Pending,
    states: Dict[str, _Pending],
    cache: Optional[EntityCache],
    rows: List[Dict[str, Any]],
    error: Dict[str, str],
) -> None:
    if state.case.name not in states:
        return
    del states[state.case.name]
    rows.append(
        _row(
            state.case.name, "failed", "miss" if cache is not None else "off",
            [], state.tasks, time.perf_counter() - state.started, error,
        )
    )


def _assemble(state: _Pending) -> Dict[str, Any]:
    """Fold per-place task payloads into the whole-spec payload shape."""
    return {
        "places": sorted(state.parts),
        "entities": {
            str(place): state.parts[place] for place in sorted(state.parts)
        },
        "violations": state.violations,
        "sync_fragments": state.sync_fragments,
        "trace": {"schema": TRACE_SCHEMA, "enabled": False, "spans": []},
        "metrics": {"schema": "repro.obs.metrics/v1", "metrics": []},
    }


# ----------------------------------------------------------------------
# Shared row/summary assembly.
# ----------------------------------------------------------------------
def _finish(
    case: SpecCase,
    key: Optional[str],
    payload: Dict[str, Any],
    cache: Optional[EntityCache],
    rows: List[Dict[str, Any]],
    entities: Dict[str, Dict[int, str]],
    tasks: int,
    started: float,
) -> None:
    from repro.obs.metrics import get_registry

    entities[case.name] = {
        int(place): text for place, text in payload["entities"].items()
    }
    get_registry().counter(
        "batch.derivations", help="specs actually derived (cache misses)"
    ).inc()
    get_registry().counter(
        "batch.tasks", help="worker tasks executed"
    ).inc(tasks)
    if cache is not None and key is not None:
        cache.put(
            key, case.name, dict(case.options), payload["entities"],
            stats=stats_document(case.name, payload),
        )
    rows.append(
        _row(
            case.name, "ok", "miss" if cache is not None else "off",
            payload["places"], tasks, time.perf_counter() - started,
        )
    )


def _row(
    name: str,
    status: str,
    cache_verdict: str,
    places: Sequence[int],
    tasks: int,
    duration_s: float,
    error: Optional[Dict[str, str]] = None,
) -> Dict[str, Any]:
    return {
        "name": name,
        "status": status,
        "cache": cache_verdict,
        "places": [int(place) for place in places],
        "tasks": tasks,
        "duration_s": round(duration_s, 6),
        "error": error,
    }


def _summary(
    rows: List[Dict[str, Any]],
    workers: int,
    degraded: bool,
    cache: Optional[EntityCache],
    registry: MetricsRegistry,
    duration_s: float,
) -> Dict[str, Any]:
    hits = int(registry.counter("batch.cache.hits").value())
    misses = int(registry.counter("batch.cache.misses").value())
    evictions = int(registry.counter("batch.cache.evictions").value())
    cache_section = None
    if cache is not None:
        cache_section = {
            "dir": str(cache.root),
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "entries": len(cache),
        }
    return {
        "schema": BATCH_SCHEMA,
        "workers": workers,
        "degraded": degraded,
        "specs": rows,
        "totals": {
            "specs": len(rows),
            "ok": sum(1 for row in rows if row["status"] == "ok"),
            "failed": sum(1 for row in rows if row["status"] == "failed"),
            "cache_hits": sum(1 for row in rows if row["cache"] == "hit"),
            "cache_misses": sum(1 for row in rows if row["cache"] == "miss"),
            "derivations": int(registry.counter("batch.derivations").value()),
            "tasks": int(registry.counter("batch.tasks").value()),
            "duration_s": round(duration_s, 6),
        },
        "cache": cache_section,
        "metrics": registry.snapshot(),
    }
