"""Worker-task plumbing shared by :mod:`repro.batch` and :mod:`repro.serve`.

Both subsystems push work through the same picklable task entry points
and the same failure-containment contract, factored here so the two
cannot drift:

* **the op registry** (:data:`TASKS`) — every operation a worker can
  run, keyed by name: ``derive`` (the batch scheduler's
  :func:`repro.core.generator.derive_task`), ``lint`` and ``profile``.
  Each entry point is a module-level function taking
  ``(text, options)`` and returning a plain JSON-able dict, so it
  crosses a ``ProcessPoolExecutor`` boundary without dragging along
  process-global state;
* **containment** (:func:`run_task`) — the in-worker wrapper that
  never raises: it settles every operation into an envelope
  ``{"ok": bool, "kind": ..., ...}`` so a crashing spec can never
  break result plumbing (or exception pickling) on the parent side;
* **error documents** (:func:`error_document`,
  :func:`timeout_document`) — the one shape a failure takes in batch
  summary rows and serve responses alike;
* **pool construction** (:func:`make_executor`) — the single place a
  ``ProcessPoolExecutor`` is spun up, with the test seam
  (``executor_factory``) both subsystems share.
"""

from __future__ import annotations

import traceback
from typing import Any, Callable, Dict, Mapping, Optional

from repro.core.generator import derive_task
from repro.errors import ReproError

#: Option keys :func:`profile_task` accepts (and their coercions);
#: everything else is rejected so a typo'd option can never be
#: silently ignored.
_PROFILE_OPTIONS: Dict[str, Callable[[Any], Any]] = {
    "runs": int,
    "seed": int,
    "max_steps": int,
    "verify": bool,
    "mixed_choice": bool,
    "trace_depth": int,
    "source": str,
}


def lint_task(text: str, options: Optional[Dict[str, Any]] = None) -> Dict:
    """Lint one specification text; returns the ``LintResult`` document.

    ``options`` understands ``mixed_choice`` (bool) and ``source``
    (display name); anything else raises ``ValueError`` (a client
    error under :func:`run_task`'s classification).
    """
    from repro.analysis.lint import lint_text

    opts = dict(options or {})
    mixed_choice = bool(opts.pop("mixed_choice", False))
    source = str(opts.pop("source", "<request>"))
    if opts:
        raise ValueError(
            f"unknown lint option(s) {sorted(opts)}; "
            f"known: ['mixed_choice', 'source']"
        )
    return lint_text(text, source=source, mixed_choice=mixed_choice).to_dict()


def profile_task(text: str, options: Optional[Dict[str, Any]] = None) -> Dict:
    """Profile one specification; returns a ``repro.obs.profile/v1`` doc."""
    from repro.obs.profile import profile_spec

    opts = dict(options or {})
    unknown = sorted(set(opts) - set(_PROFILE_OPTIONS))
    if unknown:
        raise ValueError(
            f"unknown profile option(s) {unknown}; "
            f"known: {sorted(_PROFILE_OPTIONS)}"
        )
    kwargs = {name: _PROFILE_OPTIONS[name](value) for name, value in opts.items()}
    return profile_spec(text, **kwargs)


#: Every operation a worker can run, by wire name.  ``repro.serve``
#: routes ``POST /v1/<op>`` straight through this mapping; the batch
#: scheduler submits :func:`derive_task` (and its per-place variants)
#: directly.
TASKS: Dict[str, Callable[..., Dict[str, Any]]] = {
    "derive": derive_task,
    "lint": lint_task,
    "profile": profile_task,
}


def stats_document(name: str, payload: Mapping[str, Any]) -> Dict[str, Any]:
    """A ``repro.obs.profile/v1`` stats document for one cache entry.

    Cache writers (the batch scheduler and the serve cache-miss path)
    do not execute or verify, so the runs/medium sections are empty —
    but keeping the profile shape means one schema validates ``repro
    profile`` output and cached derivation stats alike, and a cache
    entry reads back the same whether batch or serve wrote it.
    """
    from repro.obs.schema import PROFILE_SCHEMA

    return {
        "schema": PROFILE_SCHEMA,
        "source": name,
        "places": payload["places"],
        "derivation": {
            "places": len(payload["places"]),
            "sync_fragments": payload["sync_fragments"],
            "violations": payload["violations"],
        },
        "verification": None,
        "runs": [],
        "medium": {"queue_high_water": {}},
        "trace": payload.get("trace"),
        "metrics": payload.get("metrics"),
    }


def error_document(exc: BaseException) -> Dict[str, str]:
    """The one JSON shape a task failure takes, everywhere."""
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        ),
    }


def timeout_document(timeout: Optional[float]) -> Dict[str, str]:
    """The failure document of a task that outlived its budget."""
    return {
        "type": "TimeoutError",
        "message": f"task exceeded {timeout}s wall-clock budget",
        "traceback": "",
    }


def _apply_chaos_directive(directive: Mapping[str, Any]) -> Optional[Dict]:
    """Act on a fault directive inside the worker.

    Returns an (injected-tagged) failure envelope to answer with, or
    ``None`` to proceed with the real task.  ``worker_kill`` on a
    *process* worker actually dies (``os._exit``) so the parent sees a
    genuine ``BrokenProcessPool``; on a thread worker — which cannot
    exit without taking the server along — the crash is simulated as a
    contained envelope.  ``worker_stall`` sleeps and then lets the
    task run, so a short request budget expires parent-side.
    """
    kind = directive.get("kind")
    if kind == "worker_stall":
        import time

        time.sleep(float(directive.get("stall_s", 1.0)))
        return None
    if kind == "worker_kill":
        import multiprocessing
        import os

        if multiprocessing.parent_process() is not None:
            os._exit(3)
        return {
            "ok": False,
            "kind": "internal",
            "injected": True,
            "error": {
                "type": "WorkerKilled",
                "message": "chaos: injected worker kill (thread worker)",
                "traceback": "",
            },
        }
    return None


def run_task(
    op: str,
    text: str,
    options: Optional[Mapping[str, Any]] = None,
    chaos: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Run one registered operation inside a worker; never raises.

    The returned envelope is always one of::

        {"ok": True,  "result": <the entry point's document>}
        {"ok": False, "kind": "client",   "error": <error document>}
        {"ok": False, "kind": "internal", "error": <error document>}

    ``kind`` classifies the failure for HTTP mapping: ``client`` means
    the request itself was bad (unparseable spec, admissibility
    violation, unknown option — a 4xx), ``internal`` means the worker
    broke (a 5xx).  Containing the exception *inside* the worker also
    sidesteps exception pickling across the process boundary.

    ``chaos`` is a fault directive decided parent-side (the pool or
    scheduler holds the :class:`repro.chaos.ChaosController`; the
    worker process does not) and shipped along with the task.  Fault-
    injected failures carry ``"injected": True`` in the envelope so
    they are never mistaken for organic ones.
    """
    if chaos is not None:
        settled = _apply_chaos_directive(chaos)
        if settled is not None:
            return settled
    try:
        entry_point = TASKS[op]
    except KeyError:
        return {
            "ok": False,
            "kind": "client",
            "error": {
                "type": "UnknownOperation",
                "message": f"unknown operation {op!r}; known: {sorted(TASKS)}",
                "traceback": "",
            },
        }
    try:
        result = entry_point(text, dict(options) if options else None)
    except (ReproError, ValueError) as exc:
        return {"ok": False, "kind": "client", "error": error_document(exc)}
    except Exception as exc:  # noqa: BLE001 - containment is the contract
        return {"ok": False, "kind": "internal", "error": error_document(exc)}
    return {"ok": True, "result": result}


def make_executor(
    workers: int,
    executor_factory: Optional[Callable[[int], Any]] = None,
) -> Any:
    """The worker pool both subsystems spin up (test seam included)."""
    if executor_factory is None:
        from concurrent.futures import ProcessPoolExecutor

        executor_factory = ProcessPoolExecutor
    return executor_factory(workers)
