"""The corpus model: named service specifications plus per-spec options.

A corpus on disk is a directory of ``*.lotos`` files, optionally
described by a ``manifest.json`` mapping spec name to derivation
options — exactly the shape ``tests/goldens/manifest.json`` has used
since the golden corpus was recorded::

    {
      "example2_counting": {},
      "mixed_choice_veto": {"mixed_choice": true}
    }

Without a manifest, every ``*.lotos`` file in the directory is a corpus
member with default options.  Names are spec-relative (the manifest key
/ file stem, never an absolute path), so cache keys, batch summaries
and CI artifacts are machine-independent.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.generator import normalize_options

MANIFEST_NAME = "manifest.json"


@dataclass(frozen=True)
class SpecCase:
    """One corpus member: a named specification text plus its options."""

    name: str
    text: str
    options: Mapping[str, bool] = field(default_factory=dict)
    path: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "options", normalize_options(self.options))


def load_corpus(
    root: os.PathLike | str,
    manifest: Optional[os.PathLike | str] = None,
) -> List[SpecCase]:
    """Load a corpus directory (manifest-driven when one is present).

    ``manifest`` overrides the default ``<root>/manifest.json``; pass a
    path outside ``root`` to slice one corpus several ways.  A manifest
    entry without its ``.lotos`` file is an error — silently deriving a
    subset would defeat the point of a manifest.
    """
    root = pathlib.Path(root)
    if not root.is_dir():
        raise FileNotFoundError(f"corpus root {root} is not a directory")
    manifest_path = (
        pathlib.Path(manifest) if manifest else root / MANIFEST_NAME
    )
    cases: List[SpecCase] = []
    if manifest_path.exists():
        entries: Dict[str, Any] = json.loads(manifest_path.read_text())
        for name in sorted(entries):
            spec_path = root / f"{name}.lotos"
            if not spec_path.exists():
                raise FileNotFoundError(
                    f"manifest names {name!r} but {spec_path} does not exist"
                )
            cases.append(
                SpecCase(
                    name=name,
                    text=spec_path.read_text(encoding="utf-8"),
                    options=entries[name] or {},
                    path=str(spec_path),
                )
            )
    else:
        for spec_path in sorted(root.glob("*.lotos")):
            cases.append(
                SpecCase(
                    name=spec_path.stem,
                    text=spec_path.read_text(encoding="utf-8"),
                    path=str(spec_path),
                )
            )
    if not cases:
        raise FileNotFoundError(f"no specifications found under {root}")
    return cases


def corpus_from_texts(
    pairs: Iterable[Tuple[str, str]],
    options: Optional[Mapping[str, Any]] = None,
) -> List[SpecCase]:
    """Build an in-memory corpus from ``(name, text)`` pairs — the shape
    :mod:`repro.workloads` corpus generators produce."""
    cases = [
        SpecCase(name=name, text=text, options=options or {})
        for name, text in pairs
    ]
    if not cases:
        raise ValueError("empty corpus")
    names = [case.name for case in cases]
    if len(set(names)) != len(names):
        raise ValueError("corpus names must be unique")
    return cases
