"""Content-addressed on-disk cache of derived protocol entities.

The cache key is the SHA-256 of a canonical JSON envelope over three
inputs, so "have I derived this before?" is a pure function of what
actually determines the output:

* the **canonicalized specification text** — line endings normalized,
  trailing whitespace stripped — so cosmetic whitespace edits do not
  defeat the cache (the LOTOS grammar is whitespace-insensitive beyond
  token separation);
* the **canonicalized derivation options** — every option of
  :data:`repro.core.generator.OPTION_DEFAULTS`, spelled out even when
  defaulted, so ``--mixed-choice`` (or any future flag) can never
  alias a differently-derived entry;
* the **algorithm version tag**
  (:data:`repro.core.generator.ALGORITHM_VERSION`) — bumped whenever
  the derivation pipeline changes any entity text, which atomically
  invalidates every prior entry.

Entries are one JSON file each under ``<root>/<key[:2]>/<key>.json``
(two-level fan-out keeps directories small on big corpora), holding the
unparse'd entity texts plus the worker's ``repro.obs.profile/v1`` stats
document.  Hits, misses and evictions are counted in the active
:mod:`repro.obs.metrics` registry as ``batch.cache.hits`` /
``batch.cache.misses`` / ``batch.cache.evictions``.

The store is deliberately crash-tolerant rather than locked: writes go
through a same-directory temp file + :func:`os.replace`, a corrupt or
truncated entry reads as a miss (and is deleted), and concurrent
writers of the same key converge on identical bytes by construction.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Any, Dict, Iterable, Mapping, Optional

from repro.chaos import get_chaos
from repro.core.generator import ALGORITHM_VERSION, normalize_options
from repro.obs.metrics import get_registry

#: Schema tag of one cache entry file.
ENTRY_SCHEMA = "repro.batch.entry/v1"


def canonicalize_spec_text(text: str) -> str:
    """Whitespace-normal form of a specification text.

    Normalizes line endings to ``\\n``, strips trailing whitespace from
    every line and trailing blank lines from the document, and ends
    with exactly one newline.  Indentation and intra-line spacing are
    preserved — they never change the parse, but collapsing them would
    make cached texts unreadable for debugging.
    """
    lines = [line.rstrip() for line in text.replace("\r\n", "\n").split("\n")]
    while lines and not lines[-1]:
        lines.pop()
    return "\n".join(lines) + "\n"


def cache_key(
    text: str, options: Optional[Mapping[str, Any]] = None
) -> str:
    """The SHA-256 content address of one (spec, options) derivation."""
    envelope = json.dumps(
        {
            "algorithm": ALGORITHM_VERSION,
            "options": normalize_options(options),
            "spec": canonicalize_spec_text(text),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(envelope.encode("utf-8")).hexdigest()


class EntityCache:
    """Filesystem store of derivation results, addressed by content.

    ``max_entries`` bounds the store: when a ``put`` pushes the entry
    count past the bound, the least-recently-modified entries are
    evicted (derivations are pure, so eviction only ever costs a
    recompute).  ``max_entries=None`` means unbounded.
    """

    def __init__(
        self,
        root: os.PathLike | str,
        max_entries: Optional[int] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive (or None)")
        self.root = pathlib.Path(root)
        self.max_entries = max_entries

    # ------------------------------------------------------------------
    def key(
        self, text: str, options: Optional[Mapping[str, Any]] = None
    ) -> str:
        return cache_key(text, options)

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored entry for ``key``, or ``None`` (counted as a miss).

        A malformed entry — truncated write, foreign file, schema or
        key mismatch — is deleted and reported as a miss, so a damaged
        store heals itself instead of serving garbage.  That healing
        path is exactly what chaos's ``corrupt_entry`` fault exercises:
        it scribbles over the entry right before the read.
        """
        registry = get_registry()
        path = self._path(key)
        chaos = get_chaos()
        if chaos is not None and path.exists():
            directive = chaos.decide("cache.read", key=key)
            if directive is not None and directive["kind"] == "corrupt_entry":
                path.write_text("{corrupt", encoding="utf-8")
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
            if entry.get("schema") != ENTRY_SCHEMA or entry.get("key") != key:
                raise ValueError("cache entry does not match its address")
        except FileNotFoundError:
            registry.counter(
                "batch.cache.misses", help="cache lookups that derived"
            ).inc()
            return None
        except (ValueError, OSError):
            path.unlink(missing_ok=True)
            registry.counter(
                "batch.cache.misses", help="cache lookups that derived"
            ).inc()
            return None
        registry.counter(
            "batch.cache.hits", help="cache lookups served from disk"
        ).inc()
        return entry

    def put(
        self,
        key: str,
        name: str,
        options: Optional[Mapping[str, Any]],
        entities: Mapping[str, str],
        stats: Optional[Mapping[str, Any]] = None,
    ) -> pathlib.Path:
        """Store one derivation result; returns the entry path."""
        entry = {
            "schema": ENTRY_SCHEMA,
            "key": key,
            "name": name,
            "options": normalize_options(options),
            "algorithm": ALGORITHM_VERSION,
            "places": sorted(int(place) for place in entities),
            "entities": {str(place): text for place, text in entities.items()},
            "stats": dict(stats) if stats is not None else None,
        }
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(
            json.dumps(entry, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, path)
        if self.max_entries is not None:
            self._evict(keep=path)
        return path

    # ------------------------------------------------------------------
    def _entries(self) -> Iterable[pathlib.Path]:
        if not self.root.exists():
            return []
        return self.root.glob("*/*.json")

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def _evict(self, keep: pathlib.Path) -> None:
        entries = sorted(self._entries(), key=lambda p: p.stat().st_mtime)
        excess = len(entries) - self.max_entries
        if excess <= 0:
            return
        registry = get_registry()
        for path in entries:
            if excess <= 0:
                break
            if path == keep:  # never evict what was just written
                continue
            path.unlink(missing_ok=True)
            excess -= 1
            registry.counter(
                "batch.cache.evictions", help="entries dropped by max_entries"
            ).inc()

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in list(self._entries()):
            path.unlink(missing_ok=True)
            removed += 1
        return removed
