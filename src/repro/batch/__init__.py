"""repro.batch — parallel, cached corpus derivation.

The paper derives one protocol entity per place by applying ``T_p`` to
the root of the service specification, independently for every ``p`` in
ALL.  That independence is the whole parallelization story: a corpus of
service specifications fans out into one task per (spec, options) pair
— or, for large specifications, one task per place — across a
``ProcessPoolExecutor``, and a content-addressed on-disk cache makes
repeat runs free.

Three modules:

* **manifest** (:mod:`repro.batch.manifest`) — the corpus model: named
  specifications plus per-spec derivation options, loaded from a
  directory with the ``tests/goldens/manifest.json`` shape or built
  from in-memory ``(name, text)`` pairs;
* **cache** (:mod:`repro.batch.cache`) — SHA-256 content addressing
  over (canonicalized spec text, canonicalized options, algorithm
  version), storing unparse'd entities plus ``repro.obs.profile/v1``
  stats, with hit/miss/evict counters in :mod:`repro.obs.metrics`;
* **scheduler** (:mod:`repro.batch.scheduler`) — the worker-pool runner
  behind ``repro batch``, emitting one ``repro.obs.batch/v1`` summary
  per run (one failing spec never aborts the corpus);
* **workers** (:mod:`repro.batch.workers`) — the picklable task entry
  points (``derive``/``lint``/``profile``), the in-worker failure
  containment wrapper and the error/timeout documents shared with the
  :mod:`repro.serve` request pool, so batch and serve cannot drift.

Typical use::

    from repro.batch import EntityCache, load_corpus, run_batch

    corpus = load_corpus("tests/goldens")
    outcome = run_batch(corpus, workers=4, cache=EntityCache(".repro-cache"))
    outcome.summary          # the repro.obs.batch/v1 document
    outcome.entities["name"] # place -> derived entity text

See ``docs/batch.md`` for the architecture, the cache key definition
and the CI perf-gate built on top.
"""

from repro.batch.cache import EntityCache, cache_key, canonicalize_spec_text
from repro.batch.manifest import SpecCase, corpus_from_texts, load_corpus
from repro.batch.scheduler import BatchOutcome, run_batch
from repro.batch.workers import (
    TASKS,
    error_document,
    make_executor,
    run_task,
    stats_document,
    timeout_document,
)

__all__ = [
    "BatchOutcome",
    "EntityCache",
    "SpecCase",
    "TASKS",
    "cache_key",
    "canonicalize_spec_text",
    "corpus_from_texts",
    "error_document",
    "load_corpus",
    "make_executor",
    "run_batch",
    "run_task",
    "stats_document",
    "timeout_document",
]
