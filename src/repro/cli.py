"""Command-line front ends: ``repro`` and the legacy ``lotos-pg``.

``repro`` is the subcommand interface::

    repro lint service.lotos                    # static analysis only
    repro lint service.lotos --format json      # machine-readable output
    repro lint --list-rules                     # the rule catalogue
    repro derive service.lotos [flags]          # lint warnings + derivation
    repro derive service.lotos --trace          # span tree on stderr
    repro derive service.lotos --stats=json     # metrics snapshot on stderr
    repro profile service.lotos                 # consolidated JSON report
    repro batch corpus/ --workers 4             # parallel, cached corpus run
    repro --version

Diagnostic output (lint warnings, traces, stats, profile digests) goes
to stderr so stdout stays pipeable; ``--quiet`` silences the
informational stderr chatter of every subcommand.

``lotos-pg`` is the original flag-style Protocol Generator (kept as an
alias of ``repro derive``): reads a service specification (file or
stdin), checks it, derives the protocol entity specification of every
place, and optionally verifies the correctness theorem, reports message
complexity, or executes random schedules::

    lotos-pg service.lotos                      # derive all entities
    lotos-pg service.lotos --place 2            # one entity
    lotos-pg service.lotos --verify             # Section 5 check
    lotos-pg service.lotos --complexity         # Section 4.3 counts
    lotos-pg service.lotos --run 5              # execute 5 schedules
    lotos-pg service.lotos --attributes         # SP/EP/AP table (Fig. 4)
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.core.complexity import analyze
from repro.core.generator import derive_protocol
from repro.errors import ReproError
from repro.lotos.unparse import unparse_behaviour
from repro.runtime import build_system, check_run, random_run


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lotos-pg",
        description="Derive protocol entity specifications from a LOTOS "
        "service specification (Kant/Higashino/Bochmann algorithm).",
    )
    parser.add_argument(
        "service",
        help="path to the service specification, or '-' for stdin",
    )
    parser.add_argument(
        "--place", type=int, default=None, help="derive only this place"
    )
    parser.add_argument(
        "--raw",
        action="store_true",
        help="print the derivation before empty-elimination",
    )
    parser.add_argument(
        "--full-messages",
        action="store_true",
        help="render occurrence parameters on messages (s2(s,8) style)",
    )
    parser.add_argument(
        "--lenient",
        action="store_true",
        help="derive even when restrictions R1-R3 are violated",
    )
    parser.add_argument(
        "--naive",
        action="store_true",
        help="naive projection baseline (no synchronization messages)",
    )
    parser.add_argument(
        "--mixed-choice",
        action="store_true",
        help="lift restriction R1 for two-starter choices via the arbiter "
        "protocol (trace-equivalent extension, see docs/algorithm.md)",
    )
    parser.add_argument(
        "--attributes",
        action="store_true",
        help="print the SP/EP/AP attribute table (paper Fig. 4)",
    )
    parser.add_argument(
        "--complexity",
        action="store_true",
        help="print per-construct message counts (paper Section 4.3)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="check the Section 5 theorem against the composed system",
    )
    parser.add_argument(
        "--run",
        type=int,
        default=0,
        metavar="N",
        help="execute N random schedules through the FIFO medium",
    )
    parser.add_argument("--seed", type=int, default=0, help="base RNG seed")
    parser.add_argument(
        "--max-steps", type=int, default=10_000, help="step budget per run"
    )
    parser.add_argument(
        "--msc",
        action="store_true",
        help="render one schedule as a message sequence chart",
    )
    parser.add_argument(
        "--analyze",
        action="store_true",
        help="reachability analysis: deadlocks, blocked receptions, dead code",
    )
    parser.add_argument(
        "--parameters",
        action="store_true",
        help="interaction-parameter data flow: which messages piggyback "
        "which values ([Gotz 90] extension)",
    )
    parser.add_argument(
        "--dot",
        choices=["tree", "lts"],
        default=None,
        help="emit Graphviz DOT: the attributed derivation tree (Fig. 4) "
        "or the service LTS",
    )
    _add_observability_flags(parser)
    return parser


def _add_observability_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        action="store_true",
        help="print the span tree of the work done to stderr",
    )
    parser.add_argument(
        "--stats",
        nargs="?",
        const="text",
        choices=["text", "json"],
        default=None,
        metavar="FORMAT",
        help="print a metrics snapshot to stderr (text, or --stats=json)",
    )
    _add_common_flags(parser)


def _add_common_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress informational stderr output (lint warnings, digests)",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {_package_version()}",
    )


def _package_version() -> str:
    """The installed distribution version, or the source tree's."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        import repro

        return getattr(repro, "__version__", "unknown")


def _broken_pipe_exit() -> int:
    # A downstream reader (`repro lint ... | head`) closed stdout early.
    # Swallow the write error and keep the interpreter's shutdown flush
    # from raising again, instead of dumping a traceback.
    devnull = os.open(os.devnull, os.O_WRONLY)
    os.dup2(devnull, sys.stdout.fileno())
    return 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    try:
        return _derive_main(argv)
    except BrokenPipeError:
        return _broken_pipe_exit()


def _derive_main(argv: Optional[Sequence[str]] = None) -> int:
    args = make_parser().parse_args(argv)
    try:
        text = (
            sys.stdin.read()
            if args.service == "-"
            else open(args.service, encoding="utf-8").read()
        )
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not (args.trace or args.stats):
        return _derive_body(args, text)
    # Observe the whole derivation (and whatever --verify/--run add) and
    # report on stderr afterwards, even when the body exits early.
    from repro.obs import observe

    with observe() as obs:
        code = _derive_body(args, text)
    if args.trace:
        print(obs.tracer.render(), file=sys.stderr)
    if args.stats == "json":
        print(obs.metrics.render_json(), file=sys.stderr)
    elif args.stats:
        print(obs.metrics.render(), file=sys.stderr)
    return code


def _derive_body(args: argparse.Namespace, text: str) -> int:
    if not args.quiet:
        _surface_lint_warnings(
            text, args.service, mixed_choice=args.mixed_choice
        )

    try:
        result = derive_protocol(
            text,
            strict=not args.lenient,
            emit_sync=not args.naive,
            mixed_choice=args.mixed_choice,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    compact = not args.full_messages
    if result.violations and not args.quiet:
        for violation in result.violations:
            print(f"warning: {violation}", file=sys.stderr)

    if args.attributes:
        _print_attributes(result)

    places = [args.place] if args.place is not None else result.places
    raw_deriver = None
    if args.raw:
        from repro.core.derivation import Deriver
        from repro.lotos.unparse import unparse

        raw_deriver = Deriver(
            result.prepared, result.attrs, emit_sync=not args.naive
        )
    for place in places:
        if place not in result.entities:
            print(f"error: place {place} not in {result.places}", file=sys.stderr)
            return 1
        print(f"-- Protocol entity for place {place} " + "-" * 24)
        if raw_deriver is not None:
            print(unparse(raw_deriver.derive_raw(place), compact=compact).rstrip())
        else:
            print(result.entity_text(place, compact=compact).rstrip())
        print()

    if args.complexity:
        report = analyze(result)
        print("-- Message complexity (Section 4.3) " + "-" * 12)
        print(report.table())
        print()

    if args.run:
        system = build_system(result.entities)
        print(f"-- {args.run} random schedule(s) " + "-" * 24)
        for offset in range(args.run):
            run = random_run(
                system, seed=args.seed + offset, max_steps=args.max_steps
            )
            verdict = check_run(result.service, run)
            print(f"seed {args.seed + offset}: {run}  messages={run.messages_sent}  "
                  f"conformance={'ok' if verdict.ok else 'VIOLATION'}")
        print()

    if args.msc:
        from repro.runtime.msc import record_schedule

        system = build_system(
            result.entities,
            hide=False,
            discipline="selective",
            require_empty_at_exit=False,
        )
        print("-- Message sequence chart " + "-" * 24)
        print(record_schedule(system, seed=args.seed, max_steps=args.max_steps).render())
        print()

    if args.analyze:
        from repro.analysis import analyze_protocol

        print("-- Reachability analysis " + "-" * 24)
        print(
            analyze_protocol(
                result.entities,
                discipline="selective",
                use_occurrences=False,
            ).render()
        )
        print()

    if args.parameters:
        from repro.core.dataflow import analyze_parameters

        print("-- Interaction parameters ([Gotz 90]) " + "-" * 12)
        print(analyze_parameters(result).render())
        print()

    if args.dot == "tree":
        from repro.lotos.dot import syntax_tree_to_dot

        print(syntax_tree_to_dot(result.prepared, result.attrs))
    elif args.dot == "lts":
        from repro.lotos.dot import lts_to_dot
        from repro.lotos.lts import build_lts
        from repro.lotos.semantics import Semantics

        semantics, root = Semantics.of_specification(
            result.prepared, bind_occurrences=False
        )
        lts = build_lts(root, semantics, max_states=2_000, on_limit="truncate")
        print(lts_to_dot(lts))

    if args.verify:
        from repro.verification import verify_derivation

        print("-- Theorem check (Section 5) " + "-" * 20)
        print(verify_derivation(result))
    return 0


def _print_attributes(result) -> None:
    print("-- Attributes (Section 4.1) " + "-" * 20)
    print(f"ALL = {sorted(result.attrs.all_places)}")
    for name, attrs in sorted(result.attrs.by_process.items()):
        print(
            f"process {name}: SP={sorted(attrs.sp)} EP={sorted(attrs.ep)} "
            f"AP={sorted(attrs.ap)}"
        )
    shown = 0
    for node in result.prepared.walk_behaviours():
        if node.nid is None:
            continue
        attrs = result.attrs.by_node.get(node.nid)
        if attrs is None:
            continue
        rendering = unparse_behaviour(node)
        if len(rendering) > 48:
            rendering = rendering[:45] + "..."
        print(
            f"  N={node.nid:<3} SP={sorted(attrs.sp)!s:<10} "
            f"EP={sorted(attrs.ep)!s:<10} AP={sorted(attrs.ap)!s:<12} {rendering}"
        )
        shown += 1
        if shown > 200:
            print("  ... (truncated)")
            break
    print()


def _surface_lint_warnings(
    text: str, source: str, mixed_choice: bool = False
) -> None:
    """Print lint warnings/infos to stderr before deriving.

    Errors are left to the generator itself (strict mode refuses with its
    own message); a crash inside lint must never block a derivation.
    """
    try:
        from repro.analysis.lint import ERROR, lint_text

        result = lint_text(text, source=source, mixed_choice=mixed_choice)
        for diagnostic in result.diagnostics:
            if diagnostic.severity != ERROR:
                print(f"lint: {diagnostic.format(source)}", file=sys.stderr)
    except Exception as exc:  # pragma: no cover - defensive
        print(f"lint: internal error: {exc}", file=sys.stderr)


# ----------------------------------------------------------------------
# ``repro profile``
# ----------------------------------------------------------------------
def make_profile_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro profile",
        description="Profile the full life of one service specification — "
        "derivation, Section 5 verification, N seeded executor runs — and "
        "emit one consolidated JSON report (schema repro.obs.profile/v1) "
        "on stdout.  A human-readable digest goes to stderr unless "
        "--quiet.  See docs/observability.md.",
    )
    parser.add_argument(
        "service",
        help="path to the service specification, or '-' for stdin",
    )
    parser.add_argument(
        "--runs", type=int, default=3, metavar="N",
        help="seeded schedules to execute (default 3)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base RNG seed")
    parser.add_argument(
        "--max-steps", type=int, default=5_000, help="step budget per run"
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the Section 5 theorem check",
    )
    parser.add_argument(
        "--trace-depth",
        type=int,
        default=6,
        help="depth bound for the trace-equivalence fallback (default 6)",
    )
    parser.add_argument(
        "--mixed-choice",
        action="store_true",
        help="derive with the arbiter-protocol R1 extension",
    )
    parser.add_argument(
        "--indent",
        type=int,
        default=2,
        metavar="N",
        help="JSON indentation; 0 emits the compact one-line form",
    )
    _add_common_flags(parser)
    return parser


def profile_main(argv: Optional[Sequence[str]] = None) -> int:
    try:
        return _profile_main(argv)
    except BrokenPipeError:
        return _broken_pipe_exit()


def _profile_main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.obs import (
        profile_spec,
        render_report,
        render_report_json,
        spec_display_name,
    )

    args = make_profile_parser().parse_args(argv)
    try:
        text = (
            sys.stdin.read()
            if args.service == "-"
            else open(args.service, encoding="utf-8").read()
        )
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        report = profile_spec(
            text,
            # Spec-relative: an absolute (temp) path would make reports
            # and CI artifacts machine-dependent.
            source=spec_display_name(args.service),
            runs=args.runs,
            seed=args.seed,
            max_steps=args.max_steps,
            verify=not args.no_verify,
            mixed_choice=args.mixed_choice,
            trace_depth=args.trace_depth,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    indent = args.indent if args.indent > 0 else None
    print(render_report_json(report, indent=indent))
    if not args.quiet:
        print(render_report(report), file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# ``repro batch``
# ----------------------------------------------------------------------
def make_batch_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro batch",
        description="Derive protocol entities for a whole corpus of "
        "service specifications — in parallel, with a content-addressed "
        "on-disk cache so repeat runs never recompute.  Emits one "
        "repro.obs.batch/v1 summary on stdout; one failing spec never "
        "aborts the corpus.  See docs/batch.md.",
    )
    parser.add_argument(
        "corpus",
        help="corpus directory of *.lotos files (a manifest.json of "
        "{name: options} is honored when present)",
    )
    parser.add_argument(
        "--manifest",
        default=None,
        metavar="PATH",
        help="manifest file to use instead of <corpus>/manifest.json",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="worker processes; 0 (default) derives serially in-process",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task wall-clock budget (pool mode only); an overdue "
        "task becomes a failure row, not a hung run",
    )
    parser.add_argument(
        "--cache-dir",
        default=".repro-cache",
        metavar="DIR",
        help="entity cache directory (default ./.repro-cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="derive everything; neither read nor write the cache",
    )
    parser.add_argument(
        "--max-cache-entries",
        type=int,
        default=None,
        metavar="N",
        help="evict least-recently-written entries beyond N",
    )
    parser.add_argument(
        "--split-bytes",
        type=int,
        default=None,
        metavar="N",
        help="fan out one task per place for specs whose canonical text "
        "is at least N bytes (default %(default)s)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="also write each derived corpus member to "
        "DIR/<name>.entities.txt",
    )
    parser.add_argument(
        "--indent",
        type=int,
        default=2,
        metavar="N",
        help="JSON indentation; 0 emits the compact one-line form",
    )
    _add_common_flags(parser)
    return parser


def batch_main(argv: Optional[Sequence[str]] = None) -> int:
    try:
        return _batch_main(argv)
    except BrokenPipeError:
        return _broken_pipe_exit()


def _batch_main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.batch import EntityCache, load_corpus, run_batch
    from repro.batch.scheduler import DEFAULT_SPLIT_BYTES

    args = make_batch_parser().parse_args(argv)
    try:
        corpus = load_corpus(args.corpus, manifest=args.manifest)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    cache = (
        None
        if args.no_cache
        else EntityCache(args.cache_dir, max_entries=args.max_cache_entries)
    )
    split = (
        DEFAULT_SPLIT_BYTES if args.split_bytes is None else args.split_bytes
    )
    outcome = run_batch(
        corpus,
        workers=args.workers,
        timeout=args.timeout,
        cache=cache,
        split_bytes=split,
    )
    if args.out:
        out_dir = os.path.abspath(args.out)
        os.makedirs(out_dir, exist_ok=True)
        for name, entities in sorted(outcome.entities.items()):
            parts = []
            for place in sorted(entities):
                parts.append(
                    f"-- Protocol entity for place {place} " + "-" * 20
                )
                parts.append(entities[place].rstrip())
            with open(
                os.path.join(out_dir, f"{name}.entities.txt"),
                "w",
                encoding="utf-8",
            ) as handle:
                handle.write("\n".join(parts) + "\n")
    indent = args.indent if args.indent > 0 else None
    print(json.dumps(outcome.summary, indent=indent, sort_keys=True))
    if not args.quiet:
        _print_batch_digest(outcome.summary)
    return 0 if outcome.ok else 1


def _print_batch_digest(summary: dict) -> None:
    totals = summary["totals"]
    for row in summary["specs"]:
        status = row["status"]
        if status == "failed":
            error = row["error"] or {}
            detail = f"{error.get('type', '?')}: {error.get('message', '')}"
        else:
            detail = f"{len(row['places'])} places"
        print(
            f"batch: {row['name']}: {status} [{row['cache']}] "
            f"{detail} ({row['duration_s'] * 1000:.1f} ms)",
            file=sys.stderr,
        )
    line = (
        f"batch: {totals['ok']}/{totals['specs']} ok, "
        f"{totals['cache_hits']} cached, {totals['derivations']} derived, "
        f"{totals['duration_s']:.2f}s with {summary['workers']} worker(s)"
    )
    if summary["degraded"]:
        line += " [DEGRADED to serial]"
    print(line, file=sys.stderr)


# ----------------------------------------------------------------------
# ``repro serve``
# ----------------------------------------------------------------------
def make_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the derivation pipeline as a long-running asyncio "
        "HTTP service: POST /v1/derive, /v1/lint, /v1/profile (JSON bodies, "
        "schema repro.serve.request/v1), GET /healthz and /metrics.  "
        "Bounded admission sheds overload with fast 503s, a warm worker "
        "pool keeps derivations off the event loop, and repeated specs are "
        "served from the shared entity cache.  SIGTERM/SIGINT drain "
        "gracefully.  See docs/serving.md.",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default %(default)s)"
    )
    parser.add_argument(
        "--port", type=int, default=8437,
        help="TCP port; 0 picks a free one (default %(default)s)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="worker pool size (default %(default)s)",
    )
    parser.add_argument(
        "--worker-kind", choices=["process", "thread"], default="process",
        help="process pool (production) or thread pool (tests, benchmarks)",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=64, metavar="N",
        help="admitted requests before shedding 503s (default %(default)s)",
    )
    parser.add_argument(
        "--timeout", type=float, default=30.0, metavar="SECONDS",
        help="per-request worker budget; overdue answers 504 "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--max-body", type=int, default=1_000_000, metavar="BYTES",
        help="largest accepted request body (default %(default)s)",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=10.0, metavar="SECONDS",
        help="how long shutdown waits for in-flight requests "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="entity cache directory shared with `repro batch` "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="derive every request; neither read nor write the cache",
    )
    parser.add_argument(
        "--max-cache-entries", type=int, default=None, metavar="N",
        help="evict least-recently-written cache entries beyond N",
    )
    parser.add_argument(
        "--chaos-plan", default=None, metavar="PLAN",
        help="run under deterministic fault injection: a built-in plan "
        "name or a fault-plan JSON file (see docs/robustness.md)",
    )
    parser.add_argument(
        "--chaos-seed", type=int, default=0, metavar="N",
        help="seed of the fault plan's schedule (default %(default)s)",
    )
    _add_common_flags(parser)
    return parser


def serve_main(argv: Optional[Sequence[str]] = None) -> int:
    args = make_serve_parser().parse_args(argv)
    from repro.serve.server import ServeConfig

    if args.chaos_plan:
        from repro.chaos import ChaosController, ChaosError, set_chaos
        from repro.chaos.runner import resolve_plan

        try:
            plan = resolve_plan(args.chaos_plan, args.chaos_seed)
        except ChaosError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        set_chaos(ChaosController(plan))
        if not args.quiet:
            print(
                f"serve: CHAOS plan {plan.name!r} seed {plan.seed} active "
                f"({len(plan.faults)} fault(s))",
                file=sys.stderr,
            )

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        worker_kind=args.worker_kind,
        queue_limit=args.queue_limit,
        request_timeout=args.timeout,
        max_body_bytes=args.max_body,
        drain_timeout=args.drain_timeout,
        cache_dir=None if args.no_cache else args.cache_dir,
        max_cache_entries=args.max_cache_entries,
        access_log=not args.quiet,
    )
    try:
        return asyncio.run(_serve_until_signalled(config, quiet=args.quiet))
    except KeyboardInterrupt:
        return 0


async def _serve_until_signalled(config, quiet: bool) -> int:
    import signal

    from repro.serve.server import DerivationServer

    server = DerivationServer(config)
    await server.start()
    host, port = server.address
    if not quiet:
        print(
            f"serve: listening on http://{host}:{port} "
            f"(workers={config.workers}/{config.worker_kind}, "
            f"queue-limit={config.queue_limit}, "
            f"cache={'off' if config.cache_dir is None else config.cache_dir})",
            file=sys.stderr,
        )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # non-Unix event loops
            pass
    await stop.wait()
    if not quiet:
        print("serve: draining ...", file=sys.stderr)
    await server.shutdown()
    if not quiet:
        print(server.digest(), file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# ``repro loadgen``
# ----------------------------------------------------------------------
def make_loadgen_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro loadgen",
        description="Closed-loop load generator against a running "
        "`repro serve`: N connections each send one request at a time "
        "from a shared budget, and the run emits one repro.obs.loadgen/v2 "
        "report on stdout (exact latency percentiles, throughput, "
        "ok/shed/failed plus recovered/exhausted retry classification).  "
        "Exit status is 1 when any request failed — or, with --retries, "
        "when any retry budget was exhausted (503 sheds that recovered "
        "do not fail the run).  See docs/serving.md and "
        "docs/robustness.md.",
    )
    parser.add_argument(
        "service",
        help="path to the service specification to request, or '-' for stdin",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="server address (default %(default)s)"
    )
    parser.add_argument(
        "--port", type=int, default=8437, help="server port (default %(default)s)"
    )
    parser.add_argument(
        "--op", choices=["derive", "lint", "profile"], default="derive",
        help="operation to request (default %(default)s)",
    )
    parser.add_argument(
        "--connections", type=int, default=16, metavar="N",
        help="concurrent closed-loop connections (default %(default)s)",
    )
    parser.add_argument(
        "--requests", type=int, default=100, metavar="N",
        help="total requests across all connections (default %(default)s)",
    )
    parser.add_argument(
        "--timeout", type=float, default=60.0, metavar="SECONDS",
        help="per-request client timeout (default %(default)s)",
    )
    parser.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry each request up to N extra times (exponential "
        "backoff, Retry-After honored); 0 disables (default)",
    )
    parser.add_argument(
        "--retry-seed", type=int, default=0, metavar="N",
        help="seed of the deterministic retry jitter (default %(default)s)",
    )
    parser.add_argument(
        "--mixed-choice", action="store_true",
        help="request derivation with the arbiter-protocol R1 extension",
    )
    parser.add_argument(
        "--indent", type=int, default=2, metavar="N",
        help="JSON indentation; 0 emits the compact one-line form",
    )
    _add_common_flags(parser)
    return parser


def loadgen_main(argv: Optional[Sequence[str]] = None) -> int:
    try:
        return _loadgen_main(argv)
    except BrokenPipeError:
        return _broken_pipe_exit()


def _loadgen_main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.serve.loadgen import render_digest, run_loadgen

    args = make_loadgen_parser().parse_args(argv)
    try:
        text = (
            sys.stdin.read()
            if args.service == "-"
            else open(args.service, encoding="utf-8").read()
        )
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    options = {"mixed_choice": True} if args.mixed_choice else None
    retry = None
    if args.retries > 0:
        from repro.serve.resilience import RetryPolicy

        retry = RetryPolicy(
            max_attempts=args.retries + 1, seed=args.retry_seed
        )
    report = asyncio.run(
        run_loadgen(
            args.host,
            args.port,
            text,
            op=args.op,
            options=options,
            connections=args.connections,
            requests=args.requests,
            timeout=args.timeout,
            retry=retry,
        )
    )
    indent = args.indent if args.indent > 0 else None
    print(json.dumps(report, indent=indent, sort_keys=True))
    if not args.quiet:
        print(render_digest(report), file=sys.stderr)
    if report["failed"]:
        return 1
    if retry is not None and report["exhausted"]:
        return 1
    return 0


# ----------------------------------------------------------------------
# ``repro chaos``
# ----------------------------------------------------------------------
def make_chaos_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description="Prove the serve stack's resilience under a named "
        "fault plan: boot an in-process server with deterministic fault "
        "injection active, fire a retrying loadgen burst while probing "
        "/healthz, and emit one repro.obs.chaos/v1 report on stdout.  "
        "Exit status is 0 only when zero requests were lost and the "
        "server stayed alive throughout.  See docs/robustness.md.",
    )
    parser.add_argument(
        "plan",
        nargs="?",
        default=None,
        help="built-in fault plan name, or a fault-plan JSON file",
    )
    parser.add_argument(
        "--list-plans", action="store_true",
        help="print the built-in fault plans and exit",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="fault-schedule seed (default %(default)s)",
    )
    parser.add_argument(
        "--spec", default=None, metavar="PATH",
        help="service specification to request (default: a tiny built-in)",
    )
    parser.add_argument(
        "--op", choices=["derive", "lint", "profile"], default="derive",
        help="operation to request (default %(default)s)",
    )
    parser.add_argument(
        "--connections", type=int, default=4, metavar="N",
        help="concurrent closed-loop connections (default %(default)s; "
        "use 1 for an exactly replayable run)",
    )
    parser.add_argument(
        "--requests", type=int, default=40, metavar="N",
        help="total requests across all connections (default %(default)s)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="server worker pool size (default %(default)s)",
    )
    parser.add_argument(
        "--worker-kind", choices=["process", "thread"], default="thread",
        help="thread pool (default: fast, kills simulated) or process "
        "pool (kills are real os._exit crashes)",
    )
    parser.add_argument(
        "--retries", type=int, default=5, metavar="N",
        help="client retry budget per request (default %(default)s)",
    )
    parser.add_argument(
        "--indent", type=int, default=2, metavar="N",
        help="JSON indentation; 0 emits the compact one-line form",
    )
    _add_common_flags(parser)
    return parser


def chaos_main(argv: Optional[Sequence[str]] = None) -> int:
    try:
        return _chaos_main(argv)
    except BrokenPipeError:
        return _broken_pipe_exit()


def _chaos_main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.chaos import ChaosError, list_plans
    from repro.chaos.runner import (
        DEFAULT_SPEC,
        default_retry,
        render_digest,
        resolve_plan,
        run_chaos,
    )
    from repro.serve.resilience import RetryPolicy

    args = make_chaos_parser().parse_args(argv)
    if args.list_plans:
        for line in list_plans():
            print(line)
        return 0
    if args.plan is None:
        make_chaos_parser().error("no fault plan given (see --list-plans)")
    try:
        plan = resolve_plan(args.plan, args.seed)
    except ChaosError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    spec = DEFAULT_SPEC
    if args.spec is not None:
        try:
            spec = (
                sys.stdin.read()
                if args.spec == "-"
                else open(args.spec, encoding="utf-8").read()
            )
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    retry = None
    if args.retries > 0:
        base = default_retry(plan)
        retry = RetryPolicy(
            max_attempts=args.retries + 1,
            base_delay=base.base_delay,
            multiplier=base.multiplier,
            max_delay=base.max_delay,
            jitter=base.jitter,
            seed=plan.seed,
        )
    report = asyncio.run(
        run_chaos(
            plan,
            spec=spec,
            op=args.op,
            connections=args.connections,
            requests=args.requests,
            workers=args.workers,
            worker_kind=args.worker_kind,
            retry=retry,
        )
    )
    indent = args.indent if args.indent > 0 else None
    print(json.dumps(report, indent=indent, sort_keys=True))
    if not args.quiet:
        print(render_digest(report), file=sys.stderr)
    return 0 if report["verdict"]["ok"] else 1


# ----------------------------------------------------------------------
# ``repro lint``
# ----------------------------------------------------------------------
def make_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Static analysis of LOTOS service specifications: "
        "admissibility (R1-R3, grammar) plus lint rules for legal-but-"
        "suspect constructs.  See docs/lint.md for the rule catalogue.",
    )
    parser.add_argument(
        "specs",
        nargs="*",
        help="specification files, or '-' for stdin",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format (json follows the stable schema in docs/lint.md)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on warnings, not only on errors",
    )
    parser.add_argument(
        "--mixed-choice",
        action="store_true",
        help="lint for a --mixed-choice derivation (arbiter-resolvable "
        "R1 violations and L009 are not reported)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the report; the exit status is the verdict",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {_package_version()}",
    )
    return parser


def lint_main(argv: Optional[Sequence[str]] = None) -> int:
    try:
        return _lint_main(argv)
    except BrokenPipeError:
        return _broken_pipe_exit()


def _lint_main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.analysis.lint import RULES, lint_text

    args = make_lint_parser().parse_args(argv)
    if args.list_rules:
        for rule in sorted(RULES.values(), key=lambda r: r.id):
            print(f"{rule.id}  {rule.name:<26} {rule.severity:<8} {rule.summary}")
        return 0
    if not args.specs:
        make_lint_parser().error("no specification files given")

    results = []
    for path in args.specs:
        try:
            text = (
                sys.stdin.read()
                if path == "-"
                else open(path, encoding="utf-8").read()
            )
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        results.append(
            lint_text(
                text,
                source="<stdin>" if path == "-" else path,
                mixed_choice=args.mixed_choice,
            )
        )

    if args.quiet:
        pass  # exit status only, grep -q style
    elif args.format == "json":
        if len(results) == 1:
            print(results[0].render_json())
        else:
            document = {
                "version": results[0].to_dict()["version"],
                "results": [result.to_dict() for result in results],
            }
            print(json.dumps(document, indent=2))
    else:
        for result in results:
            print(result.render_text())

    failed = any(
        not result.ok or (args.strict and result.warnings) for result in results
    )
    return 1 if failed else 0


# ----------------------------------------------------------------------
# ``repro`` subcommand dispatcher
# ----------------------------------------------------------------------
_USAGE = """usage: repro <command> [options]

commands:
  lint      static analysis of a service specification (repro lint --help)
  derive    derive protocol entities, lotos-pg style (repro derive --help)
  profile   derive + verify + run; one JSON report (repro profile --help)
  batch     parallel, cached derivation of a corpus (repro batch --help)
  serve     long-running asyncio derivation server (repro serve --help)
  loadgen   closed-loop load generator for serve (repro loadgen --help)
  chaos     fault-injected resilience run against serve (repro chaos --help)

options:
  --version print the package version and exit
"""


def repro_main(argv: Optional[Sequence[str]] = None) -> int:
    arguments: List[str] = list(sys.argv[1:] if argv is None else argv)
    if not arguments or arguments[0] in ("-h", "--help"):
        try:
            print(_USAGE, end="")
        except BrokenPipeError:
            return _broken_pipe_exit()
        return 0 if arguments else 2
    if arguments[0] in ("--version", "-V"):
        print(f"repro {_package_version()}")
        return 0
    command, rest = arguments[0], arguments[1:]
    if command == "lint":
        return lint_main(rest)
    if command == "derive":
        return main(rest)
    if command == "profile":
        return profile_main(rest)
    if command == "batch":
        return batch_main(rest)
    if command == "serve":
        return serve_main(rest)
    if command == "loadgen":
        return loadgen_main(rest)
    if command == "chaos":
        return chaos_main(rest)
    print(f"error: unknown command {command!r}\n{_USAGE}", file=sys.stderr, end="")
    return 2


if __name__ == "__main__":
    # The subcommand dispatcher, NOT the bare `derive` parser: running
    # this file directly must behave exactly like the `repro` script
    # (`python src/repro/cli.py lint ...` used to hit the wrong parser).
    raise SystemExit(repro_main())
