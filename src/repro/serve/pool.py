"""The derivation server's warm worker pool.

One :class:`WorkerPool` lives for the whole life of the server: the
interpreter + parse startup cost that every one-shot CLI invocation
pays is paid once here, at boot, and every request after that only
ships ``(op, text, options)`` across the executor boundary.

The pool runs the same picklable task entry points as the batch
scheduler — :data:`repro.batch.workers.TASKS` via the containment
wrapper :func:`repro.batch.workers.run_task` — so serve and batch
cannot drift (one entry point registry, one failure-document shape,
one executor constructor).

Robustness contract:

* **per-request containment** — ``run_task`` settles every exception
  *inside* the worker; nothing a bad spec does can raise on this side;
* **per-request timeout** — :meth:`WorkerPool.run` abandons a task
  that outlives its budget and answers with the shared timeout
  document; the worker process is left to finish (or be recycled);
* **broken-pool respawn** — a worker pool that dies (OOM-killed
  child, interpreter crash) fails only the requests in flight; the
  pool is respawned and the next request runs normally.

``kind="thread"`` swaps the process pool for threads — no pickling,
no fork cost — which tests, benchmarks and ``repro serve --workers-kind
thread`` use; ``process`` is the production default.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import BrokenExecutor, ThreadPoolExecutor
from typing import Any, Callable, Dict, Mapping, Optional

from repro.batch.workers import (
    error_document,
    make_executor,
    run_task,
    timeout_document,
)
from repro.chaos import PoolSpawnInjected, get_chaos


class WorkerPool:
    """A respawning executor bridge from asyncio to worker tasks."""

    def __init__(
        self,
        workers: int = 2,
        kind: str = "process",
        executor_factory: Optional[Callable[[int], Any]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("serve needs at least one worker")
        if kind not in ("process", "thread"):
            raise ValueError(f"unknown worker kind {kind!r}")
        self.workers = workers
        self.kind = kind
        self.respawns = 0
        self._executor_factory = executor_factory
        self._executor: Optional[Any] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._executor is None:
            self._executor = self._make()

    def _make(self) -> Any:
        chaos = get_chaos()
        if chaos is not None:
            directive = chaos.decide("pool.spawn", worker_kind=self.kind)
            if directive is not None:
                raise PoolSpawnInjected(
                    "chaos: injected executor-construction failure"
                )
        if self.kind == "thread" and self._executor_factory is None:
            return ThreadPoolExecutor(self.workers)
        return make_executor(self.workers, self._executor_factory)

    def _respawn(self) -> None:
        with self._lock:
            dead, self._executor = self._executor, None
            if dead is not None:
                try:
                    dead.shutdown(wait=False, cancel_futures=True)
                except Exception:
                    pass
            try:
                self._executor = self._make()
            except Exception:
                # Stay down (spawn itself failed — injected or real);
                # the next request's start() tries again rather than
                # wedging the server now.
                self._executor = None
            else:
                self.respawns += 1

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait, cancel_futures=not wait)

    # ------------------------------------------------------------------
    async def run(
        self,
        op: str,
        text: str,
        options: Optional[Mapping[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Run one operation on the pool; always returns an envelope.

        The result is a ``run_task`` envelope (``{"ok": True, "result":
        ...}`` or ``{"ok": False, "kind": ..., "error": ...}``), with
        two parent-side failure kinds added: ``timeout`` for a task
        that outlived ``timeout`` seconds, and ``internal`` with a
        respawn for a pool that broke underneath it.

        Fault injection: the chaos controller (if active) is consulted
        here — the worker process cannot hold it — and its directive
        ships with the task.  Parent-side failure envelopes caused by
        a directive carry ``"injected": True``.
        """
        directive = None
        chaos = get_chaos()
        if chaos is not None:
            directive = chaos.decide("worker.task", op=op)
        injected = directive is not None

        def _tag(envelope: Dict[str, Any]) -> Dict[str, Any]:
            if injected and not envelope.get("ok"):
                envelope["injected"] = True
            return envelope

        def _submit() -> Any:
            if self._executor is None:
                self.start()
            return self._executor.submit(run_task, op, text, options, directive)

        try:
            future = _submit()
        except (BrokenExecutor, RuntimeError, PoolSpawnInjected) as exc:
            # The pool broke between requests: respawn and retry once.
            self._respawn()
            try:
                future = _submit()
            except Exception as exc2:  # still down: give up on this request
                envelope = {"ok": False, "kind": "internal",
                            "error": error_document(exc2)}
                if isinstance(exc2, PoolSpawnInjected) or isinstance(
                    exc, PoolSpawnInjected
                ):
                    envelope["injected"] = True
                return envelope
            del exc
        try:
            return _tag(await asyncio.wait_for(
                asyncio.wrap_future(future), timeout
            ))
        except asyncio.TimeoutError:
            future.cancel()
            return _tag({
                "ok": False,
                "kind": "timeout",
                "error": timeout_document(timeout),
            })
        except BrokenExecutor as exc:
            self._respawn()
            return _tag(
                {"ok": False, "kind": "internal", "error": error_document(exc)}
            )
        except asyncio.CancelledError:
            future.cancel()
            raise
        except Exception as exc:  # cancelled future during shutdown, etc.
            return _tag(
                {"ok": False, "kind": "internal", "error": error_document(exc)}
            )
