"""Closed-loop load generator for the derivation server.

``N`` connections each run a closed loop — send one request, wait for
the response, immediately send the next — against a shared budget of
``requests`` total, which makes offered load self-limiting (each
connection has at most one request outstanding) and latency numbers
honest: there is no coordinated-omission window because the next
request is not scheduled until the previous one answers.

The outcome is one ``repro.obs.loadgen/v2`` JSON report: request
counts by verdict (``ok`` 2xx / ``shed`` 503 / ``failed`` everything
else including transport errors), status and cache-verdict
distributions, wall-clock throughput, and exact latency percentiles
computed from the raw per-request samples (not bucket estimates).

v2 adds the retry outcome classification.  With a
:class:`repro.serve.resilience.RetryPolicy` installed (``retry=`` /
``repro loadgen --retries``), each request is further classified:

* ``recovered`` — failed at least once, then landed a 2xx (a subset
  of ``ok``; the shed-then-recovered story the chaos suite proves);
* ``exhausted`` — the retry budget ran out still failing (these land
  in ``shed``/``failed`` by their final status);
* ``retries`` — total attempts beyond first, across all requests.

Latency samples then measure the whole journey (attempts + backoff),
because that is what a caller experiences.

This is how the server's performance claims stay *measured*: the CI
``serve-smoke`` job runs two identical bursts and asserts zero failed
requests and a 100%-cache-hit second burst, the ``chaos-smoke`` job
asserts zero lost requests under fault plans, and
``benchmarks/bench_serve.py`` tracks warm-cache throughput.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, List, Mapping, Optional

from repro.obs.schema import LOADGEN_SCHEMA
from repro.serve.client import AsyncServeClient, ServeError
from repro.serve.resilience import RetryPolicy


def percentile(samples: List[float], q: float) -> float:
    """Exact nearest-rank percentile of ``samples`` (which must be sorted)."""
    if not samples:
        return 0.0
    rank = max(1, -(-q * len(samples) // 100))  # ceil(q/100 * n)
    return samples[min(len(samples), int(rank)) - 1]


async def run_loadgen(
    host: str,
    port: int,
    spec: str,
    op: str = "derive",
    options: Optional[Mapping[str, Any]] = None,
    connections: int = 16,
    requests: int = 100,
    timeout: float = 60.0,
    retry: Optional[RetryPolicy] = None,
) -> Dict[str, Any]:
    """Drive ``requests`` total requests over ``connections`` loops.

    Returns the ``repro.obs.loadgen/v2`` report.  Never raises on
    per-request failures — they become ``failed`` rows (status ``0``
    for transport errors); the caller decides what failure means.
    ``retry`` installs a resilience policy on every connection's
    client and enables the recovered/exhausted classification.
    """
    if connections < 1:
        raise ValueError("connections must be >= 1")
    if requests < 1:
        raise ValueError("requests must be >= 1")

    remaining = requests
    latencies_ms: List[float] = []
    statuses: Dict[str, int] = {}
    cache_verdicts = {"hit": 0, "miss": 0, "off": 0}
    ok = shed = failed = recovered = exhausted = retries = 0

    def _classify_journey(client: AsyncServeClient, succeeded: bool) -> None:
        nonlocal recovered, exhausted, retries
        state = client.last_retry
        if state is None:
            return
        retries += state.attempts - 1
        if state.exhausted:
            exhausted += 1
        elif succeeded and state.retried:
            recovered += 1

    async def one_connection(index: int) -> None:
        nonlocal remaining, ok, shed, failed
        client = AsyncServeClient(host, port, timeout=timeout, retry=retry)
        # Distinct deterministic jitter stream per connection.
        client._request_index = index * max(requests, 1)
        try:
            while remaining > 0:
                remaining -= 1
                started = time.perf_counter()
                try:
                    status, envelope = await client.post_op(op, spec, options)
                except ServeError:
                    failed += 1
                    statuses["0"] = statuses.get("0", 0) + 1
                    _classify_journey(client, succeeded=False)
                    continue
                latencies_ms.append((time.perf_counter() - started) * 1000)
                statuses[str(status)] = statuses.get(str(status), 0) + 1
                verdict = (
                    envelope.get("cache") if isinstance(envelope, dict) else None
                )
                if verdict in cache_verdicts:
                    cache_verdicts[verdict] += 1
                if 200 <= status < 300:
                    ok += 1
                elif status == 503:
                    shed += 1
                else:
                    failed += 1
                _classify_journey(client, succeeded=200 <= status < 300)
        finally:
            await client.close()

    started = time.perf_counter()
    await asyncio.gather(
        *(
            one_connection(index)
            for index in range(min(connections, requests))
        )
    )
    duration_s = time.perf_counter() - started

    latencies_ms.sort()
    completed = ok + shed + failed
    return {
        "schema": LOADGEN_SCHEMA,
        "op": op,
        "target": f"{host}:{port}",
        "connections": connections,
        "requests": requests,
        "completed": completed,
        "ok": ok,
        "shed": shed,
        "failed": failed,
        "recovered": recovered,
        "exhausted": exhausted,
        "retries": retries,
        "statuses": statuses,
        "cache": cache_verdicts,
        "duration_s": round(duration_s, 6),
        "throughput_rps": round(completed / duration_s, 3)
        if duration_s > 0
        else 0.0,
        "latency_ms": {
            "mean": round(
                sum(latencies_ms) / len(latencies_ms), 3
            )
            if latencies_ms
            else 0.0,
            "p50": round(percentile(latencies_ms, 50), 3),
            "p95": round(percentile(latencies_ms, 95), 3),
            "p99": round(percentile(latencies_ms, 99), 3),
            "max": round(latencies_ms[-1], 3) if latencies_ms else 0.0,
        },
    }


def render_digest(report: Dict[str, Any]) -> str:
    """The stderr one-liner ``repro loadgen`` prints."""
    latency = report["latency_ms"]
    line = (
        f"loadgen: {report['op']} x{report['completed']} over "
        f"{report['connections']} connection(s): "
        f"{report['ok']} ok, {report['shed']} shed, {report['failed']} failed; "
        f"{report['throughput_rps']:.1f} req/s; "
        f"p50={latency['p50']:.1f}ms p95={latency['p95']:.1f}ms "
        f"p99={latency['p99']:.1f}ms"
    )
    if report.get("retries"):
        line += (
            f"; {report['retries']} retry(ies), "
            f"{report['recovered']} recovered, "
            f"{report['exhausted']} exhausted"
        )
    return line
