"""Client-side resilience: retry/backoff, circuit breaking, deadlines.

The derivation server already contains failures on its side — 503 +
``Retry-After`` sheds, 504 timeouts, 500 + pool respawn — but until
this layer the clients just reported them.  Here is the other half of
the contract, proven against :mod:`repro.chaos`'s fault plans:

* :class:`RetryPolicy` — exponential backoff with **deterministic**
  (seeded) jitter, the server's ``Retry-After`` hint honored, and two
  deadline budgets: per attempt and total (sleeps count against the
  total, so a retry loop can never outlive its caller's patience);
* :class:`CircuitBreaker` — classic closed/open/half-open.  The time
  source is injectable (``clock=``) so chaos tests and the breaker's
  own unit tests advance time without sleeping;
* :class:`RetryState` — one request's journey through a policy:
  attempt count, statuses seen, sleep total.  The clients expose the
  final state so the load generator can classify outcomes
  (ok / shed-then-recovered / exhausted) without re-deriving them.

Everything is standard-library only, and a client constructed without
a policy behaves exactly as before — the retry layer costs nothing
until it is asked for (``benchmarks/bench_serve.py`` gates this).

Retries record ``client.retry.*`` metrics into the active
:mod:`repro.obs.metrics` registry (a no-op unless one is installed).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional

from repro.obs.metrics import get_registry

#: HTTP statuses a retry can help with: the server shed (503), timed a
#: worker out (504) or broke a worker (500).  4xx are the caller's
#: fault and never retried.
DEFAULT_RETRY_STATUSES: FrozenSet[int] = frozenset({500, 503, 504})


class CircuitOpenError(Exception):
    """The circuit breaker refused the request without sending it."""


@dataclass(frozen=True)
class RetryPolicy:
    """How (and how long) a client keeps trying one request.

    ``max_attempts`` counts the first try: ``max_attempts=1`` means no
    retries at all.  Backoff for attempt ``n`` (1-based) is::

        delay = min(max_delay, base_delay * multiplier ** (n - 1))
        delay *= 1 - jitter * rng.random()        # deterministic jitter

    then raised to the server's ``Retry-After`` hint when one arrived
    and ``honor_retry_after`` is set.  ``total_deadline`` bounds the
    whole journey — attempts *and* backoff sleeps; once the remaining
    budget cannot cover the next sleep the policy gives up (the
    request is *exhausted*).  ``per_attempt_timeout`` overrides the
    client's transport timeout for each individual attempt.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    total_deadline: Optional[float] = None
    per_attempt_timeout: Optional[float] = None
    retry_statuses: FrozenSet[int] = DEFAULT_RETRY_STATUSES
    honor_retry_after: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1:
            raise ValueError("multiplier must be >= 1")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")
        if self.total_deadline is not None and self.total_deadline <= 0:
            raise ValueError("total_deadline must be positive (or None)")

    # ------------------------------------------------------------------
    def start(self, seed_offset: int = 0) -> "RetryState":
        """A fresh per-request state (jitter stream seeded by policy)."""
        return RetryState(policy=self, seed_offset=seed_offset)

    def retryable_status(self, status: int) -> bool:
        return status in self.retry_statuses


@dataclass
class RetryState:
    """One request's live journey through a :class:`RetryPolicy`.

    The clients keep the final state around (``client.last_retry``) so
    callers — the load generator above all — can read how the request
    got where it got: how many attempts, which statuses, how long the
    backoff slept, and whether the budget ran out (*exhausted*).
    """

    policy: RetryPolicy
    seed_offset: int = 0
    attempts: int = 0
    statuses: List[int] = field(default_factory=list)
    transport_errors: int = 0
    slept_s: float = 0.0
    exhausted: bool = False
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(f"{self.policy.seed}:{self.seed_offset}")

    @property
    def retried(self) -> bool:
        return self.attempts > 1

    def record_attempt(self, status: Optional[int]) -> None:
        """Count one attempt; ``status=None`` means a transport error."""
        self.attempts += 1
        if status is None:
            self.transport_errors += 1
            self.statuses.append(0)
        else:
            self.statuses.append(status)

    def next_delay(self, retry_after: Optional[float] = None) -> Optional[float]:
        """Backoff before the next attempt, or ``None`` to give up.

        ``None`` marks the request exhausted: either the attempt
        budget is spent or the total deadline cannot cover the sleep.
        Call *after* :meth:`record_attempt`.
        """
        if self.attempts >= self.policy.max_attempts:
            self.exhausted = True
            return None
        delay = min(
            self.policy.max_delay,
            self.policy.base_delay * self.policy.multiplier ** (self.attempts - 1),
        )
        delay *= 1 - self.policy.jitter * self._rng.random()
        if retry_after is not None and self.policy.honor_retry_after:
            delay = max(delay, retry_after)
        if (
            self.policy.total_deadline is not None
            and self.slept_s + delay > self.policy.total_deadline
        ):
            self.exhausted = True
            return None
        self.slept_s += delay
        return delay

    def finish(self, recovered: bool) -> None:
        """Publish the journey's ``client.retry.*`` metrics."""
        registry = get_registry()
        registry.counter(
            "client.retry.attempts", help="request attempts, first tries included"
        ).inc(self.attempts)
        if self.attempts > 1:
            registry.counter(
                "client.retry.retries", help="attempts beyond the first"
            ).inc(self.attempts - 1)
        if recovered:
            registry.counter(
                "client.retry.recovered",
                help="requests that failed at least once and then succeeded",
            ).inc()
        if self.exhausted:
            registry.counter(
                "client.retry.exhausted",
                help="requests whose retry budget ran out",
            ).inc()
        if self.slept_s:
            registry.counter(
                "client.retry.sleep_s", help="total backoff slept"
            ).inc(self.slept_s)


def parse_retry_after(value: Optional[str]) -> Optional[float]:
    """The delay-seconds form of ``Retry-After`` (dates unsupported)."""
    if value is None:
        return None
    try:
        seconds = float(value.strip())
    except (ValueError, AttributeError):
        return None
    return max(seconds, 0.0)


class CircuitBreaker:
    """Closed / open / half-open breaker with an injectable clock.

    * **closed** — requests flow; ``failure_threshold`` *consecutive*
      failures trip the breaker open;
    * **open** — requests are refused on the spot (the caller raises
      :class:`CircuitOpenError`) until ``reset_timeout`` seconds of
      the injected ``clock`` have passed;
    * **half-open** — up to ``half_open_max`` probe requests may
      proceed; one success closes the breaker, one failure reopens it
      (and restarts the timeout).

    The clock defaults to :func:`time.monotonic`; chaos tests inject a
    fake so breaker transitions are exact, not sleep-raced.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 5.0,
        half_open_max: int = 1,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        if half_open_max < 1:
            raise ValueError("half_open_max must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_max = half_open_max
        self.clock = clock
        self._failures = 0
        self._state = "closed"
        self._opened_at: Optional[float] = None
        self._half_open_inflight = 0
        self.opens = 0  # times the breaker tripped (for reports)

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        self._maybe_half_open()
        return self._state

    def _maybe_half_open(self) -> None:
        if (
            self._state == "open"
            and self._opened_at is not None
            and self.clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = "half-open"
            self._half_open_inflight = 0

    def allow(self) -> bool:
        """May one request proceed right now?"""
        self._maybe_half_open()
        if self._state == "closed":
            return True
        if self._state == "half-open":
            if self._half_open_inflight < self.half_open_max:
                self._half_open_inflight += 1
                return True
            return False
        return False

    def record_success(self) -> None:
        self._failures = 0
        if self._state == "half-open":
            self._state = "closed"
        self._half_open_inflight = 0

    def record_failure(self) -> None:
        self._failures += 1
        if self._state == "half-open" or (
            self._state == "closed"
            and self._failures >= self.failure_threshold
        ):
            self._state = "open"
            self._opened_at = self.clock()
            self.opens += 1
            self._half_open_inflight = 0
