"""Clients for the derivation server.

Two flavors, both standard-library only:

* :class:`ServeClient` — a blocking client over ``http.client`` with
  one persistent connection; the right tool for scripts, examples and
  benchmarks;
* :class:`AsyncServeClient` — an asyncio client over one persistent
  connection, sharing the server's own wire implementation
  (:func:`repro.serve.protocol.read_response`); the load generator
  runs many of these concurrently.

Both speak the versioned envelopes (``repro.serve.request/v1`` in,
``repro.serve.response/v1`` out).  Transport failures raise
:class:`ServeError`; HTTP-level failures do *not* raise — the response
envelope carries ``ok``/``status``/``error`` and callers decide.  When
the server sheds with ``Retry-After`` the parsed delay is surfaced as
``envelope["retry_after"]`` (seconds) so callers — and the retry layer
— can honor it.

Both clients optionally take a :class:`repro.serve.resilience.RetryPolicy`
and/or :class:`~repro.serve.resilience.CircuitBreaker`.  Without them
(the default) behaviour is exactly the pre-resilience single attempt;
with a policy, retryable statuses (500/503/504) and transport errors
are retried under backoff and deadline budgets, and the final
:class:`~repro.serve.resilience.RetryState` is exposed as
``client.last_retry`` for outcome classification.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import time
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.obs.schema import SERVE_REQUEST_SCHEMA
from repro.serve.protocol import ProtocolError, read_response
from repro.serve.resilience import (
    CircuitBreaker,
    CircuitOpenError,
    RetryPolicy,
    RetryState,
    parse_retry_after,
)


class ServeError(Exception):
    """The server could not be reached or broke the wire protocol.

    ``retry_after`` carries the server's parsed ``Retry-After`` hint
    (seconds) when the failure came with one, else ``None``.
    """

    def __init__(self, message: str, retry_after: Optional[float] = None):
        super().__init__(message)
        self.retry_after = retry_after


def request_document(
    spec: str, options: Optional[Mapping[str, Any]] = None
) -> Dict[str, Any]:
    """One ``repro.serve.request/v1`` body."""
    document: Dict[str, Any] = {"schema": SERVE_REQUEST_SCHEMA, "spec": spec}
    if options:
        document["options"] = dict(options)
    return document


def _attach_retry_after(
    parsed: Any, retry_after: Optional[float]
) -> Optional[float]:
    """Surface a parsed ``Retry-After`` on the envelope; returns it."""
    if retry_after is not None and isinstance(parsed, dict):
        parsed["retry_after"] = retry_after
    return retry_after


class ServeClient:
    """Blocking client; one keep-alive connection, reconnects on demand."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8437,
        timeout: float = 60.0,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry
        self.breaker = breaker
        self.last_retry: Optional[RetryState] = None
        self._request_index = 0
        self._connection: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            timeout = self.timeout
            if self.retry is not None and self.retry.per_attempt_timeout:
                timeout = self.retry.per_attempt_timeout
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=timeout
            )
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _request_once(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        headers: Dict[str, str],
    ) -> Tuple[int, Dict[str, Any], Optional[float]]:
        """One attempt (with the historical stale-keep-alive reconnect)."""
        for attempt in (1, 2):  # one reconnect on a stale keep-alive
            connection = self._connect()
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                payload = response.read()
                break
            except (ConnectionError, http.client.HTTPException, OSError) as exc:
                self.close()
                if attempt == 2:
                    raise ServeError(
                        f"{method} {path} to {self.host}:{self.port} "
                        f"failed: {exc}"
                    ) from exc
        try:
            parsed = json.loads(payload.decode("utf-8")) if payload else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(f"non-JSON response body: {exc}") from exc
        retry_after = _attach_retry_after(
            parsed, parse_retry_after(response.getheader("Retry-After"))
        )
        return response.status, parsed, retry_after

    def _guarded_once(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        headers: Dict[str, str],
    ) -> Tuple[int, Dict[str, Any], Optional[float]]:
        """One attempt through the circuit breaker (if any)."""
        if self.breaker is not None and not self.breaker.allow():
            raise CircuitOpenError(
                f"circuit open for {self.host}:{self.port}"
            )
        try:
            status, parsed, retry_after = self._request_once(
                method, path, body, headers
            )
        except ServeError:
            if self.breaker is not None:
                self.breaker.record_failure()
            raise
        if self.breaker is not None:
            if status >= 500:
                self.breaker.record_failure()
            else:
                self.breaker.record_success()
        return status, parsed, retry_after

    def request(
        self,
        method: str,
        path: str,
        document: Optional[Mapping[str, Any]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        """One round trip; returns ``(status, parsed JSON body)``.

        With a :class:`RetryPolicy` installed, retryable statuses and
        transport errors are retried under backoff until the policy's
        budgets run out; the final journey is ``self.last_retry``.
        """
        body = (
            json.dumps(document).encode("utf-8")
            if document is not None
            else None
        )
        headers = {"Content-Type": "application/json"} if body else {}
        if self.retry is None:
            status, parsed, _ = self._guarded_once(method, path, body, headers)
            return status, parsed
        self._request_index += 1
        state = self.retry.start(seed_offset=self._request_index)
        self.last_retry = state
        while True:
            error: Optional[ServeError] = None
            status: Optional[int] = None
            parsed: Dict[str, Any] = {}
            retry_after: Optional[float] = None
            try:
                status, parsed, retry_after = self._guarded_once(
                    method, path, body, headers
                )
            except ServeError as exc:
                error = exc
                retry_after = exc.retry_after
            state.record_attempt(status)
            if error is None and not self.retry.retryable_status(status):
                state.finish(recovered=state.retried and status < 400)
                return status, parsed
            delay = state.next_delay(retry_after)
            if delay is None:  # budget spent: exhausted
                state.finish(recovered=False)
                if error is not None:
                    raise error
                return status, parsed
            time.sleep(delay)

    # ------------------------------------------------------------------
    def _op(
        self, op: str, spec: str, options: Optional[Mapping[str, Any]]
    ) -> Dict[str, Any]:
        _, envelope = self.request(
            "POST", f"/v1/{op}", request_document(spec, options)
        )
        return envelope

    def derive(
        self, spec: str, options: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, Any]:
        """Derive; returns the response envelope (check ``ok``)."""
        return self._op("derive", spec, options)

    def lint(
        self, spec: str, options: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, Any]:
        return self._op("lint", spec, options)

    def profile(
        self, spec: str, options: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, Any]:
        return self._op("profile", spec, options)

    def healthz(self) -> Dict[str, Any]:
        status, document = self.request("GET", "/healthz")
        if status != 200:
            raise ServeError(f"/healthz answered {status}")
        return document

    def metrics(self) -> Dict[str, Any]:
        status, document = self.request("GET", "/metrics")
        if status != 200:
            raise ServeError(f"/metrics answered {status}")
        return document


class AsyncServeClient:
    """One persistent asyncio connection; the load generator's unit."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 60.0,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry
        self.breaker = breaker
        self.last_retry: Optional[RetryState] = None
        self._request_index = 0
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    @classmethod
    async def connect(
        cls, host: str, port: int, timeout: float = 60.0, **kwargs: Any
    ) -> "AsyncServeClient":
        client = cls(host, port, timeout=timeout, **kwargs)
        await client._ensure_connected()
        return client

    async def _ensure_connected(self) -> bool:
        """Connect if needed; returns True when the link was *reused*."""
        if self._writer is not None and not self._writer.is_closing():
            return True
        try:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
        except OSError as exc:
            raise ServeError(
                f"cannot connect to {self.host}:{self.port}: {exc}"
            ) from exc
        return False

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except Exception:
                pass
            self._reader = self._writer = None

    # ------------------------------------------------------------------
    async def _request_once(
        self,
        method: str,
        path: str,
        body: bytes,
    ) -> Tuple[int, Dict[str, Any], Optional[float]]:
        """One attempt; a *reused* connection that died gets one
        reconnect-and-resend before the attempt fails.

        The server drains and restarts between our requests more often
        than one would hope; the EOF only shows up when we try the
        kept-alive socket.  A fresh connection failing is a real error.
        """
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"\r\n"
        ).encode("latin-1")
        timeout = self.timeout
        if self.retry is not None and self.retry.per_attempt_timeout:
            timeout = self.retry.per_attempt_timeout
        for attempt in (1, 2):
            reused = await self._ensure_connected()
            try:
                self._writer.write(head + body)
                await self._writer.drain()
                status, headers, payload = await asyncio.wait_for(
                    read_response(self._reader), timeout=timeout
                )
                break
            except asyncio.TimeoutError as exc:
                await self.close()
                raise ServeError(
                    f"{method} {path} to {self.host}:{self.port} "
                    f"timed out after {timeout}s"
                ) from exc
            except (
                ProtocolError,
                ConnectionError,
                asyncio.IncompleteReadError,
                OSError,
            ) as exc:
                await self.close()
                if reused and attempt == 1:
                    continue  # stale keep-alive: reconnect once
                raise ServeError(
                    f"{method} {path} to {self.host}:{self.port} "
                    f"failed: {exc}"
                ) from exc
        if headers.get("connection", "").lower() == "close":
            await self.close()
        try:
            parsed = json.loads(payload.decode("utf-8")) if payload else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(f"non-JSON response body: {exc}") from exc
        retry_after = _attach_retry_after(
            parsed, parse_retry_after(headers.get("retry-after"))
        )
        return status, parsed, retry_after

    async def _guarded_once(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, Any], Optional[float]]:
        if self.breaker is not None and not self.breaker.allow():
            raise CircuitOpenError(
                f"circuit open for {self.host}:{self.port}"
            )
        try:
            status, parsed, retry_after = await self._request_once(
                method, path, body
            )
        except ServeError:
            if self.breaker is not None:
                self.breaker.record_failure()
            raise
        if self.breaker is not None:
            if status >= 500:
                self.breaker.record_failure()
            else:
                self.breaker.record_success()
        return status, parsed, retry_after

    async def request(
        self,
        method: str,
        path: str,
        document: Optional[Mapping[str, Any]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        """One round trip; raises :class:`ServeError` on transport failure.

        With a :class:`RetryPolicy` installed, retryable statuses and
        transport errors are retried under backoff; the final journey
        is ``self.last_retry``.
        """
        body = (
            json.dumps(document).encode("utf-8") if document is not None else b""
        )
        if self.retry is None:
            status, parsed, _ = await self._guarded_once(method, path, body)
            return status, parsed
        self._request_index += 1
        state = self.retry.start(seed_offset=self._request_index)
        self.last_retry = state
        while True:
            error: Optional[ServeError] = None
            status: Optional[int] = None
            parsed: Dict[str, Any] = {}
            retry_after: Optional[float] = None
            try:
                status, parsed, retry_after = await self._guarded_once(
                    method, path, body
                )
            except ServeError as exc:
                error = exc
                retry_after = exc.retry_after
            state.record_attempt(status)
            if error is None and not self.retry.retryable_status(status):
                state.finish(recovered=state.retried and status < 400)
                return status, parsed
            delay = state.next_delay(retry_after)
            if delay is None:  # budget spent: exhausted
                state.finish(recovered=False)
                if error is not None:
                    raise error
                return status, parsed
            await asyncio.sleep(delay)

    async def post_op(
        self,
        op: str,
        spec: str,
        options: Optional[Mapping[str, Any]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        return await self.request(
            "POST", f"/v1/{op}", request_document(spec, options)
        )
