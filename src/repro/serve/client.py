"""Clients for the derivation server.

Two flavors, both standard-library only:

* :class:`ServeClient` — a blocking client over ``http.client`` with
  one persistent connection; the right tool for scripts, examples and
  benchmarks;
* :class:`AsyncServeClient` — an asyncio client over one persistent
  connection, sharing the server's own wire implementation
  (:func:`repro.serve.protocol.read_response`); the load generator
  runs many of these concurrently.

Both speak the versioned envelopes (``repro.serve.request/v1`` in,
``repro.serve.response/v1`` out).  Transport failures raise
:class:`ServeError`; HTTP-level failures do *not* raise — the response
envelope carries ``ok``/``status``/``error`` and callers decide.
"""

from __future__ import annotations

import asyncio
import http.client
import json
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.obs.schema import SERVE_REQUEST_SCHEMA
from repro.serve.protocol import ProtocolError, read_response


class ServeError(Exception):
    """The server could not be reached or broke the wire protocol."""


def request_document(
    spec: str, options: Optional[Mapping[str, Any]] = None
) -> Dict[str, Any]:
    """One ``repro.serve.request/v1`` body."""
    document: Dict[str, Any] = {"schema": SERVE_REQUEST_SCHEMA, "spec": spec}
    if options:
        document["options"] = dict(options)
    return document


class ServeClient:
    """Blocking client; one keep-alive connection, reconnects on demand."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8437, timeout: float = 60.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._connection: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def request(
        self,
        method: str,
        path: str,
        document: Optional[Mapping[str, Any]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        """One round trip; returns ``(status, parsed JSON body)``."""
        body = (
            json.dumps(document).encode("utf-8")
            if document is not None
            else None
        )
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (1, 2):  # one reconnect on a stale keep-alive
            connection = self._connect()
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                payload = response.read()
                break
            except (ConnectionError, http.client.HTTPException, OSError) as exc:
                self.close()
                if attempt == 2:
                    raise ServeError(
                        f"{method} {path} to {self.host}:{self.port} "
                        f"failed: {exc}"
                    ) from exc
        try:
            parsed = json.loads(payload.decode("utf-8")) if payload else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(f"non-JSON response body: {exc}") from exc
        return response.status, parsed

    # ------------------------------------------------------------------
    def _op(
        self, op: str, spec: str, options: Optional[Mapping[str, Any]]
    ) -> Dict[str, Any]:
        _, envelope = self.request(
            "POST", f"/v1/{op}", request_document(spec, options)
        )
        return envelope

    def derive(
        self, spec: str, options: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, Any]:
        """Derive; returns the response envelope (check ``ok``)."""
        return self._op("derive", spec, options)

    def lint(
        self, spec: str, options: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, Any]:
        return self._op("lint", spec, options)

    def profile(
        self, spec: str, options: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, Any]:
        return self._op("profile", spec, options)

    def healthz(self) -> Dict[str, Any]:
        status, document = self.request("GET", "/healthz")
        if status != 200:
            raise ServeError(f"/healthz answered {status}")
        return document

    def metrics(self) -> Dict[str, Any]:
        status, document = self.request("GET", "/metrics")
        if status != 200:
            raise ServeError(f"/metrics answered {status}")
        return document


class AsyncServeClient:
    """One persistent asyncio connection; the load generator's unit."""

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    @classmethod
    async def connect(
        cls, host: str, port: int, timeout: float = 60.0
    ) -> "AsyncServeClient":
        client = cls(host, port, timeout=timeout)
        await client._ensure_connected()
        return client

    async def _ensure_connected(self) -> None:
        if self._writer is None or self._writer.is_closing():
            try:
                self._reader, self._writer = await asyncio.open_connection(
                    self.host, self.port
                )
            except OSError as exc:
                raise ServeError(
                    f"cannot connect to {self.host}:{self.port}: {exc}"
                ) from exc

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except Exception:
                pass
            self._reader = self._writer = None

    async def request(
        self,
        method: str,
        path: str,
        document: Optional[Mapping[str, Any]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        """One round trip; raises :class:`ServeError` on transport failure."""
        await self._ensure_connected()
        body = (
            json.dumps(document).encode("utf-8") if document is not None else b""
        )
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"\r\n"
        ).encode("latin-1")
        try:
            self._writer.write(head + body)
            await self._writer.drain()
            status, headers, payload = await asyncio.wait_for(
                read_response(self._reader), timeout=self.timeout
            )
        except (
            ProtocolError,
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
            OSError,
        ) as exc:
            await self.close()
            raise ServeError(
                f"{method} {path} to {self.host}:{self.port} failed: {exc}"
            ) from exc
        if headers.get("connection", "").lower() == "close":
            await self.close()
        try:
            parsed = json.loads(payload.decode("utf-8")) if payload else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(f"non-JSON response body: {exc}") from exc
        return status, parsed

    async def post_op(
        self,
        op: str,
        spec: str,
        options: Optional[Mapping[str, Any]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        return await self.request(
            "POST", f"/v1/{op}", request_document(spec, options)
        )
