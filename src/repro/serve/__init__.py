"""repro.serve — the derivation pipeline as a long-running service.

Every other entry point (``repro derive/lint/profile/batch``) is a
one-shot CLI that pays interpreter + parse startup per specification.
This package keeps the pipeline warm behind a dependency-free asyncio
HTTP/1.1 server, so heavy traffic pays that cost once:

* **protocol** (:mod:`repro.serve.protocol`) — the minimal HTTP/1.1
  framing (request/response parsing, body-size limits) shared by the
  server, the client and the load generator;
* **pool** (:mod:`repro.serve.pool`) — the warm worker pool running
  the same picklable task entry points as :mod:`repro.batch`, with
  per-request timeouts, in-worker failure containment and broken-pool
  respawn;
* **server** (:mod:`repro.serve.server`) — ``POST /v1/derive|lint|
  profile`` + ``GET /healthz|/metrics``, bounded admission with fast
  503 shedding, :class:`repro.batch.cache.EntityCache` reuse so a
  repeated spec never re-derives, graceful SIGTERM drain, and
  ``serve.*`` metrics;
* **client** (:mod:`repro.serve.client`) — blocking and asyncio
  clients speaking the ``repro.serve.request/v1`` /
  ``repro.serve.response/v1`` envelopes;
* **loadgen** (:mod:`repro.serve.loadgen`) — the closed-loop load
  generator behind ``repro loadgen`` (latency percentiles, throughput,
  ``repro.obs.loadgen/v1`` reports).

Typical embedded use::

    import asyncio
    from repro.serve import DerivationServer, ServeConfig, ServeClient

    async def main():
        server = DerivationServer(ServeConfig(port=0, worker_kind="thread"))
        await server.start()
        ...

See ``docs/serving.md`` for the wire schema, operational flags and
overload semantics.
"""

from repro.serve.client import AsyncServeClient, ServeClient, ServeError
from repro.serve.loadgen import render_digest, run_loadgen
from repro.serve.pool import WorkerPool
from repro.serve.protocol import ProtocolError, Request
from repro.serve.server import DerivationServer, ServeConfig, run_server

__all__ = [
    "AsyncServeClient",
    "DerivationServer",
    "ProtocolError",
    "Request",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "WorkerPool",
    "render_digest",
    "run_loadgen",
    "run_server",
]
