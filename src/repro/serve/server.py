"""The asyncio derivation server behind ``repro serve``.

One long-lived process turns the whole pipeline into a service::

    POST /v1/derive    {"schema": "repro.serve.request/v1", "spec": ...}
    POST /v1/lint      same body shape; options are per-op
    POST /v1/profile   same body shape
    GET  /healthz      liveness + drain state
    GET  /metrics      the server's repro.obs metrics snapshot (JSON)

Design centers, in order:

* **admission control** — at most ``queue_limit`` requests are in the
  house (queued or running).  Request ``queue_limit + 1`` is shed with
  an *immediate* 503 + ``Retry-After`` — a full server stays
  responsive by refusing work fast, never by queueing unboundedly;
* **failure containment** — a request can fail four ways (bad frame →
  4xx, bad spec → 422, timeout → 504, broken worker → 500 + pool
  respawn) and none of them takes the server, or any other in-flight
  request, down with it;
* **content-addressed reuse** — derive responses are cached in the
  same :class:`repro.batch.cache.EntityCache` store the batch runner
  uses (same key: canonical spec text + canonical options + algorithm
  version), so a repeated spec is served from disk with **zero**
  derivations;
* **graceful drain** — shutdown stops accepting, lets in-flight
  requests finish (bounded by ``drain_timeout``), then retires the
  pool.  ``repro serve`` wires this to SIGTERM/SIGINT.

Every request is counted (``serve.requests`` by route and status,
``serve.shed``, ``serve.timeouts``, ``serve.cache.hits``, latency
histograms) in the server's own :class:`~repro.obs.metrics.MetricsRegistry`
— the document ``GET /metrics`` returns — and wrapped in a
``serve.request`` span on the active tracer (a no-op unless a tracer
is installed).
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.batch.cache import EntityCache
from repro.batch.workers import stats_document
from repro.chaos import get_chaos
from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import (
    SERVE_OPS,
    SERVE_RESPONSE_SCHEMA,
    validate_serve_request,
)
from repro.obs.spans import get_tracer
from repro.serve.pool import WorkerPool
from repro.serve.protocol import (
    ProtocolError,
    Request,
    STREAM_LIMIT,
    read_request,
    render_json_response,
)

#: Latency buckets in milliseconds, tuned for "fast cache hit" through
#: "slow cold derivation".
LATENCY_BUCKETS_MS = (1, 2, 5, 10, 25, 50, 100, 250, 1000, 5000)


@dataclass
class ServeConfig:
    """Everything ``repro serve`` lets an operator turn."""

    host: str = "127.0.0.1"
    port: int = 8437
    workers: int = 2
    worker_kind: str = "process"  # "thread" for tests/benchmarks
    queue_limit: int = 64
    request_timeout: float = 30.0
    max_body_bytes: int = 1_000_000
    drain_timeout: float = 10.0
    cache_dir: Optional[str] = ".repro-cache"  # None disables the cache
    max_cache_entries: Optional[int] = None
    access_log: bool = True


class DerivationServer:
    """The long-running service; one instance per listening socket."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        cache: Optional[EntityCache] = None,
        registry: Optional[MetricsRegistry] = None,
        executor_factory=None,
    ) -> None:
        self.config = config or ServeConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        if cache is not None:
            self.cache: Optional[EntityCache] = cache
        elif self.config.cache_dir:
            self.cache = EntityCache(
                self.config.cache_dir,
                max_entries=self.config.max_cache_entries,
            )
        else:
            self.cache = None
        self.pool = WorkerPool(
            workers=self.config.workers,
            kind=self.config.worker_kind,
            executor_factory=executor_factory,
        )
        chaos = get_chaos()
        if chaos is not None:
            # Injected faults show up on GET /metrics as chaos.*.
            chaos.bind_registry(self.registry)
        self._server: Optional[asyncio.AbstractServer] = None
        self._active = 0  # admitted op requests in the house
        self._idle = asyncio.Event()
        self._idle.set()
        self._draining = False
        self._started_at: Optional[float] = None
        self._request_seq = 0
        self.port: Optional[int] = None  # actual port once listening

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Warm the pool and start listening (``port=0`` picks a free one)."""
        self.pool.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=STREAM_LIMIT,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish in-flight, retire."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            await asyncio.wait_for(
                self._idle.wait(), timeout=self.config.drain_timeout
            )
        except asyncio.TimeoutError:
            self._log(
                f"serve: drain timed out with {self._active} request(s) "
                "still in flight"
            )
        self.pool.shutdown(wait=False)

    @property
    def address(self) -> Tuple[str, int]:
        return (self.config.host, self.port or self.config.port)

    # ------------------------------------------------------------------
    # Connection handling.
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await read_request(
                        reader, self.config.max_body_bytes
                    )
                except ProtocolError as exc:
                    self._count_request("<frame>", exc.status)
                    writer.write(
                        render_json_response(
                            exc.status,
                            self._error_envelope(
                                "<frame>", exc.status, "ProtocolError",
                                exc.detail,
                            ),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if request is None:
                    break
                status, document, extra = await self._dispatch(request)
                keep_alive = request.keep_alive and not self._draining
                payload = render_json_response(
                    status, document, keep_alive=keep_alive,
                    extra_headers=extra,
                )
                chaos = get_chaos()
                if chaos is not None and request.target.startswith("/v1/"):
                    # Op responses only: /healthz and /metrics are the
                    # control plane and stay reliable under chaos.
                    directive = chaos.decide(
                        "server.response", route=request.target
                    )
                    if (
                        directive is not None
                        and directive["kind"] == "drop_connection"
                    ):
                        writer.write(
                            payload[: int(directive.get("drop_bytes", 20))]
                        )
                        await writer.drain()
                        break  # tear the connection mid-response
                writer.write(payload)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    # ------------------------------------------------------------------
    # Routing.
    # ------------------------------------------------------------------
    async def _dispatch(
        self, request: Request
    ) -> Tuple[int, Dict[str, Any], Optional[Dict[str, str]]]:
        started = time.perf_counter()
        route, handler = self._route(request)
        if handler is None:
            known = request.target in ("/healthz", "/metrics") or (
                request.target.startswith("/v1/")
                and request.target[4:] in SERVE_OPS
            )
            status = 405 if known else 404
            detail = (
                f"{request.method} not allowed on {request.target}"
                if status == 405
                else f"no route {request.target!r}"
            )
            document = self._error_envelope(route, status, "NoRoute", detail)
            self._count_request(route, status)
            return status, document, None
        status, document, extra = await handler(request)
        elapsed_ms = (time.perf_counter() - started) * 1000
        self._count_request(route, status)
        self.registry.histogram(
            "serve.latency_ms",
            help="request wall-clock by route",
            buckets=LATENCY_BUCKETS_MS,
        ).observe(elapsed_ms, route=route)
        self._access_log(request, status, elapsed_ms, document)
        return status, document, extra

    def _route(self, request: Request):
        if request.target == "/healthz" and request.method == "GET":
            return "healthz", self._handle_healthz
        if request.target == "/metrics" and request.method == "GET":
            return "metrics", self._handle_metrics
        if request.target.startswith("/v1/") and request.method == "POST":
            op = request.target[4:]
            if op in SERVE_OPS:
                return op, lambda req, op=op: self._handle_op(op, req)
        return request.target, None

    # ------------------------------------------------------------------
    # Endpoints.
    # ------------------------------------------------------------------
    async def _handle_healthz(self, request: Request):
        uptime = (
            time.monotonic() - self._started_at if self._started_at else 0.0
        )
        document = {
            "status": "draining" if self._draining else "ok",
            "uptime_s": round(uptime, 3),
            "inflight": self._active,
            "queue_limit": self.config.queue_limit,
            "workers": self.config.workers,
            "worker_kind": self.config.worker_kind,
            "cache": "on" if self.cache is not None else "off",
        }
        return 200, document, None

    async def _handle_metrics(self, request: Request):
        uptime = (
            time.monotonic() - self._started_at if self._started_at else 0.0
        )
        self.registry.gauge(
            "serve.uptime_s", help="seconds since start()"
        ).set(round(uptime, 3))
        self.registry.gauge(
            "serve.inflight", help="admitted requests right now"
        ).set(self._active)
        self.registry.gauge(
            "serve.pool.respawns", help="times the worker pool was respawned"
        ).set(self.pool.respawns)
        return 200, self.registry.snapshot(), None

    async def _handle_op(self, op: str, request: Request):
        started = time.perf_counter()
        request_id = self._next_request_id()

        # Frame-level validation happens before admission: a malformed
        # request costs nothing and never occupies a queue slot.
        try:
            document = request.json()
        except ProtocolError as exc:
            return (
                exc.status,
                self._error_envelope(
                    op, exc.status, "BadRequest", exc.detail,
                    request_id=request_id,
                ),
                None,
            )
        problems = validate_serve_request(document)
        if problems:
            return (
                400,
                self._error_envelope(
                    op, 400, "SchemaError", "; ".join(problems),
                    request_id=request_id,
                ),
                None,
            )

        # Admission control: full house -> immediate, cheap 503.
        if self._active >= self.config.queue_limit or self._draining:
            self.registry.counter(
                "serve.shed", help="requests refused by admission control"
            ).inc(route=op)
            return (
                503,
                self._error_envelope(
                    op, 503, "Overloaded",
                    f"admission queue is full "
                    f"({self._active}/{self.config.queue_limit})"
                    if not self._draining
                    else "server is draining",
                    request_id=request_id,
                ),
                {"Retry-After": "1"},
            )

        spec = document["spec"]
        options = document.get("options") or {}
        self._admit()
        try:
            with get_tracer().span(
                "serve.request", op=op, request_id=request_id
            ):
                return await self._run_op(
                    op, spec, options, request_id, started
                )
        finally:
            self._release()

    async def _run_op(
        self,
        op: str,
        spec: str,
        options: Mapping[str, Any],
        request_id: str,
        started: float,
    ):
        chaos = get_chaos()
        if chaos is not None:
            directive = chaos.decide("server.handler", op=op)
            if directive is not None and directive["kind"] == "latency":
                await asyncio.sleep(
                    float(directive.get("latency_ms", 25.0)) / 1000
                )

        cache_verdict = "off"
        key: Optional[str] = None
        if op == "derive" and self.cache is not None:
            try:
                key = self.cache.key(spec, options)
            except ValueError:
                key = None  # unknown option: let the worker 422 it
            entry = self.cache.get(key) if key is not None else None
            if entry is not None:
                self.registry.counter(
                    "serve.cache.hits", help="derives served from the cache"
                ).inc()
                stats = (entry.get("stats") or {}).get("derivation") or {}
                result = {
                    "places": entry["places"],
                    "entities": entry["entities"],
                    "violations": stats.get("violations", 0),
                    "sync_fragments": stats.get("sync_fragments", 0),
                }
                return (
                    200,
                    self._ok_envelope(
                        op, result, "hit", request_id, started
                    ),
                    None,
                )
            if key is not None:
                self.registry.counter(
                    "serve.cache.misses", help="derives that missed the cache"
                ).inc()
                cache_verdict = "miss"

        settled = await self.pool.run(
            op, spec, options, timeout=self.config.request_timeout
        )
        if settled.get("ok"):
            result = self._trim_result(op, settled["result"])
            if op == "derive":
                self.registry.counter(
                    "serve.derivations", help="derives actually computed"
                ).inc()
                if key is not None and self.cache is not None:
                    self.cache.put(
                        key, f"serve:{request_id}", dict(options),
                        settled["result"]["entities"],
                        stats=stats_document(
                            f"serve:{request_id}", settled["result"]
                        ),
                    )
            return (
                200,
                self._ok_envelope(
                    op, result, cache_verdict, request_id, started
                ),
                None,
            )

        kind = settled.get("kind", "internal")
        error = dict(settled.get("error") or {})
        if kind == "timeout":
            self.registry.counter(
                "serve.timeouts", help="requests that outlived their budget"
            ).inc(route=op)
            status = 504
        elif kind == "client":
            status = 422
        else:
            status = 500
        # The traceback stays in the server log, not on the wire.
        traceback_text = error.pop("traceback", "")
        if status == 500 and traceback_text:
            self._log(f"serve: worker failure on {op}:\n{traceback_text}")
        envelope = self._error_envelope(
            op, status, error.get("type", "WorkerError"),
            error.get("message", "worker failed"),
            request_id=request_id, started=started, cache=cache_verdict,
        )
        return status, envelope, None

    # ------------------------------------------------------------------
    # Envelopes, admission accounting, logging.
    # ------------------------------------------------------------------
    @staticmethod
    def _trim_result(op: str, result: Dict[str, Any]) -> Dict[str, Any]:
        """Strip worker-local observability payloads off the wire."""
        if op == "derive":
            return {
                key: value
                for key, value in result.items()
                if key not in ("trace", "metrics")
            }
        return result

    def _ok_envelope(self, op, result, cache_verdict, request_id, started):
        return {
            "schema": SERVE_RESPONSE_SCHEMA,
            "op": op,
            "ok": True,
            "status": 200,
            "cache": cache_verdict,
            "duration_s": round(time.perf_counter() - started, 6),
            "request_id": request_id,
            "result": result,
            "error": None,
        }

    def _error_envelope(
        self, op, status, error_type, message,
        request_id: str = "-", started: Optional[float] = None,
        cache: str = "off",
    ):
        return {
            "schema": SERVE_RESPONSE_SCHEMA,
            "op": op,
            "ok": False,
            "status": status,
            "cache": cache,
            "duration_s": (
                round(time.perf_counter() - started, 6) if started else 0.0
            ),
            "request_id": request_id,
            "result": None,
            "error": {"type": error_type, "message": message},
        }

    def _admit(self) -> None:
        self._active += 1
        self._idle.clear()
        self.registry.gauge(
            "serve.inflight_high_water", help="most requests ever in the house"
        ).set_max(self._active)

    def _release(self) -> None:
        self._active -= 1
        if self._active <= 0:
            self._idle.set()

    def _next_request_id(self) -> str:
        self._request_seq += 1
        return f"{self._request_seq:06d}"

    def _count_request(self, route: str, status: int) -> None:
        self.registry.counter(
            "serve.requests", help="requests by route and status"
        ).inc(route=route, status=str(status))

    def _access_log(
        self,
        request: Request,
        status: int,
        elapsed_ms: float,
        document: Dict[str, Any],
    ) -> None:
        if not self.config.access_log:
            return
        cache_verdict = (
            document.get("cache") if isinstance(document, dict) else None
        )
        request_id = (
            document.get("request_id") if isinstance(document, dict) else None
        )
        parts = [
            "serve:",
            f'"{request.method} {request.target}"',
            str(status),
            f"{elapsed_ms:.1f}ms",
        ]
        if cache_verdict and cache_verdict != "off":
            parts.append(f"cache={cache_verdict}")
        if request_id and request_id != "-":
            parts.append(f"id={request_id}")
        self._log(" ".join(parts))

    @staticmethod
    def _log(line: str) -> None:
        print(line, file=sys.stderr)

    # ------------------------------------------------------------------
    def digest(self) -> str:
        """A one-line wrap-up for the drain path of ``repro serve``."""
        requests = self.registry.counter("serve.requests")
        total = sum(series["value"] for series in requests.series())
        latency = self.registry.histogram(
            "serve.latency_ms", buckets=LATENCY_BUCKETS_MS
        )
        p50 = latency.percentile(50, route="derive")
        p95 = latency.percentile(95, route="derive")
        shed = sum(
            series["value"]
            for series in self.registry.counter("serve.shed").series()
        )
        hits = self.registry.counter("serve.cache.hits").value()
        line = f"serve: {int(total)} request(s)"
        if p50 is not None:
            line += f", derive p50<={p50:g}ms p95<={p95:g}ms"
        line += f", {int(shed)} shed, {int(hits)} cache hit(s)"
        if self.pool.respawns:
            line += f", {self.pool.respawns} pool respawn(s)"
        return line


async def run_server(config: ServeConfig) -> DerivationServer:
    """Start a server and return it (tests and embedders' entry point)."""
    server = DerivationServer(config)
    await server.start()
    return server
