"""Minimal HTTP/1.1 framing over asyncio streams.

The derivation server speaks a deliberately small slice of HTTP/1.1 —
request line + headers + ``Content-Length`` bodies, keep-alive
connections, no chunked transfer coding, no TLS — parsed and rendered
here so :mod:`repro.serve.server` deals only in :class:`Request`
objects and response documents.  Everything is standard-library only.

Limits are enforced while reading, before any body bytes are
buffered: an oversized declared body is refused with 413 *without*
reading it, a request line or header block beyond the stream limit is
a 400, and chunked transfer coding is a 501.  A limit violation raises
:class:`ProtocolError`, which carries the HTTP status the connection
handler should answer with before closing.

The same framing is used from the client side
(:func:`read_response`), so the server, the client and the load
generator all share one wire implementation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

#: Stream read limit for asyncio; bounds the request line and each
#: header line (readline past this raises, mapped to a 400).
STREAM_LIMIT = 64 * 1024

#: Headers per request; more is a 400 (header-bombing guard).
MAX_HEADERS = 64

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ProtocolError(Exception):
    """A malformed or over-limit request; carries the HTTP answer."""

    def __init__(self, status: int, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.detail = detail


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    target: str
    version: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    def json(self) -> Any:
        """The parsed JSON body; raises :class:`ProtocolError` (400)."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(400, f"request body is not valid JSON: {exc}")


async def _read_line(reader) -> bytes:
    """One CRLF (or LF) terminated line, sans terminator."""
    try:
        line = await reader.readline()
    except ValueError:  # over the stream limit
        raise ProtocolError(400, "request line or header too long")
    if line and not line.endswith(b"\n"):
        raise ProtocolError(400, "connection closed mid-line")
    return line.rstrip(b"\r\n")


async def read_request(reader, max_body: int) -> Optional[Request]:
    """Parse one request off ``reader``; ``None`` on clean EOF.

    ``max_body`` bounds the *declared* ``Content-Length``: an oversized
    body is refused (413) before a single body byte is read, so a
    misbehaving client cannot make the server buffer it.
    """
    try:
        raw = await reader.readline()
    except ValueError:
        raise ProtocolError(400, "request line too long")
    if not raw:
        return None  # clean EOF between requests
    if not raw.endswith(b"\n"):
        raise ProtocolError(400, "connection closed mid-request-line")
    try:
        request_line = raw.rstrip(b"\r\n").decode("latin-1")
    except UnicodeDecodeError:
        raise ProtocolError(400, "undecodable request line")
    parts = request_line.split()
    if len(parts) != 3:
        raise ProtocolError(400, f"malformed request line {request_line!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise ProtocolError(400, f"unsupported protocol version {version!r}")

    headers: Dict[str, str] = {}
    while True:
        line = await _read_line(reader)
        if not line:
            break
        if len(headers) >= MAX_HEADERS:
            raise ProtocolError(400, "too many headers")
        name, separator, value = line.decode("latin-1").partition(":")
        if not separator or not name.strip():
            raise ProtocolError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "transfer-encoding" in headers:
        raise ProtocolError(501, "chunked transfer coding is not supported")

    body = b""
    declared = headers.get("content-length")
    if declared is not None:
        try:
            length = int(declared)
            if length < 0:
                raise ValueError
        except ValueError:
            raise ProtocolError(400, f"bad Content-Length {declared!r}")
        if length > max_body:
            raise ProtocolError(
                413, f"body of {length} bytes exceeds the {max_body}-byte limit"
            )
        if length:
            try:
                body = await reader.readexactly(length)
            except Exception:
                raise ProtocolError(400, "connection closed mid-body")
    elif method == "POST":
        raise ProtocolError(400, "POST without Content-Length")
    return Request(method=method, target=target, version=version,
                   headers=headers, body=body)


def render_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: Optional[Mapping[str, str]] = None,
) -> bytes:
    """One full HTTP/1.1 response, ready to write."""
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def render_json_response(
    status: int,
    document: Any,
    keep_alive: bool = True,
    extra_headers: Optional[Mapping[str, str]] = None,
) -> bytes:
    body = (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")
    return render_response(
        status, body, keep_alive=keep_alive, extra_headers=extra_headers
    )


async def read_response(reader) -> Tuple[int, Dict[str, str], bytes]:
    """Client side: parse one response into (status, headers, body)."""
    raw = await reader.readline()
    if not raw:
        raise ProtocolError(400, "connection closed before the status line")
    status_line = raw.rstrip(b"\r\n").decode("latin-1")
    parts = status_line.split(None, 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise ProtocolError(400, f"malformed status line {status_line!r}")
    try:
        status = int(parts[1])
    except ValueError:
        raise ProtocolError(400, f"malformed status {parts[1]!r}")
    headers: Dict[str, str] = {}
    while True:
        line = await _read_line(reader)
        if not line:
            break
        name, separator, value = line.decode("latin-1").partition(":")
        if not separator:
            raise ProtocolError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    body = await reader.readexactly(length) if length else b""
    return status, headers, body
