"""``python -m repro`` — the same dispatcher as the ``repro`` script."""

from repro.cli import repro_main

if __name__ == "__main__":
    raise SystemExit(repro_main())
