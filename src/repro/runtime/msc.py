"""Message sequence charts of distributed executions.

Renders one schedule of a composed system as a textual MSC — service
primitives on the entity lifelines, synchronization messages as arrows —
the classic way to *look at* a protocol (cf. the paper's Fig. 2/5
architecture pictures):

    place         1            2            3
    ----------------------------------------------
    read1       read1 |            |            |
    msg 7             |---- 7 ---->|            |
    push2             |      push2 |            |
    ...

The chart is computed by replaying a seeded schedule with messages
visible, so it shows matched send/receive pairs with their delays
(in-flight sections of the arrow's channel).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.lotos.events import (
    Delta,
    Label,
    ReceiveAction,
    SendAction,
    ServicePrimitive,
)
from repro.runtime.system import DistributedSystem


@dataclass
class MscEvent:
    """One row of the chart."""

    kind: str  # "primitive" | "send" | "receive" | "delta"
    label: Label
    place: Optional[int] = None
    peer: Optional[int] = None


@dataclass
class MessageSequenceChart:
    places: Tuple[int, ...]
    events: List[MscEvent] = field(default_factory=list)

    COLUMN = 14

    def render(self) -> str:
        header = "place".ljust(18) + "".join(
            str(place).center(self.COLUMN) for place in self.places
        )
        lines = [header, "-" * len(header)]
        for event in self.events:
            lines.append(self._render_event(event))
        return "\n".join(lines)

    def _column_of(self, place: int) -> int:
        return self.places.index(place)

    def _render_event(self, event: MscEvent) -> str:
        cells = ["|".center(self.COLUMN) for _ in self.places]
        tag = ""
        if event.kind == "primitive":
            column = self._column_of(event.place)
            cells[column] = str(event.label).center(self.COLUMN)
            tag = str(event.label)
        elif event.kind == "delta":
            cells = ["X".center(self.COLUMN) for _ in self.places]
            tag = "terminated"
        elif event.kind in ("send", "receive"):
            source = self._column_of(event.place if event.kind == "send" else event.peer)
            target = self._column_of(event.peer if event.kind == "send" else event.place)
            low, high = sorted((source, target))
            message = (
                event.label.message
                if isinstance(event.label, (SendAction, ReceiveAction))
                else ""
            )
            body = f" {message} ".center(self.COLUMN - 2, "-")
            for column in range(low, high + 1):
                if column == source:
                    cells[column] = ("*" if event.kind == "send" else "+").center(
                        self.COLUMN
                    )
                elif column == target:
                    cells[column] = (">" if target > source else "<").center(
                        self.COLUMN
                    )
                else:
                    cells[column] = body
            tag = f"{'send' if event.kind == 'send' else 'recv'} {event.label}"
        return tag[:17].ljust(18) + "".join(cells)


def record_schedule(
    system: DistributedSystem,
    seed: int = 0,
    max_steps: int = 2_000,
    chooser=None,
    schedule: Optional[List[int]] = None,
) -> MessageSequenceChart:
    """Replay one schedule and collect its MSC.

    ``system`` must have been built with ``hide=False`` (message labels
    are needed); raises ``ValueError`` otherwise.  Passing ``schedule``
    (a :class:`repro.runtime.executor.Run`'s recorded choices) renders
    that exact execution instead of drawing a fresh seeded one — the
    chart of a run you already measured.  A schedule index that does not
    fit the system raises ``IndexError``, as in
    :func:`repro.runtime.executor.replay`.
    """
    if system.hide:
        raise ValueError("build the system with hide=False to record an MSC")
    if schedule is not None and chooser is not None:
        raise ValueError("pass either a schedule or a chooser, not both")
    rng = random.Random(seed)
    chart = MessageSequenceChart(places=tuple(system.places))
    state = system.initial
    steps = len(schedule) if schedule is not None else max_steps
    for position in range(steps):
        transitions = system.transitions(state)
        if not transitions:
            break
        if schedule is not None:
            index = schedule[position]
            if index >= len(transitions):
                raise IndexError(
                    f"schedule step {position} chose transition {index} "
                    f"but only {len(transitions)} are enabled"
                )
        elif chooser:
            index = chooser(state, transitions)
        else:
            index = rng.randrange(len(transitions))
        label, state = transitions[index]
        if isinstance(label, ServicePrimitive):
            chart.events.append(MscEvent("primitive", label, place=label.place))
        elif isinstance(label, SendAction):
            chart.events.append(
                MscEvent("send", label, place=label.src, peer=label.dest)
            )
        elif isinstance(label, ReceiveAction):
            chart.events.append(
                MscEvent("receive", label, place=label.dest, peer=label.src)
            )
        elif isinstance(label, Delta):
            chart.events.append(MscEvent("delta", label))
            break
    return chart
