"""Single-schedule execution of a distributed system.

The medium delivers "after an arbitrary delay"; operationally every
interleaving of entity steps and delivery moments is a schedule.  The
executor walks one schedule at a time — seeded-random by default — and
records what an observer of the service access points would see.  The
exhaustive counterpart (all schedules at once) is the LTS/trace machinery
applied to the same :class:`DistributedSystem`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.lotos.events import (
    Delta,
    InternalAction,
    Label,
    ReceiveAction,
    SendAction,
    ServicePrimitive,
)
from repro.obs.metrics import get_registry
from repro.obs.spans import get_tracer
from repro.runtime.system import DistributedSystem, SystemState

ChannelKey = Tuple[int, int]


@dataclass
class Run:
    """Outcome of one schedule.

    ``trace`` holds the observable service primitives in order;
    ``terminated`` reports a clean global ``delta``; ``deadlocked`` means
    the system stopped with no enabled transition *and* without
    termination — for a correct derivation this must never happen.
    """

    trace: List[ServicePrimitive] = field(default_factory=list)
    terminated: bool = False
    deadlocked: bool = False
    steps: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    internal_steps: int = 0
    final_state: Optional[SystemState] = None
    truncated: bool = False
    #: The transition index chosen at every step — replayable with
    #: :func:`replay` for deterministic debugging of a schedule.
    schedule: List[int] = field(default_factory=list)
    #: Deepest queue observed per channel over the run (media exposing
    #: ``channel_depths``; empty otherwise).
    queue_high_water: Dict[ChannelKey, int] = field(default_factory=dict)
    #: Steps each delivered message spent in flight, in delivery order
    #: (FIFO accounting per channel; drops count as deliveries, matching
    #: how ``messages_received`` treats them).
    delivery_delays: List[int] = field(default_factory=list)

    @property
    def observable(self) -> Tuple[Label, ...]:
        return tuple(self.trace)

    def __str__(self) -> str:
        status = (
            "terminated"
            if self.terminated
            else "DEADLOCK" if self.deadlocked else "truncated" if self.truncated else "running"
        )
        shown = " . ".join(str(event) for event in self.trace) or "<empty>"
        return f"[{status} after {self.steps} steps] {shown}"


Chooser = Callable[[SystemState, Tuple], int]


def random_run(
    system: DistributedSystem,
    seed: int = 0,
    max_steps: int = 10_000,
    chooser: Optional[Chooser] = None,
) -> Run:
    """Execute one schedule from the system's initial state.

    ``chooser(state, transitions) -> index`` overrides the seeded-random
    scheduling policy (used by tests to force adversarial schedules).
    """
    rng = random.Random(seed)
    run = Run()
    state = system.initial
    # The executor wants to see message traffic even when the system was
    # built for verification (hide=True): inspect labels before hiding by
    # classifying the *unhidden* variant.  DistributedSystem with
    # hide=False exposes them; with hide=True we count via medium deltas.
    previous_in_flight = state.medium.in_flight
    # Per-channel accounting (queue high-water marks, in-flight delays)
    # works off the medium's channel_depths hook; custom media without it
    # keep the global tallies only.
    depths_of = getattr(state.medium, "channel_depths", None)
    previous_depths: Dict[ChannelKey, int] = depths_of() if depths_of else {}
    pending_sends: Dict[ChannelKey, List[int]] = {}
    with get_tracer().span("executor.run", seed=seed) as span:
        for _ in range(max_steps):
            transitions = system.transitions(state)
            if not transitions:
                run.deadlocked = not system.is_terminated(state)
                break
            if chooser is not None:
                index = chooser(state, transitions)
            else:
                index = rng.randrange(len(transitions))
            run.schedule.append(index)
            label, state = transitions[index]
            run.steps += 1
            in_flight = state.medium.in_flight
            if in_flight > previous_in_flight:
                run.messages_sent += in_flight - previous_in_flight
            elif in_flight < previous_in_flight:
                run.messages_received += previous_in_flight - in_flight
            if depths_of is not None and in_flight != previous_in_flight:
                depths = state.medium.channel_depths()
                _account_channels(
                    run, previous_depths, depths, pending_sends, run.steps
                )
                previous_depths = depths
            previous_in_flight = in_flight
            if isinstance(label, ServicePrimitive):
                run.trace.append(label)
            elif isinstance(label, Delta):
                run.terminated = True
                break
            elif isinstance(label, (SendAction, ReceiveAction, InternalAction)):
                run.internal_steps += 1
        else:
            run.truncated = True
        span.set(steps=run.steps, messages=run.messages_sent)
    run.final_state = state
    _publish_run_metrics(run)
    return run


def _account_channels(
    run: Run,
    previous: Dict[ChannelKey, int],
    current: Dict[ChannelKey, int],
    pending_sends: Dict[ChannelKey, List[int]],
    step: int,
) -> None:
    """Fold one step's per-channel depth changes into the run record."""
    for key in current.keys() | previous.keys():
        depth = current.get(key, 0)
        delta = depth - previous.get(key, 0)
        if delta > 0:
            if depth > run.queue_high_water.get(key, 0):
                run.queue_high_water[key] = depth
            pending_sends.setdefault(key, []).extend([step] * delta)
        elif delta < 0:
            queue = pending_sends.get(key)
            for _ in range(-delta):
                if queue:
                    run.delivery_delays.append(step - queue.pop(0))


def _publish_run_metrics(run: Run) -> None:
    """One-shot export of a finished run into the active registry."""
    registry = get_registry()
    if not registry.enabled:
        return
    queue_gauge = registry.gauge(
        "medium.queue_depth", help="per-channel queue high-water mark"
    )
    for (src, dest), depth in run.queue_high_water.items():
        queue_gauge.set_max(depth, channel=f"{src}->{dest}")
    delay_hist = registry.histogram(
        "medium.delay_steps", help="steps each message spent in flight"
    )
    for delay in run.delivery_delays:
        delay_hist.observe(delay)
    registry.counter("executor.runs", help="schedules executed").inc()
    registry.counter("executor.steps", help="transitions taken").inc(run.steps)
    registry.counter(
        "executor.messages_sent", help="messages entering the medium"
    ).inc(run.messages_sent)
    registry.counter(
        "executor.messages_received", help="messages leaving the medium"
    ).inc(run.messages_received)


def replay(
    system: DistributedSystem,
    schedule: List[int],
) -> Run:
    """Re-execute a recorded schedule step for step.

    Replaying a :class:`Run`'s ``schedule`` on an identically-built
    system reproduces the run exactly (the transition enumeration is
    deterministic).  Raises ``IndexError`` if the schedule does not fit
    the system — the symptom of replaying against different entities or
    a different medium configuration.
    """

    def scripted(state, transitions, _position=[0]):
        index = schedule[_position[0]]
        _position[0] += 1
        if index >= len(transitions):
            raise IndexError(
                f"schedule step {_position[0] - 1} chose transition {index} "
                f"but only {len(transitions)} are enabled"
            )
        return index

    return random_run(
        system, seed=0, max_steps=len(schedule), chooser=scripted
    )


def run_many(
    system: DistributedSystem,
    runs: int,
    max_steps: int = 10_000,
    base_seed: int = 0,
) -> List[Run]:
    """A batch of independent seeded schedules."""
    return [
        random_run(system, seed=base_seed + offset, max_steps=max_steps)
        for offset in range(runs)
    ]
