"""Composition of protocol entities with the communication medium.

:class:`DistributedSystem` is a transition-function object over
:class:`SystemState` (entity behaviours + medium snapshot) with the same
``transitions(state)`` interface as :class:`repro.lotos.semantics.
Semantics`, so every analysis in :mod:`repro.lotos.traces` and the LTS
builder work on whole distributed systems unchanged.

The composition implements, operationally, the right-hand side of the
paper's correctness theorem::

    hide G in ( (PE_1 ||| PE_2 ||| ... ||| PE_n) |[G]| Medium )

* each entity moves independently (the ``|||``);
* a send interaction synchronizes with the medium appending to the
  corresponding channel, a receive with the medium releasing a matching
  message (the ``|[G]| Medium``);
* with ``hide=True`` (default) those interactions become internal moves
  (the ``hide G in``), leaving service primitives and ``delta``
  observable;
* ``delta`` happens globally, when every entity offers it — the ``|||``
  synchronizes on termination in LOTOS.

The paper's Medium processes never terminate, so strictly the composed
LOTOS term never offers ``delta``; we let the system terminate when all
*entities* can (the medium is dropped at global termination).  With
``require_empty_at_exit=True`` termination is additionally gated on all
channels being drained, which is the honest check for disable-free
derivations — a leftover message would mean the protocol leaked state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.lotos.events import (
    DELTA,
    INTERNAL,
    Delta,
    InternalAction,
    Label,
    ReceiveAction,
    SendAction,
    ServicePrimitive,
)
from repro.lotos.scope import bind_occurrence, flatten
from repro.lotos.semantics import Semantics
from repro.lotos.syntax import Behaviour, Specification, Stop
from repro.medium.state import MediumState, make_medium

Transition = Tuple[Label, "SystemState"]


@dataclass(frozen=True)
class SystemState:
    """One global state: each entity's behaviour plus the medium."""

    entities: Tuple[Behaviour, ...]
    medium: MediumState

    def replace_entity(self, index: int, behaviour: Behaviour) -> "SystemState":
        entities = self.entities[:index] + (behaviour,) + self.entities[index + 1 :]
        return SystemState(entities, self.medium)

    def with_medium(self, medium: MediumState) -> "SystemState":
        return SystemState(self.entities, medium)


class DistributedSystem:
    """Transition function for n entities + medium.

    ``hide=True`` maps message interactions to the internal action
    (verification view); ``hide=False`` keeps them observable in long
    form (``s^i_j(m)``), which is how the message-complexity experiments
    count traffic.
    """

    def __init__(
        self,
        places: Sequence[int],
        semantics: Sequence[Semantics],
        initial: SystemState,
        hide: bool = True,
        require_empty_at_exit: bool = True,
    ) -> None:
        if len(places) != len(initial.entities) or len(places) != len(semantics):
            raise ExecutionError("places, semantics and entities must align")
        self.places = tuple(places)
        self._semantics = tuple(semantics)
        self.initial = initial
        self.hide = hide
        self.require_empty_at_exit = require_empty_at_exit
        self._index_of: Dict[int, int] = {
            place: index for index, place in enumerate(self.places)
        }
        self._cache: Dict[SystemState, Tuple[Transition, ...]] = {}

    # ------------------------------------------------------------------
    def transitions(self, state: SystemState) -> Tuple[Transition, ...]:
        cached = self._cache.get(state)
        if cached is None:
            cached = tuple(self._transitions(state))
            self._cache[state] = cached
        return cached

    def _transitions(self, state: SystemState) -> List[Transition]:
        result: List[Transition] = []
        delta_residuals: List[Optional[Behaviour]] = []
        for index, behaviour in enumerate(state.entities):
            place = self.places[index]
            delta_residual: Optional[Behaviour] = None
            for label, residual in self._semantics[index].transitions(behaviour):
                if isinstance(label, Delta):
                    delta_residual = residual
                    continue
                transition = self._entity_move(state, index, place, label, residual)
                if transition is not None:
                    result.append(transition)
            delta_residuals.append(delta_residual)
        if all(residual is not None for residual in delta_residuals):
            if not self.require_empty_at_exit or state.medium.is_empty:
                # Normalize to literal stops: the delta residual of e.g.
                # ``exit ||| exit`` is ``stop ||| stop``, behaviourally
                # stop but structurally distinct — collapsing makes
                # global termination a single canonical state that
                # ``is_terminated`` recognizes.
                terminated = SystemState(
                    tuple(Stop() for _ in delta_residuals), state.medium
                )
                result.append((DELTA, terminated))
        # Media with internal machinery (ARQ recovery, loss faults)
        # contribute their own moves as internal steps.
        internal = getattr(state.medium, "internal_transitions", None)
        if internal is not None:
            for _description, new_medium in internal():
                result.append((INTERNAL, state.with_medium(new_medium)))
        return result

    def _entity_move(
        self,
        state: SystemState,
        index: int,
        place: int,
        label: Label,
        residual: Behaviour,
    ) -> Optional[Transition]:
        if isinstance(label, ServicePrimitive):
            return label, state.replace_entity(index, residual)
        if isinstance(label, InternalAction):
            return INTERNAL, state.replace_entity(index, residual)
        if isinstance(label, SendAction):
            if not state.medium.can_send(place, label.dest):
                return None
            medium = state.medium.send(place, label.dest, label.message)
            visible: Label = INTERNAL if self.hide else label.with_src(place)
            return visible, state.replace_entity(index, residual).with_medium(medium)
        if isinstance(label, ReceiveAction):
            if not state.medium.receivable(label.src, place, label.message):
                return None
            medium = state.medium.receive(label.src, place, label.message)
            visible = INTERNAL if self.hide else label.with_dest(place)
            return visible, state.replace_entity(index, residual).with_medium(medium)
        raise ExecutionError(f"entity at place {place} offered unexpected {label}")

    # ------------------------------------------------------------------
    def is_terminated(self, state: SystemState) -> bool:
        return all(isinstance(entity, Stop) for entity in state.entities)

    def enabled(self, state: SystemState) -> Tuple[Transition, ...]:
        return self.transitions(state)


def build_system(
    entities: Mapping[int, Specification],
    capacity: Optional[int] = None,
    discipline: str = "fifo",
    hide: bool = True,
    use_occurrences: bool = True,
    require_empty_at_exit: bool = True,
    medium: Optional[object] = None,
) -> DistributedSystem:
    """Compose derived entity specifications into a distributed system.

    ``use_occurrences=False`` runs the entities without the Section 3.5
    occurrence parameterization (all messages carry the symbolic
    occurrence).  That keeps tail-recursive systems finite-state — at the
    price of instance ambiguity, which experiment E7 demonstrates.

    ``medium`` overrides the default perfect-FIFO medium with any object
    implementing the medium interface — e.g.
    :class:`repro.medium.lossy.LossyMedium` (fault injection) or
    :class:`repro.medium.lossy.ArqMedium` (the Section 6 error-recovery
    sublayer over lossy channels).
    """
    places = sorted(entities)
    semantics_list: List[Semantics] = []
    roots: List[Behaviour] = []
    for place in places:
        root, environment = flatten(entities[place])
        semantics_list.append(
            Semantics(environment, bind_occurrences=use_occurrences)
        )
        roots.append(bind_occurrence(root, ()) if use_occurrences else root)
    if medium is None:
        medium = make_medium(capacity, discipline)
    initial = SystemState(tuple(roots), medium)
    return DistributedSystem(
        places,
        semantics_list,
        initial,
        hide=hide,
        require_empty_at_exit=require_empty_at_exit,
    )
