"""Distributed execution of derived protocol entities over the medium.

:mod:`repro.runtime.system` composes n protocol entities with the FIFO
medium into one transition system — operationally, the paper's
``hide G in ((PE_1 ||| ... ||| PE_n) |[G]| Medium)``.
:mod:`repro.runtime.executor` walks single schedules (seeded-random or
guided); :mod:`repro.runtime.conformance` validates observed service
traces against the service specification.
"""

from repro.runtime.system import DistributedSystem, SystemState, build_system
from repro.runtime.executor import Run, random_run
from repro.runtime.conformance import check_run, check_trace

__all__ = [
    "DistributedSystem",
    "SystemState",
    "build_system",
    "Run",
    "random_run",
    "check_run",
    "check_trace",
]
