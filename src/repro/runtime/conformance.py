"""Service-conformance checking of observed executions.

A derived protocol is *safe* when every trace of service primitives the
distributed system can exhibit is a trace the service specification
allows.  This module checks single observed runs (the executor's output)
against the service; whole-behaviour comparison lives in
:mod:`repro.verification`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from repro.lotos.events import DELTA, Label, ServicePrimitive
from repro.lotos.parser import parse
from repro.lotos.semantics import Semantics
from repro.lotos.syntax import Specification
from repro.lotos.traces import accepts, format_trace
from repro.runtime.executor import Run


@dataclass
class ConformanceVerdict:
    """Outcome of checking one observed trace against the service."""

    ok: bool
    reason: str = ""
    trace: Sequence[Label] = ()

    def __bool__(self) -> bool:
        return self.ok

    def __str__(self) -> str:
        status = "conformant" if self.ok else f"VIOLATION ({self.reason})"
        return f"{status}: {format_trace(self.trace)}"


def check_trace(
    service: Union[str, Specification],
    trace: Sequence[ServicePrimitive],
    terminated: bool = False,
) -> ConformanceVerdict:
    """Whether ``trace`` (optionally ending in termination) is allowed.

    ``terminated=True`` additionally requires the service to be able to
    perform ``delta`` right after the trace — an execution that claims
    clean termination at a point where the service cannot terminate is a
    violation even if the primitives themselves were legal.
    """
    spec = parse(service) if isinstance(service, str) else service
    semantics, root = Semantics.of_specification(spec, bind_occurrences=False)
    labels: list[Label] = list(trace)
    if terminated:
        labels.append(DELTA)
    if accepts(root, semantics, labels):
        return ConformanceVerdict(True, trace=labels)
    # Shrink to the shortest refused prefix for a useful diagnostic.
    for length in range(len(labels) + 1):
        prefix = labels[:length]
        if not accepts(root, semantics, prefix):
            return ConformanceVerdict(
                False,
                reason=f"service refuses after {length - 1} accepted events",
                trace=prefix,
            )
    return ConformanceVerdict(False, reason="unreachable", trace=labels)


def check_run(
    service: Union[str, Specification],
    run: Run,
    require_progress: bool = True,
) -> ConformanceVerdict:
    """Validate one executor run: trace conformance plus liveness flags.

    A deadlocked run is always a violation (the medium is reliable and
    the service never wedges its users); with ``require_progress`` a
    truncated run is reported as suspicious rather than conformant.
    """
    if run.deadlocked:
        return ConformanceVerdict(
            False, reason="distributed system deadlocked", trace=tuple(run.trace)
        )
    verdict = check_trace(service, run.trace, terminated=run.terminated)
    if not verdict.ok:
        return verdict
    if run.truncated and require_progress:
        return ConformanceVerdict(
            False,
            reason="run exceeded its step budget without terminating",
            trace=tuple(run.trace),
        )
    return verdict
