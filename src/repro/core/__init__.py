"""The paper's primary contribution: the protocol derivation algorithm.

Pipeline (paper Section 4):

1. parse the service specification and put every disable operand in
   action prefix form (:mod:`repro.lotos.expansion`);
2. number the syntax-tree nodes and synthesize the SP/EP/AP attributes
   (:mod:`repro.core.attributes`, Table 2);
3. check the restrictions R1-R3 (:mod:`repro.core.restrictions`);
4. apply the derivation function ``T_p`` for every place ``p``
   (:mod:`repro.core.derivation`, Tables 3 and 4);
5. eliminate ``empty`` fragments (:mod:`repro.core.simplify`).

:mod:`repro.core.generator` packages the pipeline as the paper's
"Protocol Generator (PG)".
"""

from repro.core.attributes import AttributeTable, Attrs, evaluate_attributes, number_nodes
from repro.core.generator import DerivationResult, ProtocolGenerator, derive_protocol

__all__ = [
    "AttributeTable",
    "Attrs",
    "evaluate_attributes",
    "number_nodes",
    "DerivationResult",
    "ProtocolGenerator",
    "derive_protocol",
]
