"""Node numbering and synthesized-attribute evaluation (paper Section 4.1).

Three attributes are synthesized for every node ``x`` of the service
syntax tree (paper Table 2):

``SP(x)``
    the *Starting Places* — places where ``x`` is initiated;
``EP(x)``
    the *Ending Places* — places where the last actions of ``x`` execute;
``AP(x)``
    *All Places* involved in ``x``.

plus the specification-wide attribute ``ALL`` (the ``AP`` of the start
symbol) and the node-numbering attribute ``N`` — "an integer obtained by
numbering the nodes of the tree in a preorder traversal scheme".

Process references make the attribute equations recursive; following the
paper, they are solved by fixed-point iteration: all process attributes
start at the empty set, each pass re-synthesizes every definition
bottom-up, and "the iteration terminates when the attribute values of all
process root nodes have not changed during the last step" (the equations
are monotone over a finite lattice, so termination is guaranteed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, NamedTuple

from repro.errors import AttributeEvaluationError
from repro.lotos.events import ServicePrimitive
from repro.lotos.syntax import (
    ActionPrefix,
    Behaviour,
    Choice,
    DefBlock,
    Disable,
    Empty,
    Enable,
    Exit,
    Hide,
    Parallel,
    ProcessDefinition,
    ProcessRef,
    Specification,
    Stop,
)

Places = FrozenSet[int]
EMPTY_PLACES: Places = frozenset()


class Attrs(NamedTuple):
    """The (SP, EP, AP) triple of one syntax-tree node."""

    sp: Places
    ep: Places
    ap: Places

    @staticmethod
    def empty() -> "Attrs":
        return Attrs(EMPTY_PLACES, EMPTY_PLACES, EMPTY_PLACES)

    @staticmethod
    def single(place: int) -> "Attrs":
        places = frozenset([place])
        return Attrs(places, places, places)


def number_nodes(spec: Specification, start: int = 1) -> Specification:
    """Assign preorder node numbers ``N`` to every behaviour node.

    The traversal order is: main behaviour expression first, then each
    process definition in textual order — the same order
    :meth:`Specification.walk_behaviours` uses.  Numbering rebuilds the
    (immutable) tree; every node's ``nid`` is unique within the result.
    Existing ``nid`` values are overwritten.
    """
    counter = [start]

    def renumber(node: Behaviour) -> Behaviour:
        nid = counter[0]
        counter[0] += 1
        children = node.children()
        new_children = tuple(renumber(child) for child in children)
        if isinstance(node, ProcessRef):
            # The invocation site is the node's own number: it seeds the
            # occurrence paths of the instances created here.
            return ProcessRef(
                node.name,
                site=nid,
                occurrence=node.occurrence,
                nid=nid,
                loc=node.loc,
            )
        rebuilt = node.with_children(new_children) if children else node
        return _with_nid(rebuilt, nid)

    def renumber_block(block: DefBlock) -> DefBlock:
        behaviour = renumber(block.behaviour)
        definitions = tuple(
            ProcessDefinition(d.name, renumber_block(d.body)) for d in block.definitions
        )
        return DefBlock(behaviour, definitions)

    return Specification(renumber_block(spec.root))


def _with_nid(node: Behaviour, nid: int) -> Behaviour:
    # dataclasses.replace would re-run __init__ with all fields; this is
    # the same thing, spelled per concrete class via with_children.
    import dataclasses

    return dataclasses.replace(node, nid=nid)


@dataclass
class AttributeTable:
    """Evaluated attributes for a numbered specification.

    ``by_node`` maps node numbers to :class:`Attrs`; ``by_process`` maps
    process names to the attributes of their bodies (the solution of the
    recursive equations); ``all_places`` is the paper's ``ALL``.
    """

    by_node: Dict[int, Attrs] = field(default_factory=dict)
    by_process: Dict[str, Attrs] = field(default_factory=dict)
    all_places: Places = EMPTY_PLACES
    iterations: int = 0

    def of(self, node: Behaviour) -> Attrs:
        """Attributes of a numbered node."""
        if node.nid is None:
            raise AttributeEvaluationError(
                "node has no number; run number_nodes before evaluate_attributes"
            )
        try:
            return self.by_node[node.nid]
        except KeyError as exc:
            raise AttributeEvaluationError(
                f"node {node.nid} is not in the attribute table"
            ) from exc

    def sp(self, node: Behaviour) -> Places:
        return self.of(node).sp

    def ep(self, node: Behaviour) -> Places:
        return self.of(node).ep

    def ap(self, node: Behaviour) -> Places:
        return self.of(node).ap


#: Upper bound on fixed-point passes; the lattice height is
#: 3 * |processes| * |places|, so this is never the binding constraint
#: for sane inputs but protects against bugs.
MAX_ITERATIONS = 10_000


def evaluate_attributes(spec: Specification) -> AttributeTable:
    """Synthesize SP/EP/AP for every node of a numbered, flat spec.

    Implements Table 2 plus the fixed-point treatment of rule 18 (process
    references).  The specification must have been produced by
    :func:`number_nodes` (every node carries a unique ``nid``) and be
    flat (single WHERE level), which
    :func:`repro.lotos.scope.flatten_spec` guarantees.
    """
    table = AttributeTable()
    definitions = spec.definitions
    for definition in definitions:
        if definition.body.definitions:
            raise AttributeEvaluationError(
                "evaluate_attributes expects a flattened specification"
            )
        table.by_process[definition.name] = Attrs.empty()

    # Fixed-point iteration over the process attribute variables.
    for iteration in range(MAX_ITERATIONS):
        changed = False
        for definition in definitions:
            synthesized = _synthesize(definition.body.behaviour, table, record=False)
            if synthesized != table.by_process[definition.name]:
                table.by_process[definition.name] = synthesized
                changed = True
        table.iterations = iteration + 1
        if not changed:
            break
    else:  # pragma: no cover - MAX_ITERATIONS is far above lattice height
        raise AttributeEvaluationError("attribute fixed point did not converge")

    # Final recording pass now that the variables are stable.
    root_attrs = _synthesize(spec.root.behaviour, table, record=True)
    for definition in definitions:
        _synthesize(definition.body.behaviour, table, record=True)
    table.all_places = root_attrs.ap
    return table


def _synthesize(node: Behaviour, table: AttributeTable, record: bool) -> Attrs:
    attrs = _synthesize_node(node, table, record)
    if record:
        if node.nid is None:
            raise AttributeEvaluationError(
                "node has no number; run number_nodes before evaluate_attributes"
            )
        table.by_node[node.nid] = attrs
    return attrs


def _synthesize_node(node: Behaviour, table: AttributeTable, record: bool) -> Attrs:
    if isinstance(node, (Exit, Stop, Empty)):
        # ``exit`` contributes no places of its own: rule 17 gives the
        # prefix ``a_p; exit`` the places of its event, which the
        # ActionPrefix case below reconstructs from an empty Attrs here.
        return Attrs.empty()
    if isinstance(node, ActionPrefix):
        event = node.event
        if not isinstance(event, ServicePrimitive):
            # Internal actions and send/receive interactions have no
            # service place.  They are illegal in service specifications —
            # the restriction checker reports them — but attribute
            # evaluation stays total so that the checker gets to run:
            # the prefix is transparent for the attributes.
            tail = _synthesize(node.continuation, table, record)
            return tail
        here = frozenset([event.place])
        tail = _synthesize(node.continuation, table, record)
        # Rule 17 (``Event; exit``): the event is the last action, so
        # EP = {place}.  Rule 16 (``Event; Seq``): EP = EP(Seq), copied
        # *even while it is still the empty set* during fixed-point
        # iteration — the distinction must stay syntactic (is the
        # continuation literally exit/stop?), not "is EP(Seq) empty yet?",
        # or the equations stop being monotone and cyclic process graphs
        # (A calls B calls C calls A) never converge.
        if isinstance(node.continuation, (Exit, Stop)):
            ep = here
        else:
            ep = tail.ep
        return Attrs(here, ep, here | tail.ap)
    if isinstance(node, Choice):
        left = _synthesize(node.left, table, record)
        right = _synthesize(node.right, table, record)
        # Table 2 states SP(left) = SP(right) and EP(left) = EP(right)
        # (restrictions R1/R2); the union is the conservative reading for
        # not-yet-checked input — the restriction checker reports
        # violations before any derivation happens.
        return Attrs(left.sp | right.sp, left.ep | right.ep, left.ap | right.ap)
    if isinstance(node, Parallel):
        left = _synthesize(node.left, table, record)
        right = _synthesize(node.right, table, record)
        return Attrs(left.sp | right.sp, left.ep | right.ep, left.ap | right.ap)
    if isinstance(node, Enable):
        left = _synthesize(node.left, table, record)
        right = _synthesize(node.right, table, record)
        return Attrs(left.sp, right.ep, left.ap | right.ap)
    if isinstance(node, Disable):
        left = _synthesize(node.left, table, record)
        right = _synthesize(node.right, table, record)
        # Rule 91: SP(Dis) = SP(Par) ∪ SP(Mc); EP(Dis) = EP(Par) = EP(Mc)
        # under restriction R2 — union again for unchecked input.
        return Attrs(left.sp | right.sp, left.ep | right.ep, left.ap | right.ap)
    if isinstance(node, ProcessRef):
        process = table.by_process.get(node.name)
        if process is None:
            raise AttributeEvaluationError(f"undefined process {node.name!r}")
        return process
    if isinstance(node, Hide):
        # Not part of the service language (the checker rejects it);
        # transparent for attribute purposes.
        return _synthesize(node.body, table, record)
    raise AttributeEvaluationError(
        f"no attribute rule for node type {type(node).__name__}"
    )


def places_of(spec: Specification) -> Places:
    """All places mentioned by service primitives anywhere in the spec.

    This is a purely syntactic helper; the paper's ``ALL`` is the ``AP``
    of the root (unreachable definitions do not count) — use
    :attr:`AttributeTable.all_places` for that.
    """
    places = set()
    for node in spec.walk_behaviours():
        if isinstance(node, ActionPrefix) and isinstance(
            node.event, ServicePrimitive
        ):
            places.add(node.event.place)
    return frozenset(places)
