"""The naive-projection baseline: structure without synchronization.

Selecting "the proper actions for each place, within a global service
expression, without taking into account the need of synchronization would
be a trivial task" (paper Section 3) — and produces a protocol that does
not implement the service: nothing stops place 2 from executing ``b2``
before place 1 has executed ``a1`` in ``a1; exit >> b2; exit``.

The baseline is literally the Protocol Generator with message emission
switched off; it exists so tests and benchmarks can *demonstrate* that
every class of synchronization message earns its keep (experiment E5).
"""

from __future__ import annotations

from typing import Union

from repro.core.generator import DerivationResult, ProtocolGenerator
from repro.lotos.syntax import Specification


def derive_naive(
    service: Union[str, Specification], strict: bool = True
) -> DerivationResult:
    """Projection onto places with no synchronization messages at all."""
    return ProtocolGenerator(strict=strict, emit_sync=False).derive(service)
