"""The centralized "trivial solution" baseline (paper Section 3).

    "If we assume the existence of a central controller (a server PE), we
    can derive a trivial solution where only one PE (the server PE) has a
    copy of the given service specification and it informs all other PE's
    (client PE's) when each action should be executed by exchanging
    messages [...] Although this solution is simple, such a centralized
    control method requires many synchronization messages and the load
    for the server PE becomes large."

This module builds exactly that protocol so the paper's motivating
comparison (experiment E10) can be measured rather than asserted:

* the **server** (by default the smallest place) keeps the whole service
  structure; every remote primitive ``a_q`` becomes the exchange
  ``s_q(exec,N); r_q(done,N)``;
* every **client** runs one loop: receive an ``exec``, perform the named
  local primitive, return ``done`` — terminated by a ``halt`` broadcast
  after the service behaviour completes.

Caveats, deliberate for a baseline: choices between alternatives starting
at different... (in fact *any* choice) are resolved by the server — the
users' ability to drive a choice locally is lost, which is one of the
reasons the paper rejects this design.  Message occurrences are fixed at
the root path (the server serializes instances, so instance ambiguity
cannot arise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.core.attributes import evaluate_attributes, number_nodes
from repro.core.generator import _expand_full_sync
from repro.errors import DerivationError
from repro.lotos.events import (
    ReceiveAction,
    SendAction,
    ServicePrimitive,
    SyncMessage,
)
from repro.lotos.parser import parse
from repro.lotos.scope import flatten_spec
from repro.lotos.expansion import transform_disable_operands
from repro.lotos.syntax import (
    ActionPrefix,
    Behaviour,
    Choice,
    DefBlock,
    Enable,
    Exit,
    Parallel,
    ProcessDefinition,
    ProcessRef,
    Specification,
)

#: The halt broadcast closing every client loop.
HALT = SyncMessage(node=0, occurrence=(), kind="halt")

CLIENT_PROCESS = "Client"


@dataclass
class CentralizedResult:
    """Entities of the centralized protocol (same shape as the PG's)."""

    server: int
    entities: Dict[int, Specification]
    places: Tuple[int, ...]


def derive_centralized(
    service: Union[str, Specification], server: Optional[int] = None
) -> CentralizedResult:
    """Build the server/clients protocol for ``service``."""
    spec = parse(service) if isinstance(service, str) else service
    prepared = number_nodes(
        transform_disable_operands(_expand_full_sync(flatten_spec(spec)))
    )
    attrs = evaluate_attributes(prepared)
    places = tuple(sorted(attrs.all_places))
    if not places:
        raise DerivationError("service involves no places")
    chosen_server = server if server is not None else places[0]
    if chosen_server not in places:
        raise DerivationError(f"server {chosen_server} is not one of {places}")

    entities: Dict[int, Specification] = {
        chosen_server: _server_spec(prepared, chosen_server, places)
    }
    for place in places:
        if place != chosen_server:
            entities[place] = _client_spec(prepared, place, chosen_server)
    return CentralizedResult(chosen_server, entities, places)


# ----------------------------------------------------------------------
def _server_spec(
    prepared: Specification, server: int, places: Tuple[int, ...]
) -> Specification:
    root = _serverize(prepared.root.behaviour, server)
    clients = [place for place in places if place != server]
    if clients:
        root = Enable(root, _halt_broadcast(clients))
    definitions = tuple(
        ProcessDefinition(d.name, DefBlock(_serverize(d.body.behaviour, server)))
        for d in prepared.definitions
    )
    return Specification(DefBlock(root, definitions))


def _serverize(node: Behaviour, server: int) -> Behaviour:
    if isinstance(node, ActionPrefix):
        event = node.event
        continuation = _serverize(node.continuation, server)
        if not isinstance(event, ServicePrimitive):
            raise DerivationError(f"unexpected event {event} in service")
        if event.place == server:
            return ActionPrefix(event, continuation)
        nid = node.nid or 0
        exec_message = SyncMessage(node=nid, occurrence=(), kind="exec")
        done_message = SyncMessage(node=nid, occurrence=(), kind="done")
        return ActionPrefix(
            SendAction(dest=event.place, message=exec_message),
            ActionPrefix(
                ReceiveAction(src=event.place, message=done_message), continuation
            ),
        )
    if isinstance(node, ProcessRef):
        return ProcessRef(node.name, site=node.site, nid=node.nid)
    if isinstance(node, Parallel) and (node.sync or node.sync_all):
        raise DerivationError(
            "the centralized baseline cannot express rendezvous "
            "synchronization between remote users (|[G]| with a non-empty "
            "set); this is one more reason the paper's distributed "
            "derivation is preferable"
        )
    children = node.children()
    if not children:
        return node
    return node.with_children(
        tuple(_serverize(child, server) for child in children)
    )


def _halt_broadcast(clients: List[int]) -> Behaviour:
    sends: Behaviour = ActionPrefix(
        SendAction(dest=clients[-1], message=HALT), Exit()
    )
    for client in reversed(clients[:-1]):
        sends = Parallel(ActionPrefix(SendAction(dest=client, message=HALT), Exit()), sends)
    return sends


# ----------------------------------------------------------------------
def _client_spec(
    prepared: Specification, place: int, server: int
) -> Specification:
    """``Client = ( []_N r_c(exec,N); a_p; s_c(done,N); Client ) [] r_c(halt); exit``."""
    commands = _local_primitives(prepared, place)
    alternatives: List[Behaviour] = []
    for nid, primitive in commands:
        exec_message = SyncMessage(node=nid, occurrence=(), kind="exec")
        done_message = SyncMessage(node=nid, occurrence=(), kind="done")
        alternatives.append(
            ActionPrefix(
                ReceiveAction(src=server, message=exec_message),
                ActionPrefix(
                    primitive,
                    ActionPrefix(
                        SendAction(dest=server, message=done_message),
                        ProcessRef(CLIENT_PROCESS, site=0),
                    ),
                ),
            )
        )
    alternatives.append(
        ActionPrefix(ReceiveAction(src=server, message=HALT), Exit())
    )
    body = alternatives[-1]
    for alternative in reversed(alternatives[:-1]):
        body = Choice(alternative, body)
    return Specification(
        DefBlock(
            ProcessRef(CLIENT_PROCESS, site=0),
            (ProcessDefinition(CLIENT_PROCESS, DefBlock(body)),),
        )
    )


def _local_primitives(
    prepared: Specification, place: int
) -> List[Tuple[int, ServicePrimitive]]:
    """(node, primitive) pairs of every occurrence at ``place``."""
    found: List[Tuple[int, ServicePrimitive]] = []
    for node in prepared.walk_behaviours():
        if isinstance(node, ActionPrefix) and isinstance(
            node.event, ServicePrimitive
        ):
            if node.event.place == place:
                found.append((node.nid or 0, node.event))
    return found


def static_message_count(result: CentralizedResult, prepared: Specification) -> int:
    """Messages per *single pass* over the service text: 2 per remote
    primitive occurrence plus the final halt broadcast."""
    remote = 0
    for node in prepared.walk_behaviours():
        if isinstance(node, ActionPrefix) and isinstance(
            node.event, ServicePrimitive
        ):
            if node.event.place != result.server:
                remote += 1
    return 2 * remote + (len(result.places) - 1)
