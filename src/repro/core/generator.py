"""The Protocol Generator: the end-to-end pipeline of paper Section 4.

    Step 1: construct the derivation tree of the service specification
            (and put disable operands in action prefix form);
    Step 2: synthesize the SP/EP/AP attributes at every node;
    Step 3: for each place p, apply T_p to the root.

plus the admissibility checks the paper's Prolog prototype performed and
the ``empty``-elimination of the derived texts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.core.attributes import AttributeTable, evaluate_attributes, number_nodes
from repro.core.derivation import Deriver
from repro.core.restrictions import Violation, check_service, raise_on_violations
from repro.errors import DerivationError
from repro.obs.metrics import get_registry
from repro.obs.spans import get_tracer
from repro.lotos.events import ServicePrimitive
from repro.lotos.expansion import transform_disable_operands
from repro.lotos.parser import parse
from repro.lotos.scope import flatten_spec
from repro.lotos.syntax import (
    ActionPrefix,
    Behaviour,
    DefBlock,
    Parallel,
    ProcessDefinition,
    Specification,
)
from repro.lotos.unparse import unparse

ServiceInput = Union[str, Specification]

#: Version tag of the derivation algorithm itself.  It participates in
#: the content-addressed cache key of :mod:`repro.batch.cache`: bump it
#: whenever a change alters any derived entity text (simplification
#: laws, message numbering, operator handling, unparse formatting), so
#: stale cache entries can never shadow new output.  The golden corpus
#: (``tests/goldens``) failing is the usual tell that a bump is due.
ALGORITHM_VERSION = "1"

#: The complete option surface of :class:`ProtocolGenerator`, with the
#: paper-faithful defaults.  Batch tasks and cache keys canonicalize
#: against this mapping so that every option — present or defaulted —
#: contributes to the cache key.
OPTION_DEFAULTS = {
    "strict": True,
    "emit_sync": True,
    "mixed_choice": False,
    "subset_1986": False,
}


def normalize_options(options=None) -> Dict[str, bool]:
    """Merge ``options`` over :data:`OPTION_DEFAULTS`; reject unknowns.

    The result is the canonical, fully-spelled form used both to build
    a :class:`ProtocolGenerator` and to derive cache keys.
    """
    merged = dict(OPTION_DEFAULTS)
    if options:
        unknown = sorted(set(options) - set(OPTION_DEFAULTS))
        if unknown:
            raise ValueError(
                f"unknown derivation option(s) {unknown}; "
                f"known: {sorted(OPTION_DEFAULTS)}"
            )
        for name, value in options.items():
            merged[name] = bool(value)
    return merged


@dataclass
class DerivationResult:
    """Everything the Protocol Generator produced for one service.

    ``service``
        the specification as given (parsed, unprepared);
    ``prepared``
        the flattened, disable-normalized, numbered service tree the
        algorithm actually ran on;
    ``attrs``
        its attribute table (``attrs.all_places`` is the paper's ALL);
    ``entities``
        one derived protocol entity specification per place;
    ``violations``
        the admissibility findings (empty in strict mode, by construction).
    """

    service: Specification
    prepared: Specification
    attrs: AttributeTable
    entities: Dict[int, Specification] = field(default_factory=dict)
    violations: List[Violation] = field(default_factory=list)

    @property
    def places(self) -> List[int]:
        return sorted(self.entities)

    def entity(self, place: int) -> Specification:
        try:
            return self.entities[place]
        except KeyError as exc:
            raise KeyError(
                f"no entity for place {place}; places are {self.places}"
            ) from exc

    def entity_text(self, place: int, compact: bool = True) -> str:
        """The paper-style text of one derived protocol entity."""
        return unparse(self.entity(place), compact=compact)

    def describe(self) -> str:
        """Multi-entity textual report (one SPEC per place)."""
        parts = []
        for place in self.places:
            parts.append(f"-- Protocol entity for place {place} " + "-" * 20)
            parts.append(self.entity_text(place).rstrip())
        return "\n".join(parts) + "\n"


class ProtocolGenerator:
    """Configurable front end for the derivation algorithm.

    ``strict``
        reject service specifications violating R1-R3 / the grammar
        (paper behaviour).  Non-strict mode records the violations and
        derives anyway — useful for studying *why* the restrictions
        exist (tests do exactly that).
    ``emit_sync``
        ``False`` produces the naive-projection baseline (no messages).
    """

    def __init__(
        self,
        strict: bool = True,
        emit_sync: bool = True,
        mixed_choice: bool = False,
        subset_1986: bool = False,
    ) -> None:
        self.strict = strict
        self.emit_sync = emit_sync
        self.mixed_choice = mixed_choice
        #: Accept only the original [Boch 86] language: ';', '[]', '|||'.
        self.subset_1986 = subset_1986

    # ------------------------------------------------------------------
    def prepare(self, service: ServiceInput) -> Specification:
        """Steps the paper performs before attribute evaluation."""
        tracer = get_tracer()
        if isinstance(service, str):
            with tracer.span("derive.parse"):
                spec = parse(service)
        else:
            spec = service
        with tracer.span("derive.flatten"):
            spec = flatten_spec(spec)
        with tracer.span("derive.expand_sync"):
            spec = _expand_full_sync(spec)
        with tracer.span("derive.normalize_disable"):
            spec = transform_disable_operands(spec)
        with tracer.span("derive.number"):
            return number_nodes(spec)

    def derive(self, service: ServiceInput) -> DerivationResult:
        tracer = get_tracer()
        registry = get_registry()
        with tracer.span("derive") as derive_span:
            with tracer.span("derive.parse"):
                original = parse(service) if isinstance(service, str) else service
            prepared = self.prepare(original)
            with tracer.span("derive.attributes"):
                attrs = evaluate_attributes(prepared)
            with tracer.span("derive.restrictions"):
                violations = self.admissibility(prepared, attrs)
            deriver = Deriver(
                prepared,
                attrs,
                emit_sync=self.emit_sync,
                allow_mixed_choice=self.mixed_choice,
            )
            entities = {}
            for place in sorted(attrs.all_places):
                with tracer.span("derive.entity", place=place):
                    entities[place] = deriver.derive(place)
            derive_span.set(
                places=len(entities), sync_fragments=len(deriver.ledger)
            )
            registry.gauge(
                "derive.places", help="service access points in ALL"
            ).set(len(entities))
            registry.gauge(
                "derive.nodes", help="numbered nodes in the prepared tree"
            ).set(sum(1 for _ in prepared.walk_behaviours()))
            registry.counter(
                "derive.sync_fragments",
                help="Table 4 synchronization fragments generated",
            ).inc(len(deriver.ledger))
            registry.counter(
                "derive.violations", help="R1-R3/grammar findings recorded"
            ).inc(len(violations))
        return DerivationResult(
            service=original,
            prepared=prepared,
            attrs=attrs,
            entities=entities,
            violations=violations,
        )


    def admissibility(
        self, prepared: Specification, attrs: AttributeTable
    ) -> List[Violation]:
        """The R1-R3/grammar findings for a prepared tree, filtered the
        way this generator is configured (1986 subset, mixed-choice
        forgiveness); raises in strict mode."""
        violations = check_service(prepared, attrs)
        if self.subset_1986:
            from repro.core.restrictions import check_1986_subset

            violations = check_1986_subset(prepared) + violations
        if self.mixed_choice:
            violations = [
                violation
                for violation in violations
                if not self._handled_by_mixed_choice(violation, prepared, attrs)
            ]
        if self.strict:
            raise_on_violations(violations)
        return violations

    @staticmethod
    def _handled_by_mixed_choice(violation, prepared, attrs) -> bool:
        """R1 violations the arbiter protocol resolves are forgiven."""
        if violation.rule != "R1":
            return False
        from repro.lotos.syntax import Choice

        for node in prepared.walk_behaviours():
            if isinstance(node, Choice) and node.nid == violation.node:
                sp_left = attrs.sp(node.left)
                sp_right = attrs.sp(node.right)
                return (
                    len(sp_left) == 1
                    and len(sp_right) == 1
                    and sp_left != sp_right
                )
        return False


def derive_protocol(
    service: ServiceInput,
    strict: bool = True,
    emit_sync: bool = True,
    mixed_choice: bool = False,
) -> DerivationResult:
    """One-call convenience wrapper around :class:`ProtocolGenerator`."""
    return ProtocolGenerator(
        strict=strict, emit_sync=emit_sync, mixed_choice=mixed_choice
    ).derive(service)


# ----------------------------------------------------------------------
# Picklable task entry points for :mod:`repro.batch`.
#
# Each ``T_p`` projection is independent (the paper applies T_p to the
# root once per place), so a corpus run can fan out either one task per
# specification or — for large specifications — one task per place.
# These functions are module-level, take and return only plain
# JSON-able values, and build their own tracer/metrics registry, so
# they cross a ``ProcessPoolExecutor`` boundary without dragging along
# any process-global state.
# ----------------------------------------------------------------------
def derive_task(text: str, options: Optional[Dict[str, bool]] = None) -> Dict:
    """Derive every protocol entity of one service specification.

    Returns a plain dict: ``places`` (sorted ints), ``entities``
    (place -> unparse'd text, string keys for JSON round-tripping),
    ``violations`` / ``sync_fragments`` counts, and the worker's own
    ``trace`` + ``metrics`` documents.
    """
    from repro.obs.metrics import MetricsRegistry, use_registry
    from repro.obs.spans import Tracer, use_tracer

    opts = normalize_options(options)
    tracer = Tracer()
    registry = MetricsRegistry()
    with use_tracer(tracer), use_registry(registry):
        result = ProtocolGenerator(**opts).derive(text)
    return {
        "places": [int(place) for place in result.places],
        "entities": {
            str(place): result.entity_text(place) for place in result.places
        },
        "violations": len(result.violations),
        "sync_fragments": int(
            registry.counter("derive.sync_fragments").value()
        ),
        "trace": tracer.to_dict(),
        "metrics": registry.snapshot(),
    }


def list_places_task(
    text: str, options: Optional[Dict[str, bool]] = None
) -> Dict:
    """Prepare one specification and report its places (the paper's ALL)
    plus the admissibility verdict — the planning step before a
    per-place fan-out."""
    opts = normalize_options(options)
    generator = ProtocolGenerator(**opts)
    prepared = generator.prepare(parse(text))
    attrs = evaluate_attributes(prepared)
    violations = generator.admissibility(prepared, attrs)
    return {
        "places": sorted(int(place) for place in attrs.all_places),
        "violations": len(violations),
    }


def derive_place_task(
    text: str, place: int, options: Optional[Dict[str, bool]] = None
) -> Dict:
    """One ``T_p`` projection: derive only ``place``'s protocol entity.

    Byte-identical to the corresponding entry of :func:`derive_task`:
    node numbering happens during ``prepare`` and each projection only
    reads the shared attribute table, so deriving places separately (in
    any order, in any process) cannot change any entity text.
    """
    opts = normalize_options(options)
    generator = ProtocolGenerator(**opts)
    prepared = generator.prepare(parse(text))
    attrs = evaluate_attributes(prepared)
    generator.admissibility(prepared, attrs)
    deriver = Deriver(
        prepared,
        attrs,
        emit_sync=opts["emit_sync"],
        allow_mixed_choice=opts["mixed_choice"],
    )
    entity = deriver.derive(place)
    return {
        "place": int(place),
        "text": unparse(entity, compact=True),
        "sync_fragments": len(deriver.ledger),
    }


def _expand_full_sync(spec: Specification) -> Specification:
    """Rewrite every ``||`` into ``|[explicit event set]|``.

    ``B1 || B2`` synchronizes on every observable event; for the concrete
    events present, that equals ``|[events of B1 and B2]|`` (law P4).
    The derivation rule (Table 3 rule 11) needs the explicit subset so
    that ``select_p`` can project it.
    """

    def primitives(node: Behaviour) -> frozenset:
        found = set()
        for sub in node.walk():
            if isinstance(sub, ActionPrefix) and isinstance(
                sub.event, ServicePrimitive
            ):
                found.add(sub.event)
        return frozenset(found)

    def rewrite(node: Behaviour) -> Behaviour:
        children = node.children()
        if children:
            new_children = tuple(rewrite(child) for child in children)
            if any(new is not old for new, old in zip(new_children, children)):
                node = node.with_children(new_children)
        if isinstance(node, Parallel) and node.sync_all:
            from repro.lotos.syntax import ProcessRef

            if any(isinstance(sub, ProcessRef) for sub in node.walk()):
                raise DerivationError(
                    "cannot expand '||' over process invocations; write an "
                    "explicit |[event set]| instead"
                )
            events = primitives(node.left) | primitives(node.right)
            return Parallel(node.left, node.right, sync=events, nid=node.nid)
        return node

    root = rewrite(spec.root.behaviour)
    definitions = tuple(
        ProcessDefinition(d.name, DefBlock(rewrite(d.body.behaviour)))
        for d in spec.definitions
    )
    if root is spec.root.behaviour and all(
        new.body.behaviour is old.body.behaviour
        for new, old in zip(definitions, spec.definitions)
    ):
        return spec
    return Specification(DefBlock(root, definitions))
