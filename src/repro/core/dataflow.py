"""Interaction-parameter data flow (the [Gotz 90] extension, Section 6).

    "The extension of the algorithm presented in this paper to service
    and protocol specifications with interaction parameters may be
    pursued along the lines described in [Gotz 90].  This implies the
    addition of supplementary parameters to the synchronization messages
    and, in some cases, additional message exchanges between different
    places."

This module computes exactly those two facts for a derived protocol:

* which values each synchronization message must **piggyback** so every
  consuming primitive finds its parameters locally available, and
* which consumers **cannot** be served by the existing message structure
  (the "additional message exchanges" case).

Scope: parameters are opaque names (``read1(rec)``); the first textual
occurrence of a name *produces* the value, later occurrences *consume*
it.  Knowledge propagation follows the synchronization skeleton in node
order — exact for sequence-structured flow (``;``/``>>``/process
chains), conservative for parallel branches, and per-branch for choices
(a value produced in one alternative is not assumed in the other).  The
analysis is a *planning report*: it does not alter the derived entities
or the runtime (whose messages stay pure synchronization tokens, as in
the base paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.derivation import Deriver, LedgerEntry
from repro.core.generator import DerivationResult
from repro.lotos.events import ServicePrimitive
from repro.lotos.syntax import ActionPrefix, Choice


@dataclass(frozen=True)
class ParameterUse:
    """One occurrence of a parameter at a primitive."""

    variable: str
    place: int
    node: int
    event: str


@dataclass
class MessagePayload:
    """Values one synchronization message must carry."""

    rule: str
    node: int
    sender: int
    receivers: FrozenSet[int]
    variables: Set[str] = field(default_factory=set)

    def __str__(self) -> str:
        to = ",".join(str(r) for r in sorted(self.receivers))
        carried = ",".join(sorted(self.variables)) or "-"
        return f"message N={self.node} {self.sender}->{{{to}}} carries [{carried}]"


@dataclass
class ParameterReport:
    """Outcome of the data-flow analysis."""

    producers: Dict[str, ParameterUse] = field(default_factory=dict)
    consumers: List[ParameterUse] = field(default_factory=list)
    payloads: List[MessagePayload] = field(default_factory=list)
    #: Consumers whose value never reaches their place through the
    #: existing synchronization structure — the paper's "additional
    #: message exchanges" case.
    unreachable: List[ParameterUse] = field(default_factory=list)

    @property
    def satisfied(self) -> bool:
        return not self.unreachable

    def payload_of(self, node: int, sender: int) -> Optional[MessagePayload]:
        for payload in self.payloads:
            if payload.node == node and payload.sender == sender:
                return payload
        return None

    def render(self) -> str:
        lines = [
            f"parameters          : {len(self.producers)}",
            f"consumer occurrences: {len(self.consumers)}",
            f"annotated messages  : "
            f"{sum(1 for p in self.payloads if p.variables)}"
            f" of {len(self.payloads)}",
            f"unreachable         : {len(self.unreachable)}",
        ]
        for payload in self.payloads:
            if payload.variables:
                lines.append(f"  {payload}")
        for use in self.unreachable:
            lines.append(
                f"  UNREACHABLE: {use.variable} needed by {use.event} at "
                f"place {use.place} (extra message exchange required)"
            )
        return "\n".join(lines)


def _parameter_uses(result: DerivationResult) -> List[ParameterUse]:
    """All parameter occurrences in service-tree node order."""
    uses: List[ParameterUse] = []
    for node in result.prepared.walk_behaviours():
        if isinstance(node, ActionPrefix) and isinstance(
            node.event, ServicePrimitive
        ):
            for variable in node.event.params:
                uses.append(
                    ParameterUse(
                        variable, node.event.place, node.nid or 0, str(node.event)
                    )
                )
    uses.sort(key=lambda use: use.node)
    return uses


def _choice_scopes(result: DerivationResult) -> List[Tuple[int, int, int, int]]:
    """(left_start, left_end, right_start, right_end) node ranges per choice.

    Node numbering is preorder, so a subtree occupies a contiguous nid
    range; knowledge acquired inside one alternative must not leak into
    the other.
    """
    scopes = []
    for node in result.prepared.walk_behaviours():
        if isinstance(node, Choice):
            left_ids = [n.nid for n in node.left.walk() if n.nid is not None]
            right_ids = [n.nid for n in node.right.walk() if n.nid is not None]
            if left_ids and right_ids:
                scopes.append(
                    (min(left_ids), max(left_ids), min(right_ids), max(right_ids))
                )
    return scopes


def analyze_parameters(result: DerivationResult) -> ParameterReport:
    """Compute message payloads and unreachable consumers.

    The simulation walks events and ledger messages merged in node
    order; a message carries every value its sender knows that is still
    *live* (some later consumer exists whose place might lack it).
    Choice alternatives are separated: a value produced inside one
    alternative is consumable only within that alternative's node range.
    """
    report = ParameterReport()
    uses = _parameter_uses(result)
    if not uses:
        return report

    deriver = Deriver(result.prepared, result.attrs)
    for place in sorted(result.attrs.all_places):
        deriver.derive(place)
    sends = [entry for entry in deriver.ledger if entry.role == "send"]
    scopes = _choice_scopes(result)

    for use in uses:
        if use.variable not in report.producers:
            report.producers[use.variable] = use
        else:
            report.consumers.append(use)

    def same_branch(node_a: int, node_b: int) -> bool:
        """False when the two nodes sit in opposite choice alternatives."""
        for left_low, left_high, right_low, right_high in scopes:
            a_left = left_low <= node_a <= left_high
            b_left = left_low <= node_b <= left_high
            a_right = right_low <= node_a <= right_high
            b_right = right_low <= node_b <= right_high
            if (a_left and b_right) or (a_right and b_left):
                return False
        return True

    live_after: Dict[str, int] = {}
    for use in report.consumers:
        live_after[use.variable] = max(
            live_after.get(use.variable, 0), use.node
        )

    # Merge events and message sends in node order (events first at ties:
    # the prefix fires before the messages its rule generates).
    timeline: List[Tuple[int, int, object]] = [
        (use.node, 0, use) for use in uses
    ] + [(entry.node, 1, entry) for entry in sends]
    timeline.sort(key=lambda item: (item[0], item[1]))

    knowledge: Dict[int, Dict[str, int]] = {
        place: {} for place in result.attrs.all_places
    }  # place -> variable -> producing node (for branch checks)

    for node, _kind, item in timeline:
        if isinstance(item, ParameterUse):
            producer = report.producers[item.variable]
            if producer.node == item.node:
                knowledge[item.place][item.variable] = item.node
            else:
                known_at = knowledge[item.place].get(item.variable)
                if known_at is None or not same_branch(known_at, item.node):
                    report.unreachable.append(item)
        else:
            entry: LedgerEntry = item
            payload = MessagePayload(
                entry.rule, entry.node, entry.place, entry.peers
            )
            for variable, origin in knowledge[entry.place].items():
                if not same_branch(origin, entry.node):
                    continue
                if live_after.get(variable, 0) <= entry.node:
                    continue  # no consumer remains: not live
                payload.variables.add(variable)
                for receiver in entry.peers:
                    knowledge[receiver].setdefault(variable, origin)
            report.payloads.append(payload)
    return report
