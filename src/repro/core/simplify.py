"""Elimination of ``empty`` and vacuous fragments (paper Section 4.2).

The derivation rules of Table 3 splice ``empty`` strings wherever a
synchronization function has nothing to contribute for the current place.
The paper removes them with the laws::

    empty ; e   = e          (realized structurally: the projection rules
                              never build a prefix with an empty event)
    empty >> e  = e
    e >> empty  = e
    e ||| empty = e

plus, implicitly in the printed derivations, the *vacuous-exit* law
``exit >> e = e``.  The last one deserves a comment: in full LOTOS
``exit >> e`` equals ``i; e`` (law E1), which is *not* congruent to ``e``.
Here the ``exit`` arises purely from the projection of actions located at
other places, and eliminating the internal step is not only cosmetic but
necessary: a choice branch that begins with a projected-away alternative
must stay guarded by its synchronization *receive*, not by an internal
action that would let the entity commit to the branch before any message
arrives.  The paper's own Example 5 output (place 2, ``[] (r1(19);exit)``)
shows the law applied.

The choice laws ``e [] e = e`` (C3) and ``empty [] empty = empty`` tidy
the places that participate in neither alternative.
"""

from __future__ import annotations

from repro.errors import DerivationError
from repro.lotos.syntax import (
    Behaviour,
    Choice,
    DefBlock,
    Disable,
    Empty,
    Enable,
    Exit,
    Hide,
    Parallel,
    ProcessDefinition,
    Specification,
)


def simplify(node: Behaviour) -> Behaviour:
    """Bottom-up application of the elimination laws."""
    children = node.children()
    if children:
        new_children = tuple(simplify(child) for child in children)
        if any(new is not old for new, old in zip(new_children, children)):
            node = node.with_children(new_children)
    return _simplify_top(node)


def _simplify_top(node: Behaviour) -> Behaviour:
    if isinstance(node, Enable):
        if isinstance(node.left, Empty):
            return node.right
        if isinstance(node.right, Empty):
            return node.left
        if isinstance(node.left, Exit):
            # Vacuous-exit law; see the module docstring.
            return node.right
        if isinstance(node.right, Exit):
            # ``e >> exit = e`` — unlike the left variant this one is a
            # genuine observation congruence (it removes one internal
            # step just before termination); the paper's printed
            # derivations apply it (Example 3, Section 4.2).
            return node.left
        return node
    if isinstance(node, Parallel):
        left_empty = isinstance(node.left, Empty)
        right_empty = isinstance(node.right, Empty)
        if left_empty and right_empty:
            return Empty()
        if node.is_interleaving():
            if left_empty:
                return node.right
            if right_empty:
                return node.left
            # ``B ||| exit = B``: exit is the unit of pure interleaving
            # (termination synchronizes, so the exit operand adds
            # nothing).  This clears the vacuous fragments that the
            # projection leaves at places not involved in one branch —
            # without it the derived entity performs a spurious initial
            # internal step and observation congruence is lost.
            if isinstance(node.left, Exit):
                return node.right
            if isinstance(node.right, Exit):
                return node.left
        return node
    if isinstance(node, Choice):
        if isinstance(node.left, Empty) and isinstance(node.right, Empty):
            return Empty()
        if isinstance(node.left, Empty) or isinstance(node.right, Empty):
            raise DerivationError(
                "a choice with exactly one empty alternative survived "
                "simplification; the Alternative synchronization should "
                "have prevented this (paper Section 3.2)"
            )
        if node.left == node.right:
            return node.left
        return node
    if isinstance(node, Disable):
        if isinstance(node.left, Empty) and isinstance(node.right, Empty):
            return Empty()
        if isinstance(node.right, Empty):
            return node.left
        if isinstance(node.left, Empty):
            return node.right
        return node
    if isinstance(node, Hide):
        if isinstance(node.body, Empty):
            return Empty()
        return node
    return node


def simplify_spec(spec: Specification) -> Specification:
    """Simplify the main behaviour and every process body."""
    root = simplify(spec.root.behaviour)
    definitions = tuple(
        ProcessDefinition(d.name, DefBlock(simplify(d.body.behaviour)))
        for d in spec.definitions
    )
    return Specification(DefBlock(root, definitions))
