"""The synchronization-message functions of Table 4.

Each function answers, for one place ``p`` and one syntactic context,
"which synchronization messages must entity ``p`` exchange here?", and
returns a behaviour fragment: an interleaving of one-shot sends/receives
(``s_j(s,N); exit ||| ...``), or :class:`Empty` when place ``p`` has
nothing to do — exactly the strings ``send(P,N)``/``receive(P,N)`` of the
paper, as ASTs.

All messages carry the symbolic occurrence (``occurrence=None``): the
runtime binds it to the occurrence path of the enclosing process instance
(Section 3.5), identically at every place because the derivation
preserves the structure of the service specification.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional

from repro.core.attributes import AttributeTable
from repro.lotos.events import (
    Event,
    ReceiveAction,
    SendAction,
    ServicePrimitive,
    SyncMessage,
    place_of,
)
from repro.lotos.syntax import (
    ActionPrefix,
    Behaviour,
    Empty,
    Exit,
    Parallel,
    ProcessRef,
)

Places = FrozenSet[int]


def _node_number(node: Behaviour) -> int:
    if node.nid is None:
        raise ValueError("synchronization requires a numbered service tree")
    return node.nid


def send_to(places: Iterable[int], node: int) -> Behaviour:
    """``send(P, N)``: ``( s_i(s,N);exit ||| ... ||| s_k(s,N);exit )``."""
    return _one_shots(
        [SendAction(dest=place, message=SyncMessage(node)) for place in sorted(places)]
    )


def receive_from(places: Iterable[int], node: int) -> Behaviour:
    """``receive(P, N)``: ``( r_i(s,N);exit ||| ... ||| r_k(s,N);exit )``."""
    return _one_shots(
        [ReceiveAction(src=place, message=SyncMessage(node)) for place in sorted(places)]
    )


def _one_shots(events: list) -> Behaviour:
    """Interleaved one-shot interactions; ``empty`` when there are none."""
    if not events:
        return Empty()
    result: Behaviour = ActionPrefix(events[-1], Exit())
    for event in reversed(events[:-1]):
        result = Parallel(ActionPrefix(event, Exit()), result)
    return result


def synch_left(
    p: int, e1: Behaviour, e2: Behaviour, attrs: AttributeTable
) -> Behaviour:
    """``Synch_Left_p(e1, e2)`` — sequential synchronization, sender side.

    Every ending place of ``e1`` announces completion to every starting
    place of ``e2`` (Section 3.1).
    """
    if p in attrs.ep(e1):
        return send_to(attrs.sp(e2) - {p}, _node_number(e1))
    return Empty()


def synch_right(
    p: int, e1: Behaviour, e2: Behaviour, attrs: AttributeTable
) -> Behaviour:
    """``Synch_Right_p(e1, e2)`` — sequential synchronization, receiver side.

    Every starting place of ``e2`` must collect the completion messages
    of every ending place of ``e1`` before proceeding.
    """
    if p in attrs.sp(e2):
        return receive_from(attrs.ep(e1) - {p}, _node_number(e1))
    return Empty()


def rel(p: int, e: Behaviour, attrs: AttributeTable) -> Behaviour:
    """``Rel_p(e)`` — termination synchronization under a disable.

    Places must not "freely terminate their [normal] sequence" (Section
    3.3): each ending place broadcasts its completion to every other
    place and waits for the other ending places; non-ending places wait
    for all ending places.
    """
    node = _node_number(e)
    ep = attrs.ep(e)
    if p in ep:
        send_part = send_to(attrs.all_places - {p}, node)
        receive_part = receive_from(ep - {p}, node)
        if isinstance(receive_part, Empty):
            return send_part
        if isinstance(send_part, Empty):
            return receive_part
        return Parallel(send_part, receive_part)
    return receive_from(ep, node)


def interr(
    p: int, e1: Behaviour, e2: Behaviour, attrs: AttributeTable
) -> Behaviour:
    """``Interr_p(e1, e2)`` — interrupt broadcast (Section 3.3, Table 4).

    When the disabling event (``e1``, an event prefix) occurs, its place
    broadcasts the interruption to every place not already notified
    through the ordinary prefix synchronization with the continuation
    ``e2`` (whose starting places receive ``Synch_Left`` messages
    instead).
    """
    node = _node_number(e1)
    sp1 = attrs.sp(e1)
    others = attrs.all_places - sp1 - attrs.sp(e2)
    if p in sp1:
        return send_to(others, node)
    if p in others:
        return receive_from(sp1, node)
    return Empty()


def alternative(
    p: int, e1: Behaviour, e2: Behaviour, attrs: AttributeTable
) -> Behaviour:
    """``Alternative_p(e1, e2)`` — empty-alternative avoidance (Section 3.2).

    After the alternative ``e1`` of a choice ``e1 [] e2`` completes, its
    starting place informs every place that participates in ``e2`` but
    not in ``e1`` — otherwise those places could never learn that the
    choice fell on ``e1`` and would wait forever.
    """
    node = _node_number(e1)
    sp1 = attrs.sp(e1)
    non_participating = attrs.ap(e2) - attrs.ap(e1)
    if p in sp1:
        return send_to(non_participating - {p}, node)
    if p in non_participating:
        return receive_from(sp1, node)
    return Empty()


def proc_synch(p: int, ref: ProcessRef, attrs: AttributeTable) -> Behaviour:
    """``Proc_Synch_p(e)`` — synchronization at the process level.

    Every process invocation is announced by the starting places of the
    process to all other places (Section 3.4), so that places with no
    action before the invocation still enter their local copy of the
    process at the right moment.
    """
    node = _node_number(ref)
    sp = attrs.sp(ref)
    if p in sp:
        return send_to(attrs.all_places - sp, node)
    return receive_from(sp & attrs.all_places, node)


def select(p: int, subset: FrozenSet[Event]) -> FrozenSet[Event]:
    """``select_p(set)`` — the events of ``set`` local to place ``p``."""
    return frozenset(event for event in subset if place_of(event) == p)


def proj(p: int, event: ServicePrimitive) -> Optional[ServicePrimitive]:
    """``Proj_p(e)`` — the event itself at its own place, else ``empty``.

    Returns ``None`` for the "empty" outcome; the derivation rules splice
    the event in (or not) accordingly.
    """
    return event if event.place == p else None
