"""Service-specification admissibility checks (paper Sections 2, 3.2, 3.3).

The Protocol Generator "checks the syntax of the given service
specification and its conformance to the restrictions R1, R2 and R3"::

    R1  (choice)   SP(e1) = SP(e2) = {p} for some single place p
    R2  (choice,   EP(e1) = EP(e2)
         disable)
    R3  (disable)  SP(e2) ⊆ EP(e1)

plus the grammar-level conditions: only service primitives as events (no
send/receive interactions, no internal action), no hiding, and every
disable operand in action prefix form.

As in the paper, "no automatic decision is taken, nor any suggestion is
given on how the user has to proceed" — violations are reported, and the
generator refuses to derive in strict mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.core.attributes import AttributeTable
from repro.errors import RestrictionViolation
from repro.lotos.events import ServicePrimitive
from repro.lotos.expansion import is_action_prefix_form
from repro.lotos.location import Span
from repro.lotos.syntax import (
    ActionPrefix,
    Behaviour,
    Choice,
    Disable,
    Empty,
    Enable,
    Hide,
    Parallel,
    ProcessRef,
    Specification,
    Stop,
)


@dataclass(frozen=True)
class Violation:
    """One admissibility violation, attached to a numbered node.

    ``loc`` is the source span of the offending node when the tree still
    carries parser locations (``None`` for synthesized nodes).
    """

    rule: str
    node: int
    message: str
    loc: Optional[Span] = None

    def __str__(self) -> str:
        where = f" (line {self.loc.line}, column {self.loc.column})" if self.loc else ""
        return f"{self.rule} at node {self.node}{where}: {self.message}"


def check_service(spec: Specification, attrs: AttributeTable) -> List[Violation]:
    """All violations of a numbered, flattened service specification."""
    violations: List[Violation] = []
    for behaviour in spec.walk_behaviours():
        violations.extend(_check_node(behaviour, attrs))
    violations.extend(_check_guardedness(spec))
    return violations


def check_1986_subset(spec: Specification) -> List[Violation]:
    """Restrict to the original SIGCOMM 1986 language ([Boch 86]).

    The 1986 algorithm handled only action prefix, choice and pure
    interleaving — no ``>>``, ``[>``, rendezvous parallelism or process
    invocation (those arrived with [Khen 89] and this paper).  The
    subset mode documents exactly how much the extension buys.
    """
    violations: List[Violation] = []
    for node in spec.walk_behaviours():
        nid = node.nid if node.nid is not None else -1
        if isinstance(node, Enable):
            violations.append(
                Violation(
                    "1986",
                    nid,
                    "'>>' requires the extended algorithm",
                    loc=node.loc,
                )
            )
        elif isinstance(node, Disable):
            violations.append(
                Violation(
                    "1986",
                    nid,
                    "'[>' requires the extended algorithm",
                    loc=node.loc,
                )
            )
        elif isinstance(node, Parallel) and not node.is_interleaving():
            violations.append(
                Violation(
                    "1986",
                    nid,
                    "rendezvous parallelism requires the extended algorithm",
                    loc=node.loc,
                )
            )
        elif isinstance(node, ProcessRef):
            violations.append(
                Violation(
                    "1986",
                    nid,
                    "process invocation requires the extended algorithm "
                    "([Khen 89] and later)",
                    loc=node.loc,
                )
            )
    return violations


def raise_on_violations(violations: List[Violation]) -> None:
    if violations:
        summary = "; ".join(str(v) for v in violations[:5])
        if len(violations) > 5:
            summary += f" (+{len(violations) - 5} more)"
        raise RestrictionViolation(violations[0].rule, summary)


def _check_node(node: Behaviour, attrs: AttributeTable) -> List[Violation]:
    nid = node.nid if node.nid is not None else -1
    violations: List[Violation] = []
    if isinstance(node, Hide):
        violations.append(
            Violation(
                "GRAMMAR",
                nid,
                "hiding is not supported in service specs",
                loc=node.loc,
            )
        )
        return violations
    if isinstance(node, (Stop, Empty)):
        violations.append(
            Violation(
                "GRAMMAR",
                nid,
                f"'{type(node).__name__.lower()}' is not part of the service "
                "language (Table 1)",
                loc=node.loc,
            )
        )
        return violations
    if isinstance(node, ActionPrefix):
        if not isinstance(node.event, ServicePrimitive):
            violations.append(
                Violation(
                    "GRAMMAR",
                    nid,
                    f"event {node.event} is not a service primitive "
                    "(send/receive interactions and 'i' belong to the "
                    "protocol level)",
                    loc=node.loc,
                )
            )
        return violations
    if isinstance(node, Parallel):
        for event in node.sync:
            if not isinstance(event, ServicePrimitive):
                violations.append(
                    Violation(
                        "GRAMMAR",
                        nid,
                        f"synchronization set contains non-primitive {event}",
                        loc=node.loc,
                    )
                )
        return violations
    if isinstance(node, Choice):
        left, right = attrs.of(node.left), attrs.of(node.right)
        if left.sp != right.sp or len(left.sp) != 1:
            violations.append(
                Violation(
                    "R1",
                    nid,
                    f"choice alternatives must start at one common place; "
                    f"SP(left)={_fmt(left.sp)}, SP(right)={_fmt(right.sp)}",
                    loc=node.loc,
                )
            )
        if left.ep != right.ep:
            violations.append(
                Violation(
                    "R2",
                    nid,
                    f"choice alternatives must end at the same places; "
                    f"EP(left)={_fmt(left.ep)}, EP(right)={_fmt(right.ep)}",
                    loc=node.loc,
                )
            )
        return violations
    if isinstance(node, Disable):
        left, right = attrs.of(node.left), attrs.of(node.right)
        if left.ep != right.ep:
            violations.append(
                Violation(
                    "R2",
                    nid,
                    f"disable operands must end at the same places; "
                    f"EP(normal)={_fmt(left.ep)}, EP(interrupt)={_fmt(right.ep)}",
                    loc=node.loc,
                )
            )
        if not right.sp <= left.ep:
            violations.append(
                Violation(
                    "R3",
                    nid,
                    f"the disabling events must start at ending places of the "
                    f"normal part; SP(interrupt)={_fmt(right.sp)} ⊄ "
                    f"EP(normal)={_fmt(left.ep)}",
                    loc=node.loc,
                )
            )
        if not is_action_prefix_form(node.right):
            violations.append(
                Violation(
                    "APF",
                    nid,
                    "disable operand is not in action prefix form; apply "
                    "repro.lotos.expansion.transform_disable_operands",
                    loc=node.loc,
                )
            )
        return violations
    return violations


def _check_guardedness(spec: Specification) -> List[Violation]:
    """Detect recursion that can re-enter a process without any action.

    Unguarded recursion (``PROC A = A END`` or ``PROC A = A [] a1;exit``)
    makes the operational semantics diverge; the check approximates
    "reachable at initial position" structurally.
    """
    heads: Dict[str, Set[str]] = {}
    def_locs: Dict[str, Optional[Span]] = {}
    for definition in spec.definitions:
        heads[definition.name] = _initial_refs(definition.body.behaviour)
        def_locs[definition.name] = definition.loc

    violations: List[Violation] = []
    for name in heads:
        seen: Set[str] = set()
        frontier = set(heads.get(name, ()))
        while frontier:
            current = frontier.pop()
            if current == name:
                violations.append(
                    Violation(
                        "GUARD",
                        -1,
                        f"process {name!r} can invoke itself without first "
                        "offering an action (unguarded recursion)",
                        loc=def_locs.get(name),
                    )
                )
                break
            if current in seen:
                continue
            seen.add(current)
            frontier |= heads.get(current, set())
    return violations


def _initial_refs(node: Behaviour) -> Set[str]:
    """Process names invocable before any event is offered."""
    if isinstance(node, ProcessRef):
        return {node.name}
    if isinstance(node, ActionPrefix):
        return set()
    if isinstance(node, (Choice, Parallel, Disable)):
        result = set()
        for child in node.children():
            result |= _initial_refs(child)
        return result
    if isinstance(node, Enable):
        # The right side becomes initial only if the left can terminate
        # immediately; conservatively, only a bare exit does.
        from repro.lotos.syntax import Exit

        result = _initial_refs(node.left)
        if isinstance(node.left, Exit):
            result |= _initial_refs(node.right)
        return result
    if isinstance(node, Hide):
        return _initial_refs(node.body)
    return set()


def _fmt(places) -> str:
    return "{" + ",".join(str(p) for p in sorted(places)) + "}"
