"""Distributed choice between different places (lifting restriction R1).

The paper restricts every choice ``e1 [] e2`` to alternatives starting
at one common place (R1) because "we cannot 'disable' instantly the not
chosen alternative" across the medium, and defers relaxations to
[Kant 92, Kant 93].  This module implements one such relaxation for the
two-starter case ``SP(e1) = {pA}``, ``SP(e2) = {pB}``, ``pA != pB``:

* ``pA`` acts as the **arbiter**.  It offers its own initial event *and*
  a request from ``pB`` — a choice it can resolve *locally*;
* ``pB`` announces its interest with ``req`` immediately on entering the
  choice and guards its initial event on a ``grant``:

  =============   ==================================================
  entity pA       ``( a; (r_pB(req) >> s_pB(deny) >> restA) )
                  [] ( r_pB(req) >> s_pB(grant) >> T_pA(e2) )``
  entity pB       ``s_pA(req) >> ( (r_pA(grant); b; restB)
                  [] (r_pA(deny) >> T_pB(e1)) )``
  others          unchanged (Table 3 rule 14)
  =============   ==================================================

Properties (exercised by the tests):

* the losing initial event is *never* offered to its user after the
  choice resolves — the instant-disable problem disappears because the
  only cross-place race (pA's own event vs. pB's request) is resolved
  locally at pA;
* ``deny`` doubles as the Section 3.2 ``Alternative`` notification for
  ``pB``, and is exchanged immediately after pA's initial event (not
  after the branch completes), so pB's participation *inside* ``e1``
  is not stalled;
* all request/grant/deny traffic is internal — the composed system
  remains weak-trace equivalent to the service.

R2 (equal ending places) still applies.  The alternatives must be
event-prefixed at their starting place (an alternative that *begins*
with a process invocation would need the graft inside the process body).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import DerivationError
from repro.lotos.events import ReceiveAction, SendAction, SyncMessage
from repro.lotos.syntax import (
    ActionPrefix,
    Behaviour,
    Choice,
    Enable,
    Exit,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.derivation import Deriver


def applicable(deriver: "Deriver", node: Choice) -> bool:
    """Whether this choice needs (and supports) the arbiter protocol."""
    sp_left = deriver.attrs.sp(node.left)
    sp_right = deriver.attrs.sp(node.right)
    return len(sp_left) == 1 and len(sp_right) == 1 and sp_left != sp_right


def _one_shot(event) -> Behaviour:
    return ActionPrefix(event, Exit())


def derive_mixed_choice(deriver: "Deriver", p: int, node: Choice) -> Behaviour:
    """``T_p`` for a two-starter choice, arbiter protocol included."""
    attrs = deriver.attrs
    (arbiter,) = attrs.sp(node.left)
    (requester,) = attrs.sp(node.right)
    nid = node.nid
    if nid is None:
        raise DerivationError("mixed choice requires a numbered service tree")

    req = SyncMessage(nid, kind="req")
    grant = SyncMessage(nid, kind="grant")
    deny = SyncMessage(nid, kind="deny")

    left_projection = deriver.transform(p, node.left)
    right_projection = deriver.transform(p, node.right)

    if p == arbiter:
        if not isinstance(left_projection, ActionPrefix):
            raise DerivationError(
                "mixed choice requires the arbiter's alternative to begin "
                "with its own event (event-prefixed Seq)"
            )
        deriver._log("mixed-choice", nid, p, "send", {requester})
        deny_exchange = Enable(
            _one_shot(ReceiveAction(src=requester, message=req)),
            _one_shot(SendAction(dest=requester, message=deny)),
        )
        # a; (recv req >> send deny >> rest-of-e1)
        win_branch = ActionPrefix(
            left_projection.event,
            Enable(deny_exchange, left_projection.continuation),
        )
        win_branch = Enable(
            win_branch, deriver._alternative_excluding(p, node.left, node.right, requester)
        )
        grant_exchange = Enable(
            _one_shot(ReceiveAction(src=requester, message=req)),
            _one_shot(SendAction(dest=requester, message=grant)),
        )
        lose_branch = Enable(grant_exchange, right_projection)
        return Choice(win_branch, lose_branch)

    if p == requester:
        if not isinstance(right_projection, ActionPrefix):
            raise DerivationError(
                "mixed choice requires the requester's alternative to begin "
                "with its own event (event-prefixed Seq)"
            )
        deriver._log("mixed-choice", nid, p, "send", {arbiter})
        granted = Enable(
            _one_shot(ReceiveAction(src=arbiter, message=grant)),
            Enable(
                ActionPrefix(
                    right_projection.event, right_projection.continuation
                ),
                deriver._alternative_excluding(p, node.right, node.left, arbiter),
            ),
        )
        denied = Enable(
            _one_shot(ReceiveAction(src=arbiter, message=deny)),
            left_projection,
        )
        return Enable(
            _one_shot(SendAction(dest=arbiter, message=req)),
            Choice(granted, denied),
        )

    # Everyone else: standard rule 14, except that the starters handle
    # their own notifications through grant/deny.
    return Choice(
        Enable(
            left_projection,
            deriver._alternative_excluding(p, node.left, node.right, requester),
        ),
        Enable(
            right_projection,
            deriver._alternative_excluding(p, node.right, node.left, arbiter),
        ),
    )
