"""Message-complexity analysis (paper Section 4.3).

"The factor which directly determines the number of synchronization
messages is the number of places in the service specification."  With
``n = |ALL|`` the paper bounds the messages generated per construct:

=====================  ==========================================
construct              messages (upper bound)
=====================  ==========================================
``;`` or ``>>``        1  (|EP(e1)| = |SP(e2)| = 1; in general
                       |EP| x |SP| minus local pairs — each
                       parallel branch multiplies, as the paper
                       notes)
``[]``                 n   (choice synchronization)
``[>``                 2n - 3   (Rel: n-1, Interr: n-2)
process instantiation  n - 1
=====================  ==========================================

:func:`analyze` computes the actual per-construct counts from the
derivation ledger and checks them against the bounds; the benchmark
``benchmarks/bench_complexity.py`` regenerates the section's table over
growing place counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.derivation import Deriver, LedgerEntry
from repro.core.generator import DerivationResult


#: Static per-construct upper bounds in terms of n = |ALL| (singleton
#: EP/SP, non-parallel context — the setting of the paper's Section 4.3).
def bound_for(rule: str, n: int) -> int:
    if rule in ("seq", "enable", "disable-seq"):
        return 1
    if rule == "choice":
        return n
    if rule == "rel":
        return n - 1
    if rule == "interr":
        # The paper states n-2, implicitly assuming the interrupt prefix
        # has a continuation with a starting place distinct from the
        # interrupt's (those places are notified via Synch_Left instead).
        # Its own Example 6 output sends n-1 interrupt messages
        # (``d3; (s1(y);exit ||| s2(y);exit)``) because the continuation
        # is a bare exit; n-1 is the bound the algorithm actually obeys.
        return max(n - 1, 0)
    if rule == "proc":
        return n - 1
    raise ValueError(f"unknown rule {rule!r}")


#: Rules that together make up one ``[>`` operator's budget (2n - 3).
DISABLE_RULES = ("rel", "interr")


@dataclass
class ConstructCount:
    """Messages attributable to one construct instance (one node)."""

    rule: str
    node: int
    sends: int = 0
    senders: Dict[int, int] = field(default_factory=dict)

    def record(self, place: int, fanout: int) -> None:
        self.sends += fanout
        self.senders[place] = self.senders.get(place, 0) + fanout


@dataclass
class ComplexityReport:
    """Per-construct message counts for one derivation."""

    places: int
    by_construct: Dict[Tuple[str, int], ConstructCount] = field(default_factory=dict)

    @property
    def total_messages(self) -> int:
        return sum(count.sends for count in self.by_construct.values())

    def per_rule(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for (rule, _), count in self.by_construct.items():
            totals[rule] = totals.get(rule, 0) + count.sends
        return totals

    def violations(self) -> List[str]:
        """Constructs exceeding the Section 4.3 bounds.

        Parallel contexts legitimately multiply the per-construct counts
        (the paper: "each parallel expression may be a multiplication
        factor"); a non-empty result therefore flags either a parallel
        multiplication or a non-singleton EP/SP — callers interpret.
        """
        found = []
        for (rule, node), count in sorted(self.by_construct.items()):
            limit = bound_for(rule, self.places)
            if count.sends > limit:
                found.append(
                    f"{rule} at node {node}: {count.sends} messages > bound {limit}"
                )
        return found

    def table(self) -> str:
        """Section 4.3-style summary table."""
        lines = [
            f"places (n)          : {self.places}",
            f"total messages      : {self.total_messages}",
        ]
        for rule, total in sorted(self.per_rule().items()):
            instances = sum(1 for (r, _) in self.by_construct if r == rule)
            lines.append(
                f"{rule:<20}: {total} messages over {instances} construct(s) "
                f"(bound {bound_for(rule, self.places)} each)"
            )
        return "\n".join(lines)


def analyze_ledger(
    ledger: List[LedgerEntry], places: int
) -> ComplexityReport:
    """Aggregate a derivation ledger into a complexity report.

    Only ``send`` entries are counted (each message is sent once and
    received once; counting sends counts messages).
    """
    report = ComplexityReport(places=places)
    for entry in ledger:
        if entry.role != "send":
            continue
        key = (entry.rule, entry.node)
        count = report.by_construct.get(key)
        if count is None:
            count = ConstructCount(entry.rule, entry.node)
            report.by_construct[key] = count
        count.record(entry.place, len(entry.peers))
    return report


def analyze(result: DerivationResult) -> ComplexityReport:
    """Re-derive with instrumentation and report message complexity.

    The entities of ``result`` are *not* re-used: a fresh
    :class:`Deriver` runs over the prepared tree so the ledger reflects
    exactly the derivation that produced them (the derivation is
    deterministic, so the counts match the stored entities).
    """
    deriver = Deriver(result.prepared, result.attrs)
    for place in sorted(result.attrs.all_places):
        deriver.derive(place)
    return analyze_ledger(deriver.ledger, len(result.attrs.all_places))


def message_count_of_run(run) -> int:
    """Messages actually sent during one executed schedule."""
    return run.messages_sent
