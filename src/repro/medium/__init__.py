"""The underlying communication medium (paper Sections 1 and 5.2).

One FIFO channel per ordered pair of places; the medium neither loses,
duplicates nor reorders messages, and delivers each after an arbitrary
finite delay (delay nondeterminism is expressed by the scheduler choosing
*when* a receive fires, so the medium state itself is a pure queue).
"""

from repro.medium.state import ChannelKey, MediumState, make_medium

__all__ = ["ChannelKey", "MediumState", "make_medium"]
