"""Unreliable media and the error-recovery sublayer (paper Section 6).

The derivation algorithm assumes a reliable FIFO medium.  For the
unreliable case the paper sketches its future work:

    "it is possible to use our algorithm as a first step (assuming a
    reliable medium) and then use a procedure which will systematically
    transform the error-free protocol into an error-recoverable one."

This module implements that layering at the medium level — the classic
protocol-stack reading of the sentence:

:class:`LossyMedium`
    the raw fault model: each in-flight message may be dropped (a
    nondeterministic internal transition).  Derived protocols deadlock
    over it — the negative control.

:class:`ArqMedium`
    the recovery sublayer: per-channel stop-and-wait ARQ (send -
    acknowledge - retransmit, sequence-numbered datagrams, duplicate
    suppression) running *over* lossy datagram channels while presenting
    the reliable FIFO interface the derived entities expect.  With a
    bounded number of losses (the standard fairness assumption) every
    service execution completes exactly as over the perfect medium.

Both classes expose the :class:`repro.medium.state.MediumState`
interface (``can_send`` / ``send`` / ``receivable`` / ``receive`` /
``is_empty`` / ``in_flight``) plus ``internal_transitions()``, which the
distributed-system composer surfaces as internal moves.  Loss budgets
keep state spaces finite: a loss consumes one unit, and once the budget
is exhausted the medium behaves reliably.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, List, Optional, Tuple

from repro.lotos.events import SyncMessage

ChannelKey = Tuple[int, int]


# ----------------------------------------------------------------------
# Raw lossy datagram medium (negative control).
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LossyMedium:
    """FIFO queues whose messages can silently vanish.

    ``loss_budget`` bounds the total number of drops (keeps exploration
    finite and models "finitely many transmission errors").
    """

    channels: Tuple[Tuple[ChannelKey, Tuple[SyncMessage, ...]], ...] = ()
    loss_budget: int = 2
    discipline: str = "fifo"

    # -- MediumState interface -----------------------------------------
    def queue(self, src: int, dest: int) -> Tuple[SyncMessage, ...]:
        for key, messages in self.channels:
            if key == (src, dest):
                return messages
        return ()

    @property
    def is_empty(self) -> bool:
        return not self.channels

    @property
    def in_flight(self) -> int:
        return sum(len(messages) for _, messages in self.channels)

    def iter_messages(self) -> Iterator[Tuple[int, int, SyncMessage]]:
        for (src, dest), messages in self.channels:
            for message in messages:
                yield src, dest, message

    def channel_depths(self) -> dict:
        """Current queue depth per nonempty channel (observability hook)."""
        return {key: len(messages) for key, messages in self.channels}

    def can_send(self, src: int, dest: int) -> bool:
        return True

    def send(self, src: int, dest: int, message: SyncMessage) -> "LossyMedium":
        return self._with_queue((src, dest), self.queue(src, dest) + (message,))

    def receivable(self, src: int, dest: int, message: SyncMessage) -> bool:
        queue = self.queue(src, dest)
        if not queue:
            return False
        if self.discipline == "fifo":
            return queue[0] == message
        return message in queue

    def receive(self, src: int, dest: int, message: SyncMessage) -> "LossyMedium":
        queue = self.queue(src, dest)
        if self.discipline == "fifo":
            if not queue or queue[0] != message:
                raise ValueError("message not at head")
            return self._with_queue((src, dest), queue[1:])
        index = queue.index(message)
        return self._with_queue((src, dest), queue[:index] + queue[index + 1 :])

    # -- fault model ------------------------------------------------------
    def internal_transitions(self) -> List[Tuple[str, "LossyMedium"]]:
        """One drop transition per in-flight message (budget allowing)."""
        if self.loss_budget <= 0:
            return []
        result = []
        for (src, dest), messages in self.channels:
            for index in range(len(messages)):
                dropped = messages[:index] + messages[index + 1 :]
                new = self._with_queue((src, dest), dropped)
                new = replace(new, loss_budget=self.loss_budget - 1)
                result.append((f"lose {messages[index]} on {src}->{dest}", new))
        return result

    def _with_queue(
        self, key: ChannelKey, queue: Tuple[SyncMessage, ...]
    ) -> "LossyMedium":
        entries = dict(self.channels)
        if queue:
            entries[key] = queue
        else:
            entries.pop(key, None)
        return LossyMedium(
            tuple(sorted(entries.items())), self.loss_budget, self.discipline
        )


# ----------------------------------------------------------------------
# Stop-and-wait ARQ recovery sublayer.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ArqChannel:
    """State of one simplex channel running stop-and-wait ARQ.

    ``outbox``    messages accepted from the sending entity, unacked;
    ``seq``       sequence number of ``outbox[0]``'s datagram;
    ``data_in_flight``  the (seq, message) datagram currently in transit;
    ``ack_in_flight``   an acknowledgement sequence number in transit;
    ``expected``  the receiver's next-expected sequence number;
    ``delivered`` in-order messages awaiting consumption by the entity.
    """

    outbox: Tuple[SyncMessage, ...] = ()
    seq: int = 0
    data_in_flight: Optional[Tuple[int, SyncMessage]] = None
    ack_in_flight: Optional[int] = None
    expected: int = 0
    delivered: Tuple[SyncMessage, ...] = ()

    @property
    def idle(self) -> bool:
        return (
            not self.outbox
            and self.data_in_flight is None
            and self.ack_in_flight is None
            and not self.delivered
        )


@dataclass(frozen=True)
class ArqMedium:
    """Reliable FIFO service over lossy datagram channels.

    The entity-facing interface is identical to the perfect medium:
    ``send`` appends to the channel's outbox, ``receivable``/``receive``
    operate on the in-order ``delivered`` buffer.  In between, the ARQ
    machinery advances through :meth:`internal_transitions`:

    * ``transmit``      put the head-of-outbox datagram on the wire
                        (also serves as retransmission after a loss);
    * ``deliver-data``  datagram arrives; fresh sequence numbers are
                        appended to ``delivered`` (duplicates are
                        suppressed); an acknowledgement is emitted;
    * ``deliver-ack``   acknowledgement arrives; the head of the outbox
                        is confirmed and the next message may transmit;
    * ``lose-data`` / ``lose-ack``  the fault model (budgeted).
    """

    channels: Tuple[Tuple[ChannelKey, ArqChannel], ...] = ()
    loss_budget: int = 2
    discipline: str = "fifo"

    # -- entity-facing interface ---------------------------------------
    def _channel(self, key: ChannelKey) -> ArqChannel:
        for existing_key, channel in self.channels:
            if existing_key == key:
                return channel
        return ArqChannel()

    def _with_channel(self, key: ChannelKey, channel: ArqChannel) -> "ArqMedium":
        entries = dict(self.channels)
        if channel.idle:
            entries.pop(key, None)
        else:
            entries[key] = channel
        return ArqMedium(
            tuple(sorted(entries.items(), key=lambda item: item[0])),
            self.loss_budget,
            self.discipline,
        )

    def can_send(self, src: int, dest: int) -> bool:
        return True

    def send(self, src: int, dest: int, message: SyncMessage) -> "ArqMedium":
        channel = self._channel((src, dest))
        return self._with_channel(
            (src, dest), replace(channel, outbox=channel.outbox + (message,))
        )

    def receivable(self, src: int, dest: int, message: SyncMessage) -> bool:
        delivered = self._channel((src, dest)).delivered
        if not delivered:
            return False
        if self.discipline == "fifo":
            return delivered[0] == message
        return message in delivered

    def receive(self, src: int, dest: int, message: SyncMessage) -> "ArqMedium":
        channel = self._channel((src, dest))
        delivered = channel.delivered
        if self.discipline == "fifo":
            if not delivered or delivered[0] != message:
                raise ValueError("message not deliverable")
            remaining = delivered[1:]
        else:
            index = delivered.index(message)
            remaining = delivered[:index] + delivered[index + 1 :]
        return self._with_channel((src, dest), replace(channel, delivered=remaining))

    @property
    def is_empty(self) -> bool:
        return not self.channels

    @property
    def in_flight(self) -> int:
        return sum(
            len(channel.outbox) + len(channel.delivered)
            for _, channel in self.channels
        )

    def iter_messages(self) -> Iterator[Tuple[int, int, SyncMessage]]:
        for (src, dest), channel in self.channels:
            for message in channel.outbox + channel.delivered:
                yield src, dest, message

    def channel_depths(self) -> dict:
        """Entity-visible depth (outbox + delivered) per active channel."""
        return {
            key: len(channel.outbox) + len(channel.delivered)
            for key, channel in self.channels
            if channel.outbox or channel.delivered
        }

    # -- protocol machinery -------------------------------------------
    def internal_transitions(self) -> List[Tuple[str, "ArqMedium"]]:
        result: List[Tuple[str, "ArqMedium"]] = []
        for key, channel in self.channels:
            src, dest = key
            # transmit / retransmit
            if channel.outbox and channel.data_in_flight is None:
                datagram = (channel.seq, channel.outbox[0])
                result.append(
                    (
                        f"transmit seq={channel.seq} {src}->{dest}",
                        self._with_channel(
                            key, replace(channel, data_in_flight=datagram)
                        ),
                    )
                )
            # deliver data (+ emit ack); duplicates suppressed
            if channel.data_in_flight is not None and channel.ack_in_flight is None:
                seq, message = channel.data_in_flight
                new = replace(channel, data_in_flight=None, ack_in_flight=seq)
                if seq == channel.expected:
                    new = replace(
                        new,
                        delivered=new.delivered + (message,),
                        expected=channel.expected + 1,
                    )
                result.append(
                    (f"deliver-data seq={seq} {src}->{dest}", self._with_channel(key, new))
                )
            # deliver ack
            if channel.ack_in_flight is not None:
                acked = channel.ack_in_flight
                new = replace(channel, ack_in_flight=None)
                if channel.outbox and acked == channel.seq:
                    new = replace(
                        new, outbox=new.outbox[1:], seq=channel.seq + 1
                    )
                result.append(
                    (f"deliver-ack seq={acked} {src}->{dest}", self._with_channel(key, new))
                )
            # faults
            if self.loss_budget > 0:
                if channel.data_in_flight is not None:
                    lossy = self._with_channel(
                        key, replace(channel, data_in_flight=None)
                    )
                    lossy = replace(lossy, loss_budget=self.loss_budget - 1)
                    result.append((f"lose-data {src}->{dest}", lossy))
                if channel.ack_in_flight is not None:
                    lossy = self._with_channel(
                        key, replace(channel, ack_in_flight=None)
                    )
                    lossy = replace(lossy, loss_budget=self.loss_budget - 1)
                    result.append((f"lose-ack {src}->{dest}", lossy))
        return result
