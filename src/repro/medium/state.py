"""Immutable medium state: one FIFO queue per ordered place pair.

Immutability is what lets the verification harness treat a whole
distributed system (entities + medium) as an LTS state and explore it
exhaustively; the runtime executor uses the same type, just along one
path.

Two delivery disciplines are supported:

``"fifo"``
    a receive action matches only the *head* of its channel.  This is the
    paper's stated medium model (Section 1: each channel "is assumed to
    be a FIFO queue whose capacity is infinite").

``"selective"``
    a receive action may take the first *matching* message anywhere in
    the queue.  This reproduces the behaviour of the Section 5.2 LOTOS
    medium, where each message type synchronizes independently, and is
    the right model when stale messages may linger (disable shortcoming
    (i), Section 3.3).

``capacity`` bounds the number of in-flight messages per channel
(``None`` = unbounded; the Section 5 proof assumes ``1``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from repro.lotos.events import SyncMessage

ChannelKey = Tuple[int, int]  # (source place, destination place)

DISCIPLINES = ("fifo", "selective")


@dataclass(frozen=True)
class MediumState:
    """Frozen snapshot of every channel's queue.

    ``channels`` holds only the nonempty queues, sorted by key, so equal
    medium contents always hash identically.
    """

    channels: Tuple[Tuple[ChannelKey, Tuple[SyncMessage, ...]], ...] = ()
    capacity: Optional[int] = None
    discipline: str = field(default="fifo")

    def __post_init__(self) -> None:
        if self.discipline not in DISCIPLINES:
            raise ValueError(
                f"unknown discipline {self.discipline!r}; pick from {DISCIPLINES}"
            )

    # ------------------------------------------------------------------
    def queue(self, src: int, dest: int) -> Tuple[SyncMessage, ...]:
        for key, messages in self.channels:
            if key == (src, dest):
                return messages
        return ()

    @property
    def is_empty(self) -> bool:
        return not self.channels

    @property
    def in_flight(self) -> int:
        return sum(len(messages) for _, messages in self.channels)

    def iter_messages(self) -> Iterator[Tuple[int, int, SyncMessage]]:
        for (src, dest), messages in self.channels:
            for message in messages:
                yield src, dest, message

    def channel_depths(self) -> Dict[ChannelKey, int]:
        """Current queue depth per nonempty channel (observability hook)."""
        return {key: len(messages) for key, messages in self.channels}

    # ------------------------------------------------------------------
    def can_send(self, src: int, dest: int) -> bool:
        if self.capacity is None:
            return True
        return len(self.queue(src, dest)) < self.capacity

    def send(self, src: int, dest: int, message: SyncMessage) -> "MediumState":
        """New state with ``message`` appended to channel ``src -> dest``.

        Raises ``ValueError`` when the channel is at capacity — callers
        must test :meth:`can_send` first (the runtime treats a full
        channel as "the send is not currently enabled", mirroring the
        rendezvous with the Section 5.2 capacity-1 channel process).
        """
        if not self.can_send(src, dest):
            raise ValueError(f"channel {src}->{dest} is at capacity")
        return self._with_queue((src, dest), self.queue(src, dest) + (message,))

    def receivable(self, src: int, dest: int, message: SyncMessage) -> bool:
        queue = self.queue(src, dest)
        if not queue:
            return False
        if self.discipline == "fifo":
            return queue[0] == message
        return message in queue

    def receive(self, src: int, dest: int, message: SyncMessage) -> "MediumState":
        """New state with the matched message removed."""
        queue = self.queue(src, dest)
        if self.discipline == "fifo":
            if not queue or queue[0] != message:
                raise ValueError(
                    f"message {message} is not at the head of {src}->{dest}"
                )
            return self._with_queue((src, dest), queue[1:])
        try:
            index = queue.index(message)
        except ValueError as exc:
            raise ValueError(
                f"message {message} is not in channel {src}->{dest}"
            ) from exc
        return self._with_queue((src, dest), queue[:index] + queue[index + 1 :])

    # ------------------------------------------------------------------
    def _with_queue(
        self, key: ChannelKey, queue: Tuple[SyncMessage, ...]
    ) -> "MediumState":
        entries: Dict[ChannelKey, Tuple[SyncMessage, ...]] = dict(self.channels)
        if queue:
            entries[key] = queue
        else:
            entries.pop(key, None)
        canonical = tuple(sorted(entries.items(), key=lambda item: item[0]))
        return MediumState(canonical, self.capacity, self.discipline)


def make_medium(
    capacity: Optional[int] = None, discipline: str = "fifo"
) -> MediumState:
    """A fresh, empty medium."""
    return MediumState((), capacity, discipline)
