"""Batch-subsystem benchmarks: serial vs worker-pool vs warm cache.

The paper's derivation is one independent ``T_p`` per place, so a
corpus run is embarrassingly parallel; these benchmarks put numbers on
the three claims ``repro.batch`` makes — a pool beats serial wall-clock
on multi-core hardware, the cache makes repeat runs ~free, and neither
mode changes a single output byte.  The wall-times flow through the
``--bench-json`` reporter into the CI bench-gate.
"""

import os
import time

import pytest

from repro import workloads
from repro.batch import EntityCache, corpus_from_texts, run_batch


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


PIPELINE_CORPUS = corpus_from_texts(workloads.pipeline_corpus(8))
FAN_OUT_CORPUS = corpus_from_texts(workloads.fan_out_join_corpus(8))


@pytest.mark.parametrize("workers", [0, 2, 4])
def test_batch_pipeline_corpus(benchmark, workers):
    outcome = benchmark.pedantic(
        run_batch,
        args=(PIPELINE_CORPUS,),
        kwargs={"workers": workers},
        rounds=1,
        iterations=1,
    )
    assert outcome.ok


@pytest.mark.parametrize("workers", [0, 2, 4])
def test_batch_fan_out_join_corpus(benchmark, workers):
    outcome = benchmark.pedantic(
        run_batch,
        args=(FAN_OUT_CORPUS,),
        kwargs={"workers": workers},
        rounds=1,
        iterations=1,
    )
    assert outcome.ok


def test_batch_warm_cache_speedup(benchmark, tmp_path):
    """A fully-warm cache run: zero derivations, pure disk reads."""
    corpus = corpus_from_texts(workloads.synthetic_corpus(8))
    cache = EntityCache(tmp_path / "cache")
    primed = run_batch(corpus, workers=0, cache=cache)
    assert primed.ok

    outcome = benchmark(run_batch, corpus, workers=0, cache=cache)
    assert outcome.summary["totals"]["derivations"] == 0
    assert outcome.entities == primed.entities


def test_batch_per_place_fanout(benchmark):
    """Split mode (one task per place) over the fan-out corpus."""
    outcome = benchmark.pedantic(
        run_batch,
        args=(FAN_OUT_CORPUS,),
        kwargs={"workers": 2, "split_bytes": 1},
        rounds=1,
        iterations=1,
    )
    assert outcome.ok


@pytest.mark.skipif(
    _cores() < 4, reason="needs >= 4 cores to demonstrate the speedup"
)
def test_four_worker_cold_run_beats_serial():
    """Acceptance: a 4-worker cold run on a 16-spec synthetic corpus
    beats serial wall-clock — with byte-identical entity output."""
    corpus = corpus_from_texts(workloads.synthetic_corpus(16))

    start = time.perf_counter()
    serial = run_batch(corpus, workers=0)
    serial_s = time.perf_counter() - start
    assert serial.ok

    start = time.perf_counter()
    parallel = run_batch(corpus, workers=4)
    parallel_s = time.perf_counter() - start
    assert parallel.ok

    assert parallel.entities == serial.entities
    assert parallel_s < serial_s, (
        f"4 workers took {parallel_s:.3f}s vs serial {serial_s:.3f}s"
    )
